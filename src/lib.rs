//! `sram-edp` — device-circuit-architecture co-optimization of SRAM
//! arrays for minimum energy-delay product.
//!
//! A from-scratch Rust reproduction of *"Minimizing the Energy-Delay
//! Product of SRAM Arrays using a Device-Circuit-Architecture
//! Co-Optimization Framework"* (Shafaei, Afzali-Kusha, Pedram — DAC
//! 2016), including every substrate the paper relies on:
//!
//! * [`device`] — calibrated 7 nm FinFET compact models (LVT/HVT);
//! * [`spice`] — a small MNA circuit simulator (nonlinear DC, sweeps,
//!   transient) used to *measure* all cell figures of merit;
//! * [`cell`] — 6T SRAM cell characterization: butterfly-curve noise
//!   margins, write margin, read current, leakage, assist techniques,
//!   Monte Carlo yield;
//! * [`array`](mod@crate::array) — the paper's analytical array model (Tables 1–3,
//!   Eqs. (1)–(5)) with assist-aware components;
//! * [`coopt`] — the co-optimization framework: yield-pinned assist
//!   rails, M1/M2 rail policies, exhaustive (and parallel) search over
//!   `V_SSC`, `n_r`, `N_pre`, `N_wr`;
//! * [`units`] — typed physical quantities underpinning all of it.
//!
//! # Quickstart
//!
//! ```
//! use sram_edp::array::Capacity;
//! use sram_edp::coopt::{CoOptimizationFramework, Method};
//! use sram_edp::device::VtFlavor;
//!
//! # fn main() -> Result<(), sram_edp::coopt::CooptError> {
//! let mut framework = CoOptimizationFramework::paper_mode();
//! let design = framework.optimize(
//!     Capacity::from_bytes(4096),
//!     VtFlavor::Hvt,
//!     Method::M2,
//! )?;
//! println!("{design}");
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for richer scenarios (cache sizing,
//! assist exploration, Monte Carlo yield) and the `reproduce` binary in
//! `sram-bench` for regenerating every figure and table of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sram_array as array;
pub use sram_cell as cell;
pub use sram_coopt as coopt;
pub use sram_device as device;
pub use sram_spice as spice;
pub use sram_units as units;
