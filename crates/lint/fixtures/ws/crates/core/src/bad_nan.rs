//! Fixture: NaN-unsafe comparisons — two `nan-unsafe` findings (the
//! `partial_cmp` chain also draws `no-panic` for its unwrap).

pub fn pick(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn check(x: f64) {
    assert_eq!(x, 1.5);
}

pub fn fine(a: f64, b: f64) {
    assert!((a - b).abs() < 1e-2, "tolerance compares are legal");
}
