//! Fixture: NaN-unsafe comparisons — two `nan-unsafe` findings (the
//! `partial_cmp` chain also draws `no-panic` for its unwrap).

/// Sorts through a NaN-unsafe `partial_cmp` chain.
pub fn pick(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

/// Asserts float equality.
pub fn check(x: f64) {
    assert_eq!(x, 1.5);
}

/// Compares within a tolerance (fine).
pub fn fine(a: f64, b: f64) {
    assert!((a - b).abs() < 1e-2, "tolerance compares are legal");
}
