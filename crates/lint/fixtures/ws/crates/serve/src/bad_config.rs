//! Fixture: env-var ↔ documentation drift — two `config-sync` findings
//! (one env var read but undocumented, one documented in the fixture
//! README but read nowhere). The documented-and-read one stays quiet.

/// Reads fixture configuration from the environment.
pub fn load() -> Option<String> {
    let documented = std::env::var("SRAM_FIXTURE_DOCUMENTED").ok();
    let undocumented = std::env::var("SRAM_FIXTURE_UNDOCUMENTED").ok();
    documented.or(undocumented)
}
