//! Fixture: drift between registered probe metrics and the `PROBES.md`
//! registry — four `probe-drift` findings across the tree: this file
//! registers an unlisted metric and an unasserted one, registers a
//! counter the registry calls a gauge, and the registry carries a row
//! (`spice.ghost_metric`) no code backs. All names are well-formed and
//! spice-prefixed, so `probe-naming` stays quiet here.

/// Registers metrics that disagree with the fixture registry.
pub fn register_drifted() {
    sram_probe::probe_inc!("spice.drifted_metric");
    sram_probe::probe_inc!("spice.unasserted_metric");
    sram_probe::probe_inc!("spice.mismatched_kind");
}
