//! Fixture: malformed and colliding probe metric names — three
//! `probe-naming` findings (bad format, cross-kind collision at the
//! second registration, wrong crate prefix).

/// Registers malformed and colliding names.
pub fn register() {
    sram_probe::probe_inc!("NotDotted");
    sram_probe::probe_inc!("spice.solves");
    sram_probe::probe_gauge!("spice.solves", 1.0);
    sram_probe::probe_inc!("cell.not_ours");
}
