//! Fixture: malformed and mis-namespaced `trace_span!` names — two
//! `probe-naming` findings (bad format, wrong crate prefix). The
//! well-named span at the end must stay quiet.

/// Opens mis-named trace spans.
pub fn traced() {
    let _a = sram_probe::trace_span!("NotDottedTrace");
    let _b = sram_probe::trace_span!("cell.trace_not_ours");
    let _c = sram_probe::trace_span!("spice.fixture_solve");
}
