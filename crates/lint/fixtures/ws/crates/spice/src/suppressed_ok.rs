//! Fixture: a justified suppression keeps the walk quiet (counted as
//! suppressed, not reported).

/// Unwraps under a justified suppression.
pub fn checked(v: Option<f64>) -> f64 {
    // sram-lint: allow(no-panic) fixture: invariant is checked by the caller
    v.unwrap()
}
