//! Fixture: panicking escape hatches in library code — each one must
//! fire `no-panic`.

/// Panics four different ways.
pub fn solve(v: Option<f64>, w: Result<f64, ()>) -> f64 {
    let a = v.unwrap();
    let b = w.expect("no result");
    if a > b {
        panic!("diverged");
    }
    unreachable!("fixture")
}
