//! Fixture: the probe crate owns the `probe.`, `telemetry.`, and
//! `log.` namespaces, and its telemetry sampler thread is a sanctioned
//! detached spawn — the `metrics.`-prefixed name is the single
//! `probe-naming` finding here.

/// Samples the telemetry ring and registers its bookkeeping metrics.
pub fn sampler() {
    sram_probe::probe_inc!("telemetry.windows_fixture");
    sram_probe::probe_inc!("log.events_fixture");
    sram_probe::probe_inc!("probe.trace.fixture");
    sram_probe::probe_inc!("metrics.wrong_home");
    std::thread::spawn(|| {});
}
