//! Fixture: an unterminated token — one `parse-error`.

pub fn broken() {}

/* this block comment never closes
