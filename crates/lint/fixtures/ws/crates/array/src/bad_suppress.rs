//! Fixture: a reasonless suppression is itself an error and does not
//! silence the violation below it — one `suppression-syntax` plus one
//! `no-panic`.

/// Unwraps under a reasonless (hence void) suppression.
pub fn nope(v: Option<f64>) -> f64 {
    // sram-lint: allow(no-panic)
    v.unwrap()
}
