//! Fixture: a well-formed suppression gone stale — the `unwrap` it once
//! excused was refactored away, so `no-panic` no longer fires on the
//! covered line and `unused-suppression` must report the comment.

// sram-lint: allow(no-panic) leftover from a removed unwrap
/// Returns a constant; the unwrap is long gone.
pub fn tidy() -> u32 {
    7
}
