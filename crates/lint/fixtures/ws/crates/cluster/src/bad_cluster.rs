//! Fixture: the cluster crate owns the `cluster.` namespace and its
//! router/poller threads are sanctioned detached spawns — the
//! `node.`-prefixed name is the single `probe-naming` finding here.

/// Polls node health and registers the membership counters.
pub fn poller() {
    sram_probe::probe_inc!("cluster.health.polls_fixture");
    sram_probe::probe_inc!("node.evicted_fixture");
    std::thread::spawn(|| {});
}
