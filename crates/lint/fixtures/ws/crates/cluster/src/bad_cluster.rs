//! Fixture: the cluster crate owns the `cluster.` namespace and its
//! router/poller threads are sanctioned detached spawns — the
//! `node.`-prefixed name is the single `probe-naming` finding here.
//! The `cluster.trace.` stitching metric is registered but never
//! asserted anywhere, driving one `probe-drift` finding.

/// Polls node health and registers the membership counters.
pub fn poller() {
    sram_probe::probe_inc!("cluster.health.polls_fixture");
    sram_probe::probe_inc!("node.evicted_fixture");
    std::thread::spawn(|| {});
}

/// Stitches span trees and counts them under the trace namespace.
pub fn stitcher() {
    sram_probe::probe_inc!("cluster.trace.stitched_fixture");
}
