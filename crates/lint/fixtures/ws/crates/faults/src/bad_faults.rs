//! Fixture: the fault layer must namespace its metrics under `faults.`
//! — one `probe-naming` finding (wrong crate prefix); the well-formed
//! name and the sanctioned detached timer spawn are fine.

/// Registers one mis-namespaced metric.
pub fn arm() {
    sram_probe::probe_inc!("serve.not_ours");
    sram_probe::probe_inc!("faults.injected");
    std::thread::spawn(|| {});
}
