//! Fixture: undocumented public API — two `doc-coverage` findings (the
//! bare fn and the bare struct field). The documented items, the
//! crate-visible fn, and the private fn stay quiet.

/// A threshold-voltage window.
pub struct VtWindow {
    /// Lower bound in volts.
    pub low: f64,
    pub high: f64,
}

pub fn undocumented(x: f64) -> f64 {
    x
}

/// Identity, but documented.
pub fn documented(x: f64) -> f64 {
    x
}

pub(crate) fn crate_visible() {}

fn private() {}
