//! Fixture: a parameter struct with one field nobody reads — one
//! `dead-parameter` finding. The read field is quiet, the stale
//! suppression on it must surface as `unused-suppression`, and the
//! justified suppression on the third field absorbs its finding.

/// Sizing knobs for the fixture device tuner.
pub struct TuningParams {
    // sram-lint: allow(dead-parameter) stale: the field is read by apply below
    /// Read by `apply` below, so the suppression above is stale.
    pub live_knob: f64,
    /// Dot-accessed nowhere in the tree — the `dead-parameter` finding.
    pub dead_knob: f64,
    // sram-lint: allow(dead-parameter) fixture: consumed by an external sweep script
    /// Unread, but the suppression above absorbs the finding.
    pub shadow_knob: f64,
}

/// Applies the live knob.
pub fn apply(p: &TuningParams) -> f64 {
    p.live_knob * 2.0
}
