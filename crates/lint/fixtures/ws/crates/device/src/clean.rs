//! Fixture: a clean library file — zero findings.

pub fn overdrive(vgs: f64, vt: f64) -> f64 {
    (vgs - vt).max(0.0)
}
