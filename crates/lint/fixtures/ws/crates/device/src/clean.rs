//! Fixture: a clean library file — zero findings.

/// Gate overdrive, clamped at zero.
pub fn overdrive(vgs: f64, vt: f64) -> f64 {
    (vgs - vt).max(0.0)
}
