//! Fixture experiment registry: `fig2` is recorded in the ledger;
//! `ghost` is registered here but absent from EXPERIMENTS.md (one
//! `registry-sync` finding on this file, one on the ledger's stale
//! `ghost-ledger` row).

/// One fixture experiment.
pub struct Experiment {
    /// CLI name.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The fixture registry.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "fig2",
        summary: "hsnm/leakage sweep",
    },
    Experiment {
        name: "ghost",
        summary: "registered but never recorded",
    },
];
