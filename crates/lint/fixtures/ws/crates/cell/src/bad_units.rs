//! Fixture: one bare physical magnitude among exempt forms — exactly
//! one `unit-hygiene` finding (the `9.5e-5`).

const WRITE_DELAY_SECONDS: f64 = 1.5e-12;

/// Uses constructors and named consts (fine).
pub fn good(x: f64) -> f64 {
    let t = Time::from_seconds(2.5e-12);
    t * x * WRITE_DELAY_SECONDS
}

/// Multiplies by a bare magnitude (the finding).
pub fn bad(x: f64) -> f64 {
    x * 9.5e-5
}
