//! Fixture: a detached thread outside the search core — one
//! `thread-discipline` finding; the scoped spawn is fine.

pub fn leak_work() {
    std::thread::spawn(|| {});
}

pub fn bounded_work() {
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}
