//! Fixture: a detached thread outside the search core — one
//! `thread-discipline` finding; the scoped spawn is fine.

/// Spawns a detached thread (the finding).
pub fn leak_work() {
    std::thread::spawn(|| {});
}

/// Spawns a scoped thread (fine).
pub fn bounded_work() {
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}
