//! The workspace symbol graph: a use/def index built from one lexer
//! pass over every file, shared by all cross-file rules.
//!
//! [`FileCtx`](crate::context::FileCtx) is the *per-file* context; this
//! module is its workspace-level counterpart. During the walk the
//! engine extracts compact [`FileFacts`] from each file — definitions
//! (parameter-struct fields, `SRAM_*` env-var reads, probe metric
//! registrations, experiment registry entries) and references to them
//! (dot-accessed identifiers, metric-name string literals) — and
//! [`Graph::build`] merges them into one queryable index. The facts are
//! pure functions of a file's path and content, which is what makes the
//! on-disk cache ([`crate::cache`]) sound: a cached file contributes
//! its facts to the graph without being re-lexed.
//!
//! The graph is deliberately lexical, like everything else in this
//! linter: a "reference" to a parameter is a `.field` dot access
//! anywhere in the workspace, not a type-resolved projection. The rules
//! that consume the graph document what that approximation can and
//! cannot see.

use crate::context::{FileClass, FileCtx};
use crate::engine::FileAnalysis;
use crate::lexer::{str_value, TokenKind};
use crate::rules::probe_naming::{self, Kind};
use crate::rules::registry_sync;
use crate::rules::RawDiag;
use std::collections::BTreeSet;

/// Struct-name suffixes that mark a type as a parameter registry: the
/// device/model cards (`DeviceParams`, `ArrayParams`,
/// `TechnologyParams`), the search space (`DesignSpace`), and the
/// runtime configuration structs (`CacheConfig`, `ServerConfig`, …).
pub const PARAM_STRUCT_SUFFIXES: &[&str] = &["Params", "Config", "Space", "Options"];

/// A source anchor for a definition extracted into the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRef {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Characters to underline.
    pub len: u32,
}

/// One `pub` field of a parameter struct.
#[derive(Debug, Clone)]
pub struct ParamDef {
    /// Owning struct's name.
    pub strukt: String,
    /// Field name.
    pub field: String,
    /// Declaration site.
    pub site: SiteRef,
}

/// One `SRAM_*` environment-variable read in library or binary code.
///
/// The name is normalized into a match pattern: a trailing underscore
/// (a prefix literal like `"SRAM_SLO_"`) and `{…}` format placeholders
/// both become a `*` wildcard.
#[derive(Debug, Clone)]
pub struct EnvRead {
    /// Normalized variable name (may contain `*`).
    pub name: String,
    /// Read site.
    pub site: SiteRef,
}

/// One probe metric registration that passed the per-file
/// `probe-naming` checks (well-formed, correctly prefixed).
#[derive(Debug, Clone)]
pub struct ProbeDef {
    /// Metric name.
    pub name: String,
    /// Registered kind.
    pub kind: Kind,
    /// Registration site.
    pub site: SiteRef,
}

/// One experiment registered in `crates/bench/src/cli.rs`.
#[derive(Debug, Clone)]
pub struct ExperimentDef {
    /// Experiment name.
    pub name: String,
    /// Registration site.
    pub site: SiteRef,
}

/// Everything the graph needs from one file. Cheap to serialize; a
/// pure function of `(path, content)`.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Parameter-struct field definitions (library code only).
    pub params: Vec<ParamDef>,
    /// `SRAM_*` env-var reads (library and binary code).
    pub env_reads: Vec<EnvRead>,
    /// Probe metric registrations (library code, per-file-clean names).
    pub probes: Vec<ProbeDef>,
    /// Experiment registry entries (only in the registry source file).
    pub experiments: Vec<ExperimentDef>,
    /// Identifiers that appear dot-accessed (`.name`) anywhere in the
    /// file — the use side of the parameter use/def analysis.
    pub dot_refs: BTreeSet<String>,
    /// Metric-name-shaped string literals in files that count as
    /// assertion sites (tests, reproducers, examples) — the use side of
    /// `probe-drift`'s "asserted anywhere" check.
    pub metric_mentions: BTreeSet<String>,
}

/// Extracts [`FileFacts`] from one file, pushing any per-file
/// `probe-naming` diagnostics (malformed or mis-prefixed metric names)
/// into `out`.
pub fn extract(ctx: &FileCtx, out: &mut Vec<RawDiag>) -> FileFacts {
    let mut facts = FileFacts::default();
    let code = ctx.code_indices();

    facts.probes = probe_naming::extract(ctx, &code, out);
    extract_params(ctx, &code, &mut facts);
    extract_env_reads(ctx, &code, &mut facts);
    extract_refs(ctx, &code, &mut facts);
    if ctx.rel == registry_sync::CLI_PATH {
        extract_experiments(ctx, &code, &mut facts);
    }
    facts
}

/// `pub` fields of parameter structs (library code, outside tests).
fn extract_params(ctx: &FileCtx, code: &[usize], facts: &mut FileFacts) {
    if ctx.class != FileClass::Library {
        return;
    }
    let mut i = 0usize;
    while i < code.len() {
        let token = &ctx.tokens[code[i]];
        if !(token.kind == TokenKind::Ident && token.text == "struct") || ctx.in_test(token.line) {
            i += 1;
            continue;
        }
        let Some(&name_idx) = code.get(i + 1) else {
            break;
        };
        let name = &ctx.tokens[name_idx];
        if name.kind != TokenKind::Ident
            || !PARAM_STRUCT_SUFFIXES
                .iter()
                .any(|s| name.text.ends_with(s) && name.text.len() > s.len())
        {
            i += 1;
            continue;
        }
        // Find the struct body: the next `{` before any `;` (a `;`
        // first means a unit/tuple struct — no named fields).
        let mut j = i + 2;
        while j < code.len() && !matches!(ctx.tokens[code[j]].text.as_str(), "{" | ";") {
            j += 1;
        }
        if j >= code.len() || ctx.tokens[code[j]].text == ";" {
            i = j;
            continue;
        }
        // Walk the body at brace depth 1 looking for
        // `pub [(vis)] field :` sequences; `#[…]` attributes skipped.
        let mut depth = 0usize;
        let mut k = j;
        while k < code.len() {
            let text = ctx.tokens[code[k]].text.as_str();
            match text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                // Skip an attribute's `#[...]` group.
                "#" if depth == 1
                    && code.get(k + 1).is_some_and(|&n| ctx.tokens[n].text == "[") =>
                {
                    let mut b = 0usize;
                    let mut m = k + 1;
                    while m < code.len() {
                        match ctx.tokens[code[m]].text.as_str() {
                            "[" => b += 1,
                            "]" => {
                                b -= 1;
                                if b == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    k = m;
                }
                "pub" if depth == 1 => {
                    let mut m = k + 1;
                    // `pub(crate)` / `pub(in …)` visibility group.
                    if code.get(m).is_some_and(|&n| ctx.tokens[n].text == "(") {
                        let mut p = 0usize;
                        while m < code.len() {
                            match ctx.tokens[code[m]].text.as_str() {
                                "(" => p += 1,
                                ")" => {
                                    p -= 1;
                                    if p == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            m += 1;
                        }
                        m += 1;
                    }
                    let field_ok = code.get(m).is_some_and(|&n| {
                        ctx.tokens[n].kind == TokenKind::Ident
                            && code.get(m + 1).is_some_and(|&c| ctx.tokens[c].text == ":")
                    });
                    if field_ok {
                        let field = &ctx.tokens[code[m]];
                        facts.params.push(ParamDef {
                            strukt: name.text.clone(),
                            field: field.text.clone(),
                            site: SiteRef {
                                line: field.line,
                                col: field.col,
                                len: field.text.chars().count().max(1) as u32,
                            },
                        });
                        k = m + 1;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        i = k + 1;
    }
}

/// Full-literal `SRAM_*` strings in library/binary code outside tests.
fn extract_env_reads(ctx: &FileCtx, code: &[usize], facts: &mut FileFacts) {
    if ctx.class == FileClass::Test {
        return;
    }
    for &idx in code {
        let token = &ctx.tokens[idx];
        if token.kind != TokenKind::Str || ctx.in_test(token.line) {
            continue;
        }
        let Some(value) = str_value(&token.text) else {
            continue;
        };
        let Some(name) = normalize_env_name(value) else {
            continue;
        };
        facts.env_reads.push(EnvRead {
            name,
            site: SiteRef {
                line: token.line,
                col: token.col,
                len: token.text.chars().count().max(1) as u32,
            },
        });
    }
}

/// Dot-accessed identifiers everywhere, and metric-name-shaped string
/// literals in the files that count as assertion sites.
fn extract_refs(ctx: &FileCtx, code: &[usize], facts: &mut FileFacts) {
    let mentions_count = mention_eligible(ctx);
    for (pos, &idx) in code.iter().enumerate() {
        let token = &ctx.tokens[idx];
        match token.kind {
            TokenKind::Ident => {
                // `.field` — but not `..field` (struct update / range).
                let after_dot = pos >= 1
                    && ctx.tokens[code[pos - 1]].text == "."
                    && !(pos >= 2 && ctx.tokens[code[pos - 2]].text == ".");
                if after_dot {
                    facts.dot_refs.insert(token.text.clone());
                }
            }
            TokenKind::Str if mentions_count => {
                if let Some(value) = str_value(&token.text) {
                    if probe_naming::well_formed(value) {
                        facts.metric_mentions.insert(value.to_owned());
                    }
                }
            }
            _ => {}
        }
    }
}

/// Files whose metric-name strings count as assertions: tests, benches
/// and examples (class `Test`), everything in the reproducer crate, and
/// the root integration-test tree.
fn mention_eligible(ctx: &FileCtx) -> bool {
    ctx.class == FileClass::Test
        || ctx.rel.starts_with("crates/bench/")
        || ctx.rel.starts_with("tests/")
        || ctx.rel.starts_with("examples/")
}

/// `name: "…"` fields in the experiment registry source.
fn extract_experiments(ctx: &FileCtx, code: &[usize], facts: &mut FileFacts) {
    for window in 0..code.len().saturating_sub(2) {
        let a = &ctx.tokens[code[window]];
        let b = &ctx.tokens[code[window + 1]];
        let c = &ctx.tokens[code[window + 2]];
        if a.kind == TokenKind::Ident
            && a.text == "name"
            && b.text == ":"
            && c.kind == TokenKind::Str
            && !ctx.in_test(a.line)
        {
            if let Some(name) = str_value(&c.text) {
                facts.experiments.push(ExperimentDef {
                    name: name.to_owned(),
                    site: SiteRef {
                        line: c.line,
                        col: c.col,
                        len: name.chars().count().max(1) as u32,
                    },
                });
            }
        }
    }
}

/// Normalizes a candidate env-var literal into a match pattern.
/// Returns `None` when the string is not an `SRAM_*` variable name:
/// it must start with `SRAM_`, continue in `[A-Z0-9_{}]`, and carry at
/// least one character of name (a bare `"SRAM_"` is prose, not a
/// variable). `{…}` format placeholders and a trailing `_` (a prefix
/// literal the code completes at runtime) become `*` wildcards.
#[must_use]
pub fn normalize_env_name(value: &str) -> Option<String> {
    let rest = value.strip_prefix("SRAM_")?;
    if rest.is_empty() {
        return None;
    }
    let mut out = String::from("SRAM_");
    let mut chars = rest.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            'A'..='Z' | '0'..='9' | '_' => out.push(c),
            '{' => {
                for inner in chars.by_ref() {
                    if inner == '}' {
                        break;
                    }
                }
                out.push('*');
            }
            _ => return None,
        }
    }
    if let Some(stripped) = out.strip_suffix('_') {
        if !stripped.ends_with('*') {
            out = format!("{stripped}_*");
        }
    }
    Some(out)
}

/// `true` when two env-var patterns denote a common name: literal
/// characters must agree and `*` (in either side) matches any run of
/// characters.
#[must_use]
pub fn patterns_overlap(a: &str, b: &str) -> bool {
    fn go(a: &[char], b: &[char]) -> bool {
        match (a.first(), b.first()) {
            (None, None) => true,
            (Some('*'), _) => (1..=b.len()).any(|i| go(&a[1..], &b[i..])) || go(&a[1..], b),
            (_, Some('*')) => (1..=a.len()).any(|i| go(&a[i..], &b[1..])) || go(a, &b[1..]),
            (Some(x), Some(y)) => x == y && go(&a[1..], &b[1..]),
            _ => false,
        }
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    go(&a, &b)
}

/// The merged workspace use/def index, queried by the cross-file rules.
#[derive(Debug, Default)]
pub struct Graph {
    /// `(file, def)` for every parameter-struct field.
    pub params: Vec<(String, ParamDef)>,
    /// `(file, read)` for every env-var read.
    pub env_reads: Vec<(String, EnvRead)>,
    /// `(file, def)` for every clean probe registration, in walk order.
    pub probes: Vec<(String, ProbeDef)>,
    /// `(file, def)` for every registered experiment.
    pub experiments: Vec<(String, ExperimentDef)>,
    /// Union of dot-accessed identifiers across the workspace.
    pub dot_refs: BTreeSet<String>,
    /// Union of metric-name mentions from assertion-site files.
    pub metric_mentions: BTreeSet<String>,
    /// Whether the experiment registry source was seen during the walk.
    pub saw_cli: bool,
}

impl Graph {
    /// Merges per-file facts (live or cache-restored) into one index.
    /// `analyses` must be in walk (sorted-path) order so downstream
    /// diagnostics are deterministic.
    #[must_use]
    pub fn build(analyses: &[FileAnalysis]) -> Self {
        let mut graph = Self::default();
        for analysis in analyses {
            let rel = &analysis.rel;
            if rel == registry_sync::CLI_PATH {
                graph.saw_cli = true;
            }
            let facts = &analysis.facts;
            for p in &facts.params {
                graph.params.push((rel.clone(), p.clone()));
            }
            for e in &facts.env_reads {
                graph.env_reads.push((rel.clone(), e.clone()));
            }
            for p in &facts.probes {
                graph.probes.push((rel.clone(), p.clone()));
            }
            for e in &facts.experiments {
                graph.experiments.push((rel.clone(), e.clone()));
            }
            graph.dot_refs.extend(facts.dot_refs.iter().cloned());
            graph
                .metric_mentions
                .extend(facts.metric_mentions.iter().cloned());
        }
        graph
    }

    /// `true` when `field` is dot-accessed anywhere in the workspace.
    #[must_use]
    pub fn is_field_read(&self, field: &str) -> bool {
        self.dot_refs.contains(field)
    }

    /// `true` when `name` appears as a metric-name string in any
    /// assertion-site file (tests, reproducers, examples).
    #[must_use]
    pub fn is_metric_mentioned(&self, name: &str) -> bool {
        self.metric_mentions.contains(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(rel: &str, src: &str) -> FileFacts {
        let ctx = FileCtx::new(rel.to_owned(), src);
        let mut out = Vec::new();
        extract(&ctx, &mut out)
    }

    #[test]
    fn param_fields_are_extracted_from_suffixed_structs() {
        let src = "/// D.\npub struct TuningParams {\n    /// A.\n    pub live: f64,\n    /// B.\n    pub(crate) scoped: f64,\n    private: f64,\n}\npub struct Other {\n    pub not_a_param: f64,\n}\n";
        let f = facts("crates/device/src/a.rs", src);
        let names: Vec<&str> = f.params.iter().map(|p| p.field.as_str()).collect();
        assert_eq!(names, vec!["live", "scoped"]);
        assert_eq!(f.params[0].strukt, "TuningParams");
        assert_eq!(f.params[0].site.line, 4);
    }

    #[test]
    fn test_and_nonlibrary_structs_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    pub struct FakeParams {\n        pub x: f64,\n    }\n}\n";
        assert!(facts("crates/device/src/a.rs", src).params.is_empty());
        let lib_src = "pub struct RealParams { pub x: f64 }\n";
        assert!(facts("crates/device/tests/a.rs", lib_src).params.is_empty());
    }

    #[test]
    fn dot_refs_are_collected_but_struct_update_is_not() {
        let src = "fn f(p: &P) -> f64 { let q = P { ..p.clone() }; p.alpha + q.beta }\n";
        let f = facts("crates/device/src/a.rs", src);
        assert!(f.dot_refs.contains("alpha"));
        assert!(f.dot_refs.contains("beta"));
        assert!(f.dot_refs.contains("clone"));
    }

    #[test]
    fn env_reads_are_normalized() {
        let src = "fn f() { let _ = std::env::var(\"SRAM_PROBE\"); let p = \"SRAM_SLO_\"; let d = \"SRAM_SLO_{}_MS\"; let no = \"not SRAM_X\"; }\n";
        let f = facts("crates/probe/src/a.rs", src);
        let names: Vec<&str> = f.env_reads.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["SRAM_PROBE", "SRAM_SLO_*", "SRAM_SLO_*_MS"]);
    }

    #[test]
    fn env_normalization_rejects_prose() {
        assert_eq!(normalize_env_name("SRAM_"), None);
        assert_eq!(normalize_env_name("SRAM_X=1"), None);
        assert_eq!(normalize_env_name("PROBE"), None);
        assert_eq!(
            normalize_env_name("SRAM_TRACE").as_deref(),
            Some("SRAM_TRACE")
        );
    }

    #[test]
    fn pattern_overlap_handles_wildcards_on_either_side() {
        assert!(patterns_overlap("SRAM_SLO_MS", "SRAM_SLO_MS"));
        assert!(patterns_overlap("SRAM_SLO_*_MS", "SRAM_SLO_OPTIMIZE_MS"));
        assert!(patterns_overlap("SRAM_SLO_OPTIMIZE_MS", "SRAM_SLO_*_MS"));
        assert!(patterns_overlap("SRAM_SLO_*", "SRAM_SLO_*_MS"));
        assert!(!patterns_overlap("SRAM_SLO_*_MS", "SRAM_TRACE"));
        assert!(!patterns_overlap("SRAM_PROBE", "SRAM_TRACE"));
    }

    #[test]
    fn metric_mentions_only_come_from_assertion_sites() {
        let src = "fn f() { assert_metric(\"spice.dc_solves\"); }\n";
        assert!(facts("crates/spice/src/a.rs", src)
            .metric_mentions
            .is_empty());
        assert!(facts("crates/spice/tests/a.rs", src)
            .metric_mentions
            .contains("spice.dc_solves"));
        assert!(facts("crates/bench/src/serve.rs", src)
            .metric_mentions
            .contains("spice.dc_solves"));
    }

    #[test]
    fn experiments_come_only_from_the_registry_source() {
        let src = "pub const E: &[X] = &[X { name: \"fig2\" }];\n";
        assert_eq!(facts(registry_sync::CLI_PATH, src).experiments.len(), 1);
        assert!(facts("crates/bench/src/other.rs", src)
            .experiments
            .is_empty());
    }
}
