//! `nan-unsafe`: float comparisons that misbehave on NaN.
//!
//! `partial_cmp().unwrap()` panics the moment a NaN EDP reaches a sort,
//! and float `==` inside non-test asserts encodes an exactness the
//! models cannot deliver. Use `f64::total_cmp` (total order, NaN sorts
//! last) or an explicit NaN policy, and tolerance comparisons in
//! asserts.

use crate::context::{FileClass, FileCtx};
use crate::lexer::TokenKind;
use crate::rules::RawDiag;

/// Tokens allowed between `partial_cmp` and the `unwrap`/`expect` that
/// makes it a panic chain.
const CHAIN_WINDOW: usize = 6;

const ASSERT_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Scans one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<RawDiag>) {
    if ctx.class == FileClass::Test {
        return;
    }
    let code = ctx.code_indices();
    for (pos, &idx) in code.iter().enumerate() {
        let token = &ctx.tokens[idx];
        if token.kind != TokenKind::Ident || ctx.in_test(token.line) {
            continue;
        }
        match token.text.as_str() {
            "partial_cmp" => {
                for ahead in 1..=CHAIN_WINDOW {
                    let Some(&n) = code.get(pos + ahead) else {
                        break;
                    };
                    let t = &ctx.tokens[n];
                    if matches!(t.text.as_str(), ";" | "{" | "}") {
                        break;
                    }
                    if t.kind == TokenKind::Ident && matches!(t.text.as_str(), "unwrap" | "expect")
                    {
                        out.push(RawDiag::at(
                            "nan-unsafe",
                            token,
                            "`partial_cmp().unwrap()` panics on NaN".to_owned(),
                            Some(
                                "use `f64::total_cmp` (NaN sorts last) or handle the None \
                                 with an explicit NaN policy"
                                    .to_owned(),
                            ),
                        ));
                        break;
                    }
                }
            }
            name if ASSERT_MACROS.contains(&name)
                && code
                    .get(pos + 1)
                    .is_some_and(|&n| ctx.tokens[n].text == "!") =>
            {
                check_assert_group(ctx, &code, pos, name, out);
            }
            _ => {}
        }
    }
}

/// Inside one `assert*!(…)` invocation, flags float equality: any float
/// literal in an `_eq`/`_ne` variant, or `==`/`!=` next to a float
/// literal in the plain variants.
fn check_assert_group(
    ctx: &FileCtx,
    code: &[usize],
    macro_pos: usize,
    name: &str,
    out: &mut Vec<RawDiag>,
) {
    // The delimiter opens two code tokens after the macro name.
    let Some(&open_idx) = code.get(macro_pos + 2) else {
        return;
    };
    let open = ctx.tokens[open_idx].text.as_str();
    let close = match open {
        "(" => ")",
        "[" => "]",
        "{" => "}",
        _ => return,
    };
    let is_eq_variant = name.ends_with("_eq") || name.ends_with("_ne");
    let mut depth = 0usize;
    let mut has_float = None;
    let mut has_eq_op = false;
    let mut prev_text = String::new();
    for &n in &code[macro_pos + 2..] {
        let t = &ctx.tokens[n];
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if t.kind == TokenKind::Float {
            has_float.get_or_insert(n);
        }
        if t.text == "=" && (prev_text == "=" || prev_text == "!") {
            has_eq_op = true;
        }
        prev_text.clone_from(&t.text);
    }
    if let Some(lit_idx) = has_float {
        if is_eq_variant || has_eq_op {
            out.push(RawDiag::at(
                "nan-unsafe",
                &ctx.tokens[lit_idx],
                format!("float equality inside `{name}!` outside tests"),
                Some(
                    "floating-point results carry rounding error and NaN risk; compare with \
                     a tolerance (`(a - b).abs() < eps`) instead"
                        .to_owned(),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<RawDiag> {
        let ctx = FileCtx::new(rel.to_owned(), src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn partial_cmp_unwrap_chain_fires() {
        let found = run(
            "crates/x/src/a.rs",
            "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
        );
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("partial_cmp"));
    }

    #[test]
    fn partial_cmp_handled_is_fine() {
        let found = run(
            "crates/x/src/a.rs",
            "fn f() { let o = a.partial_cmp(&b); let c = a.total_cmp(&b); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn float_eq_in_assert_fires() {
        let found = run("crates/x/src/a.rs", "fn f() { assert_eq!(x, 1.5); }");
        assert_eq!(found.len(), 1);
        let found = run("crates/x/src/a.rs", "fn f() { assert!(x == 0.5, \"m\"); }");
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn tolerance_compare_is_fine() {
        let found = run(
            "crates/x/src/a.rs",
            "fn f() { assert!((a - b).abs() < 1e-9, \"m\"); assert_eq!(n, 3); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn tests_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { assert_eq!(x, 1.5); }\n}\n";
        assert!(run("crates/x/src/a.rs", src).is_empty());
        assert!(run("crates/x/tests/a.rs", "fn f() { assert_eq!(x, 1.5); }").is_empty());
    }
}
