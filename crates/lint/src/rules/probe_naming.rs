//! `probe-naming`: `sram-probe` metric names stay consumable.
//!
//! `reproduce --probe-json` consumers key on metric names, and trace
//! consumers (the Chrome export, flame summaries, `sram-serve`'s
//! inline span trees) key on `trace_span!` names the same way, so
//! every counter/gauge/histogram/span/trace-span name must be
//!
//! * lowercase dotted `crate.subsystem.metric` (at least two segments
//!   of `[a-z0-9_]`),
//! * namespaced under its owning crate's prefix (`spice.*` in
//!   `crates/spice`, `coopt.*` in `crates/core`, …), and
//! * globally unique across metric kinds — the same name may be bumped
//!   from several call sites (two branches of one solver), but a name
//!   registered as a counter in one crate and a gauge in another would
//!   panic at runtime and corrupt dashboards before that.
//!
//! The first two checks are per-file and run in [`extract`], which
//! doubles as the symbol graph's probe-definition harvester: only names
//! that pass both checks enter the graph, so the cross-file passes
//! ([`collisions`] here, `probe-drift` in its own module) never chase a
//! typo. The kind-uniqueness check runs over the assembled graph.

use crate::context::{FileClass, FileCtx};
use crate::graph::{ProbeDef, SiteRef};
use crate::lexer::{str_value, TokenKind};
use crate::rules::{FileDiag, RawDiag};
use std::collections::HashMap;

/// Metric kind a call site registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// `probe_inc!` / `probe_add!` / `sram_probe::counter`.
    Counter,
    /// `probe_gauge!` / `sram_probe::gauge`.
    Gauge,
    /// `probe_record!` / `probe_span!` / `sram_probe::histogram` (spans
    /// feed histograms).
    Histogram,
    /// `trace_span!` (trace events share the metric namespace so flame
    /// summaries and probe snapshots never show two meanings for one
    /// name).
    Trace,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
            Kind::Trace => "trace span",
        }
    }

    /// One-word form used in `PROBES.md` table cells and the lint
    /// cache.
    #[must_use]
    pub fn word(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
            Kind::Trace => "trace",
        }
    }

    /// Inverse of [`Kind::word`].
    #[must_use]
    pub fn from_word(word: &str) -> Option<Self> {
        match word {
            "counter" => Some(Kind::Counter),
            "gauge" => Some(Kind::Gauge),
            "histogram" => Some(Kind::Histogram),
            "trace" => Some(Kind::Trace),
            _ => None,
        }
    }
}

/// Expected name prefixes per crate; `None` means format-only checks.
fn expected_prefixes(crate_name: &str) -> Option<&'static [&'static str]> {
    match crate_name {
        "spice" => Some(&["spice"]),
        "cell" => Some(&["cell"]),
        "core" => Some(&["coopt"]),
        "array" => Some(&["array"]),
        "device" => Some(&["device"]),
        "units" => Some(&["units"]),
        "bench" => Some(&["bench", "repro"]),
        "lint" => Some(&["lint"]),
        "serve" => Some(&["serve"]),
        "cluster" => Some(&["cluster"]),
        // The probe crate also owns the telemetry aggregator and the
        // structured event log, which register their own bookkeeping
        // metrics under dedicated namespaces.
        "probe" => Some(&["probe", "telemetry", "log"]),
        "faults" => Some(&["faults"]),
        _ => None,
    }
}

fn macro_kind(name: &str) -> Option<Kind> {
    match name {
        "probe_inc" | "probe_add" => Some(Kind::Counter),
        "probe_gauge" => Some(Kind::Gauge),
        "probe_record" | "probe_span" => Some(Kind::Histogram),
        "trace_span" => Some(Kind::Trace),
        _ => None,
    }
}

fn registry_fn_kind(name: &str) -> Option<Kind> {
    match name {
        "counter" => Some(Kind::Counter),
        "gauge" => Some(Kind::Gauge),
        "histogram" => Some(Kind::Histogram),
        _ => None,
    }
}

/// Scans one file: reports format and crate-prefix violations into
/// `out`, and returns the clean registrations as graph probe
/// definitions (in source order). `code` is `ctx.code_indices()`.
pub fn extract(ctx: &FileCtx, code: &[usize], out: &mut Vec<RawDiag>) -> Vec<ProbeDef> {
    let mut defs = Vec::new();
    if ctx.class == FileClass::Test {
        return defs;
    }
    for (pos, &idx) in code.iter().enumerate() {
        let token = &ctx.tokens[idx];
        if token.kind != TokenKind::Ident || ctx.in_test(token.line) {
            continue;
        }
        let kind = if let Some(kind) = macro_kind(&token.text) {
            // `probe_xxx!(` — only an invocation when followed by `!`.
            if code.get(pos + 1).map(|&n| ctx.tokens[n].text.as_str()) != Some("!") {
                continue;
            }
            kind
        } else if let Some(kind) = registry_fn_kind(&token.text) {
            // Direct registry call: require a `sram_probe ::` path prefix
            // so ordinary functions named `counter` don't fire.
            let is_probe_path = pos >= 2
                && ctx.tokens[code[pos - 1]].text == ":"
                && ctx.tokens[code[pos - 2]].text == ":"
                && pos >= 3
                && ctx.tokens[code[pos - 3]].text == "sram_probe";
            if !is_probe_path {
                continue;
            }
            kind
        } else {
            continue;
        };
        // The name is the first string literal within the next few
        // tokens (skipping `!`, `(`, and the `detail` level marker).
        let Some(name_idx) = code[pos + 1..]
            .iter()
            .take(4)
            .copied()
            .find(|&n| ctx.tokens[n].kind == TokenKind::Str)
        else {
            continue;
        };
        let name_token = &ctx.tokens[name_idx];
        let Some(name) = str_value(&name_token.text) else {
            continue;
        };
        if !well_formed(name) {
            out.push(RawDiag::at(
                "probe-naming",
                name_token,
                format!(
                    "probe metric name `{name}` is not lowercase dotted `crate.subsystem.metric`"
                ),
                Some(
                    "use at least two `.`-separated segments of [a-z0-9_] — e.g. \
                     `spice.dc_solves`"
                        .to_owned(),
                ),
            ));
            continue;
        }
        if let Some(prefixes) = expected_prefixes(&ctx.crate_name) {
            let head = name.split('.').next().unwrap_or("");
            if !prefixes.contains(&head) {
                out.push(RawDiag::at(
                    "probe-naming",
                    name_token,
                    format!(
                        "probe metric `{name}` in crate `{}` must be namespaced under `{}`",
                        ctx.crate_name,
                        prefixes.join(".` or `")
                    ),
                    None,
                ));
                continue;
            }
        }
        defs.push(ProbeDef {
            name: name.to_owned(),
            kind,
            site: SiteRef {
                line: name_token.line,
                col: name_token.col,
                len: name_token.text.chars().count().max(1) as u32,
            },
        });
    }
    defs
}

/// Cross-file pass over the graph's probe definitions (walk order):
/// the same name registered under two different kinds is reported at
/// the second registration site, naming the first.
pub fn collisions(probes: &[(String, ProbeDef)], out: &mut Vec<FileDiag>) {
    let mut seen: HashMap<&str, (Kind, String)> = HashMap::new();
    for (file, def) in probes {
        match seen.get(def.name.as_str()) {
            Some((first_kind, first_site)) if *first_kind != def.kind => {
                out.push(FileDiag {
                    file: file.clone(),
                    diag: RawDiag::at_site(
                        "probe-naming",
                        &def.site,
                        format!(
                            "probe metric `{}` registered as a {} here but as a {} at {}",
                            def.name,
                            def.kind.name(),
                            first_kind.name(),
                            first_site
                        ),
                        Some("metric names must map to exactly one kind workspace-wide".to_owned()),
                    ),
                });
            }
            Some(_) => {}
            None => {
                let site = format!("{file}:{}", def.site.line);
                seen.insert(def.name.as_str(), (def.kind, site));
            }
        }
    }
}

/// `^[a-z0-9_]+(\.[a-z0-9_]+)+$`
#[must_use]
pub fn well_formed(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    segments.len() >= 2
        && segments.iter().all(|s| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> (Vec<RawDiag>, Vec<ProbeDef>) {
        let ctx = FileCtx::new(rel.to_owned(), src);
        let code = ctx.code_indices();
        let mut out = Vec::new();
        let defs = extract(&ctx, &code, &mut out);
        (out, defs)
    }

    fn collide(sites: &[(&str, &str)]) -> Vec<FileDiag> {
        let mut probes = Vec::new();
        for (rel, src) in sites {
            let (out, defs) = run(rel, src);
            assert!(out.is_empty(), "{out:?}");
            for def in defs {
                probes.push(((*rel).to_owned(), def));
            }
        }
        let mut found = Vec::new();
        collisions(&probes, &mut found);
        found
    }

    #[test]
    fn well_formed_names_pass_and_are_extracted() {
        let (found, defs) = run(
            "crates/spice/src/a.rs",
            "fn f() { sram_probe::probe_inc!(\"spice.dc_solves\"); sram_probe::probe_record!(detail \"spice.iters\", 3); }",
        );
        assert!(found.is_empty(), "{found:?}");
        let names: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["spice.dc_solves", "spice.iters"]);
        assert_eq!(defs[0].kind, Kind::Counter);
        assert_eq!(defs[1].kind, Kind::Histogram);
    }

    #[test]
    fn bad_format_fires_and_is_not_extracted() {
        let (found, defs) = run(
            "crates/spice/src/a.rs",
            "fn f() { sram_probe::probe_inc!(\"BadName\"); sram_probe::probe_inc!(\"spice.Upper.x\"); }",
        );
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(defs.is_empty());
    }

    #[test]
    fn wrong_crate_prefix_fires() {
        let (found, defs) = run(
            "crates/cell/src/a.rs",
            "fn f() { sram_probe::probe_inc!(\"spice.in_cell_crate\"); }",
        );
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("namespaced"));
        assert!(defs.is_empty());
    }

    #[test]
    fn cross_kind_collision_fires() {
        let found = collide(&[(
            "crates/spice/src/a.rs",
            "fn f() { sram_probe::probe_inc!(\"spice.x\"); sram_probe::probe_gauge!(\"spice.x\", 1.0); }",
        )]);
        assert_eq!(found.len(), 1);
        assert!(found[0].diag.message.contains("registered as"));
        assert!(
            found[0].diag.message.contains("crates/spice/src/a.rs:1"),
            "{}",
            found[0].diag.message
        );
    }

    #[test]
    fn cross_file_collision_names_the_first_site() {
        let found = collide(&[
            (
                "crates/spice/src/a.rs",
                "fn f() { sram_probe::probe_inc!(\"spice.x\"); }",
            ),
            (
                "crates/spice/src/b.rs",
                "fn g() { sram_probe::probe_gauge!(\"spice.x\", 1.0); }",
            ),
        ]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].file, "crates/spice/src/b.rs");
        assert!(found[0].diag.message.contains("a.rs:1"));
    }

    #[test]
    fn same_kind_reuse_is_fine() {
        let found = collide(&[(
            "crates/spice/src/a.rs",
            "fn f() { sram_probe::probe_inc!(\"spice.x\"); sram_probe::probe_add!(\"spice.x\", 2); }",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn trace_span_names_are_checked() {
        let (found, _) = run(
            "crates/spice/src/a.rs",
            "fn f() { let _t = sram_probe::trace_span!(\"NotDotted\"); }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("not lowercase dotted"));
        let (found, _) = run(
            "crates/cell/src/a.rs",
            "fn f() { let _t = sram_probe::trace_span!(\"spice.wrong_crate\"); }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("namespaced"));
        let (found, defs) = run(
            "crates/spice/src/a.rs",
            "fn f() { let _t = sram_probe::trace_span!(\"spice.dc_solve\"); }",
        );
        assert!(found.is_empty(), "{found:?}");
        assert_eq!(defs[0].kind, Kind::Trace);
    }

    #[test]
    fn trace_span_collides_with_metric_kinds() {
        let found = collide(&[(
            "crates/spice/src/a.rs",
            "fn f() { sram_probe::probe_inc!(\"spice.x\"); let _t = sram_probe::trace_span!(\"spice.x\"); }",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].diag.message.contains("trace span"));
    }

    #[test]
    fn probe_crate_owns_telemetry_and_log_namespaces() {
        let (found, _) = run(
            "crates/probe/src/telemetry.rs",
            "fn f() { sram_probe::probe_inc!(\"telemetry.windows\"); sram_probe::probe_inc!(\"log.events_written\"); sram_probe::probe_inc!(\"probe.trace.dropped\"); }",
        );
        assert!(found.is_empty(), "{found:?}");
        let (found, _) = run(
            "crates/probe/src/telemetry.rs",
            "fn f() { sram_probe::probe_inc!(\"metrics.wrong_home\"); }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("namespaced"));
    }

    #[test]
    fn direct_registry_calls_are_checked() {
        let (found, _) = run(
            "crates/spice/src/a.rs",
            "fn f() { let c = sram_probe::counter(\"nodots\"); }",
        );
        assert_eq!(found.len(), 1);
        // A local fn named `counter` is not a probe call.
        let (found, defs) = run(
            "crates/spice/src/a.rs",
            "fn f() { let c = counter(\"x\"); }",
        );
        assert!(found.is_empty(), "{found:?}");
        assert!(defs.is_empty());
    }

    #[test]
    fn kind_words_round_trip() {
        for kind in [Kind::Counter, Kind::Gauge, Kind::Histogram, Kind::Trace] {
            assert_eq!(Kind::from_word(kind.word()), Some(kind));
        }
        assert_eq!(Kind::from_word("span"), None);
    }
}
