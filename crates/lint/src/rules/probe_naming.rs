//! `probe-naming`: `sram-probe` metric names stay consumable.
//!
//! `reproduce --probe-json` consumers key on metric names, and trace
//! consumers (the Chrome export, flame summaries, `sram-serve`'s
//! inline span trees) key on `trace_span!` names the same way, so
//! every counter/gauge/histogram/span/trace-span name must be
//!
//! * lowercase dotted `crate.subsystem.metric` (at least two segments
//!   of `[a-z0-9_]`),
//! * namespaced under its owning crate's prefix (`spice.*` in
//!   `crates/spice`, `coopt.*` in `crates/core`, …), and
//! * globally unique across metric kinds — the same name may be bumped
//!   from several call sites (two branches of one solver), but a name
//!   registered as a counter in one crate and a gauge in another would
//!   panic at runtime and corrupt dashboards before that.

use crate::context::{FileClass, FileCtx};
use crate::lexer::{str_value, TokenKind};
use crate::rules::RawDiag;
use std::collections::HashMap;

/// Metric kind a call site registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// `probe_inc!` / `probe_add!` / `sram_probe::counter`.
    Counter,
    /// `probe_gauge!` / `sram_probe::gauge`.
    Gauge,
    /// `probe_record!` / `probe_span!` / `sram_probe::histogram` (spans
    /// feed histograms).
    Histogram,
    /// `trace_span!` (trace events share the metric namespace so flame
    /// summaries and probe snapshots never show two meanings for one
    /// name).
    Trace,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
            Kind::Trace => "trace span",
        }
    }
}

/// Cross-file registry of first-seen kinds per metric name.
#[derive(Debug, Default)]
pub struct ProbeState {
    seen: HashMap<String, (Kind, String)>,
}

/// Expected name prefixes per crate; `None` means format-only checks.
fn expected_prefixes(crate_name: &str) -> Option<&'static [&'static str]> {
    match crate_name {
        "spice" => Some(&["spice"]),
        "cell" => Some(&["cell"]),
        "core" => Some(&["coopt"]),
        "array" => Some(&["array"]),
        "device" => Some(&["device"]),
        "units" => Some(&["units"]),
        "bench" => Some(&["bench", "repro"]),
        "lint" => Some(&["lint"]),
        "serve" => Some(&["serve"]),
        // The probe crate also owns the telemetry aggregator and the
        // structured event log, which register their own bookkeeping
        // metrics under dedicated namespaces.
        "probe" => Some(&["probe", "telemetry", "log"]),
        "faults" => Some(&["faults"]),
        _ => None,
    }
}

fn macro_kind(name: &str) -> Option<Kind> {
    match name {
        "probe_inc" | "probe_add" => Some(Kind::Counter),
        "probe_gauge" => Some(Kind::Gauge),
        "probe_record" | "probe_span" => Some(Kind::Histogram),
        "trace_span" => Some(Kind::Trace),
        _ => None,
    }
}

fn registry_fn_kind(name: &str) -> Option<Kind> {
    match name {
        "counter" => Some(Kind::Counter),
        "gauge" => Some(Kind::Gauge),
        "histogram" => Some(Kind::Histogram),
        _ => None,
    }
}

/// Scans one file, accumulating names into `state`.
pub fn check(ctx: &FileCtx, state: &mut ProbeState, out: &mut Vec<RawDiag>) {
    if ctx.class == FileClass::Test {
        return;
    }
    let code = ctx.code_indices();
    for (pos, &idx) in code.iter().enumerate() {
        let token = &ctx.tokens[idx];
        if token.kind != TokenKind::Ident || ctx.in_test(token.line) {
            continue;
        }
        let kind = if let Some(kind) = macro_kind(&token.text) {
            // `probe_xxx!(` — only an invocation when followed by `!`.
            if code.get(pos + 1).map(|&n| ctx.tokens[n].text.as_str()) != Some("!") {
                continue;
            }
            kind
        } else if let Some(kind) = registry_fn_kind(&token.text) {
            // Direct registry call: require a `sram_probe ::` path prefix
            // so ordinary functions named `counter` don't fire.
            let is_probe_path = pos >= 2
                && ctx.tokens[code[pos - 1]].text == ":"
                && ctx.tokens[code[pos - 2]].text == ":"
                && pos >= 3
                && ctx.tokens[code[pos - 3]].text == "sram_probe";
            if !is_probe_path {
                continue;
            }
            kind
        } else {
            continue;
        };
        // The name is the first string literal within the next few
        // tokens (skipping `!`, `(`, and the `detail` level marker).
        let Some(name_idx) = code[pos + 1..]
            .iter()
            .take(4)
            .copied()
            .find(|&n| ctx.tokens[n].kind == TokenKind::Str)
        else {
            continue;
        };
        let name_token = &ctx.tokens[name_idx];
        let Some(name) = str_value(&name_token.text) else {
            continue;
        };
        if !well_formed(name) {
            out.push(RawDiag::at(
                "probe-naming",
                name_token,
                format!(
                    "probe metric name `{name}` is not lowercase dotted `crate.subsystem.metric`"
                ),
                Some(
                    "use at least two `.`-separated segments of [a-z0-9_] — e.g. \
                     `spice.dc_solves`"
                        .to_owned(),
                ),
            ));
            continue;
        }
        if let Some(prefixes) = expected_prefixes(&ctx.crate_name) {
            let head = name.split('.').next().unwrap_or("");
            if !prefixes.contains(&head) {
                out.push(RawDiag::at(
                    "probe-naming",
                    name_token,
                    format!(
                        "probe metric `{name}` in crate `{}` must be namespaced under `{}`",
                        ctx.crate_name,
                        prefixes.join(".` or `")
                    ),
                    None,
                ));
                continue;
            }
        }
        let site = format!("{}:{}", ctx.rel, name_token.line);
        match state.seen.get(name) {
            Some((first_kind, first_site)) if *first_kind != kind => {
                out.push(RawDiag::at(
                    "probe-naming",
                    name_token,
                    format!(
                        "probe metric `{name}` registered as a {} here but as a {} at {}",
                        kind.name(),
                        first_kind.name(),
                        first_site
                    ),
                    Some("metric names must map to exactly one kind workspace-wide".to_owned()),
                ));
            }
            Some(_) => {}
            None => {
                state.seen.insert(name.to_owned(), (kind, site));
            }
        }
    }
}

/// `^[a-z0-9_]+(\.[a-z0-9_]+)+$`
fn well_formed(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    segments.len() >= 2
        && segments.iter().all(|s| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> (Vec<RawDiag>, ProbeState) {
        let ctx = FileCtx::new(rel.to_owned(), src);
        let mut out = Vec::new();
        let mut state = ProbeState::default();
        check(&ctx, &mut state, &mut out);
        (out, state)
    }

    #[test]
    fn well_formed_names_pass() {
        let (found, _) = run(
            "crates/spice/src/a.rs",
            "fn f() { sram_probe::probe_inc!(\"spice.dc_solves\"); sram_probe::probe_record!(detail \"spice.iters\", 3); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn bad_format_fires() {
        let (found, _) = run(
            "crates/spice/src/a.rs",
            "fn f() { sram_probe::probe_inc!(\"BadName\"); sram_probe::probe_inc!(\"spice.Upper.x\"); }",
        );
        assert_eq!(found.len(), 2, "{found:?}");
    }

    #[test]
    fn wrong_crate_prefix_fires() {
        let (found, _) = run(
            "crates/cell/src/a.rs",
            "fn f() { sram_probe::probe_inc!(\"spice.in_cell_crate\"); }",
        );
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("namespaced"));
    }

    #[test]
    fn cross_kind_collision_fires() {
        let (found, _) = run(
            "crates/spice/src/a.rs",
            "fn f() { sram_probe::probe_inc!(\"spice.x\"); sram_probe::probe_gauge!(\"spice.x\", 1.0); }",
        );
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("registered as"));
    }

    #[test]
    fn same_kind_reuse_is_fine() {
        let (found, _) = run(
            "crates/spice/src/a.rs",
            "fn f() { sram_probe::probe_inc!(\"spice.x\"); sram_probe::probe_add!(\"spice.x\", 2); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn trace_span_names_are_checked() {
        let (found, _) = run(
            "crates/spice/src/a.rs",
            "fn f() { let _t = sram_probe::trace_span!(\"NotDotted\"); }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("not lowercase dotted"));
        let (found, _) = run(
            "crates/cell/src/a.rs",
            "fn f() { let _t = sram_probe::trace_span!(\"spice.wrong_crate\"); }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("namespaced"));
        let (found, _) = run(
            "crates/spice/src/a.rs",
            "fn f() { let _t = sram_probe::trace_span!(\"spice.dc_solve\"); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn trace_span_collides_with_metric_kinds() {
        let (found, _) = run(
            "crates/spice/src/a.rs",
            "fn f() { sram_probe::probe_inc!(\"spice.x\"); let _t = sram_probe::trace_span!(\"spice.x\"); }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("trace span"));
    }

    #[test]
    fn probe_crate_owns_telemetry_and_log_namespaces() {
        let (found, _) = run(
            "crates/probe/src/telemetry.rs",
            "fn f() { sram_probe::probe_inc!(\"telemetry.windows\"); sram_probe::probe_inc!(\"log.events_written\"); sram_probe::probe_inc!(\"probe.trace.dropped\"); }",
        );
        assert!(found.is_empty(), "{found:?}");
        let (found, _) = run(
            "crates/probe/src/telemetry.rs",
            "fn f() { sram_probe::probe_inc!(\"metrics.wrong_home\"); }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("namespaced"));
    }

    #[test]
    fn direct_registry_calls_are_checked() {
        let (found, _) = run(
            "crates/spice/src/a.rs",
            "fn f() { let c = sram_probe::counter(\"nodots\"); }",
        );
        assert_eq!(found.len(), 1);
        // A local fn named `counter` is not a probe call.
        let (found, _) = run(
            "crates/spice/src/a.rs",
            "fn f() { let c = counter(\"x\"); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
