//! The rule set.
//!
//! Each rule inspects one file's token stream (plus, for the cross-file
//! rules, state accumulated across the walk) and reports raw findings;
//! the [`engine`](crate::engine) applies suppressions and severity
//! levels. DESIGN.md §Static-analysis records why each rule exists.

pub mod doc_coverage;
pub mod nan_unsafe;
pub mod no_panic;
pub mod probe_naming;
pub mod registry_sync;
pub mod thread_discipline;
pub mod unit_hygiene;
pub mod unused_suppression;

/// A finding before suppression/severity resolution.
#[derive(Debug, Clone)]
pub struct RawDiag {
    /// Rule name (must match an entry of [`crate::config::RULES`]).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Characters to underline.
    pub len: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: Option<String>,
}

impl RawDiag {
    /// Convenience constructor anchored at a token.
    #[must_use]
    pub fn at(
        rule: &'static str,
        token: &crate::lexer::Token,
        message: String,
        help: Option<String>,
    ) -> Self {
        Self {
            rule,
            line: token.line,
            col: token.col,
            len: token.text.chars().count().max(1) as u32,
            message,
            help,
        }
    }
}
