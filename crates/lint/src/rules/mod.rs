//! The rule set.
//!
//! Each per-file rule inspects one file's token stream and reports raw
//! findings; the cross-file rules instead query the workspace symbol
//! graph ([`crate::graph`]) assembled after the walk and report
//! [`FileDiag`]s anchored wherever the evidence lives. The
//! [`engine`](crate::engine) merges both streams per file, applies
//! suppressions (so a cross-file finding is suppressible at its anchor
//! line like any other), and resolves severity levels. DESIGN.md
//! §Static-analysis records why each rule exists.

pub mod config_sync;
pub mod dead_parameter;
pub mod doc_coverage;
pub mod nan_unsafe;
pub mod no_panic;
pub mod probe_drift;
pub mod probe_naming;
pub mod registry_sync;
pub mod thread_discipline;
pub mod unit_hygiene;
pub mod unused_suppression;

/// A finding before suppression/severity resolution.
#[derive(Debug, Clone)]
pub struct RawDiag {
    /// Rule name (must match an entry of [`crate::config::RULES`]).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Characters to underline.
    pub len: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: Option<String>,
}

impl RawDiag {
    /// Convenience constructor anchored at a token.
    #[must_use]
    pub fn at(
        rule: &'static str,
        token: &crate::lexer::Token,
        message: String,
        help: Option<String>,
    ) -> Self {
        Self {
            rule,
            line: token.line,
            col: token.col,
            len: token.text.chars().count().max(1) as u32,
            message,
            help,
        }
    }

    /// Convenience constructor anchored at a graph [`SiteRef`]
    /// (cross-file rules report where the definition lives).
    ///
    /// [`SiteRef`]: crate::graph::SiteRef
    #[must_use]
    pub fn at_site(
        rule: &'static str,
        site: &crate::graph::SiteRef,
        message: String,
        help: Option<String>,
    ) -> Self {
        Self {
            rule,
            line: site.line,
            col: site.col,
            len: site.len.max(1),
            message,
            help,
        }
    }
}

/// A cross-file finding: a [`RawDiag`] plus the root-relative file it
/// anchors to. Findings anchored at walked `.rs` files join that file's
/// suppression resolution; findings anchored at documentation files
/// (`EXPERIMENTS.md`, `PROBES.md`, `README.md`, `DESIGN.md`) are
/// reported directly.
#[derive(Debug, Clone)]
pub struct FileDiag {
    /// Root-relative `/`-separated path the finding anchors to.
    pub file: String,
    /// The finding itself.
    pub diag: RawDiag,
}
