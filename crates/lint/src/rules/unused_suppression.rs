//! `unused-suppression`: inline `sram-lint: allow` comments whose rule
//! never fires on the lines they cover.
//!
//! A suppression is a standing claim — "this rule is wrong here, and
//! here is why". When the code under it changes (the `unwrap` is
//! refactored away, the literal gains a unit constructor, the dead
//! parameter gets wired in), the claim goes stale but the comment
//! survives, silently licensing future violations on that line. This
//! rule closes the loop: the engine records which suppressions actually
//! absorbed a diagnostic — per-file *and* cross-file findings alike,
//! since graph rules anchor at `.rs` sites and resolve through the same
//! accounting — and every suppression that absorbed none is reported at
//! its own comment line.
//!
//! `suppression-syntax` errors are a different failure (the comment
//! never parsed, so it covers nothing) and stay with that rule.

use crate::context::Suppression;
use crate::rules::RawDiag;

/// Reports every suppression whose slot in `used` is `false`. `used` is
/// index-aligned with `suppressions` and filled in by the engine while
/// resolving the file's merged per-file + cross-file diagnostics.
pub fn check(suppressions: &[Suppression], used: &[bool], out: &mut Vec<RawDiag>) {
    for (i, suppression) in suppressions.iter().enumerate() {
        if used.get(i).copied().unwrap_or(false) {
            continue;
        }
        // Suppressions of this very rule resolve only after this check
        // runs, so their usage can't be known here; exempt them rather
        // than report a false stale.
        if suppression.rule == "unused-suppression" {
            continue;
        }
        let scope = if suppression.whole_file {
            "anywhere in the file".to_owned()
        } else if suppression.from_line == suppression.to_line {
            format!("on line {}", suppression.from_line)
        } else {
            format!("on lines {}-{}", suppression.from_line, suppression.to_line)
        };
        out.push(RawDiag {
            rule: "unused-suppression",
            line: suppression.from_line,
            col: 1,
            len: 1,
            message: format!(
                "suppression of `{}` is unused: the rule reports nothing {scope}",
                suppression.rule
            ),
            help: Some(
                "delete the stale `sram-lint: allow` comment (or move it to the line \
                 that still violates the rule)"
                    .to_owned(),
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;

    #[test]
    fn unused_suppression_is_reported_at_its_comment() {
        let src = "// sram-lint: allow(no-panic) stale claim\nlet x = 1;\n";
        let ctx = FileCtx::new("crates/cell/src/a.rs".into(), src);
        assert_eq!(ctx.suppressions.len(), 1);
        let mut out = Vec::new();
        check(&ctx.suppressions, &[false], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unused-suppression");
        assert_eq!(out[0].line, 1);
        assert!(out[0].message.contains("no-panic"), "{}", out[0].message);
    }

    #[test]
    fn used_suppression_is_quiet() {
        let src = "// sram-lint: allow(no-panic) caller checks\nlet x = v.unwrap();\n";
        let ctx = FileCtx::new("crates/cell/src/a.rs".into(), src);
        let mut out = Vec::new();
        check(&ctx.suppressions, &[true], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn whole_file_scope_is_described() {
        let src = "// sram-lint: allow-file(no-panic) generated shim\nfn a() {}\n";
        let ctx = FileCtx::new("crates/cell/src/a.rs".into(), src);
        let mut out = Vec::new();
        check(&ctx.suppressions, &[false], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("anywhere in the file"));
    }

    #[test]
    fn stale_cross_file_rule_suppressions_are_reported_too() {
        let src =
            "// sram-lint: allow(dead-parameter) field is read by destructuring\nlet x = 1;\n";
        let ctx = FileCtx::new("crates/device/src/a.rs".into(), src);
        assert_eq!(ctx.suppressions.len(), 1);
        let mut out = Vec::new();
        check(&ctx.suppressions, &[false], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("dead-parameter"));
    }
}
