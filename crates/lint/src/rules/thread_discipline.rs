//! `thread-discipline`: no detached threads outside the sanctioned
//! crates.
//!
//! `crates/core`'s exhaustive search owns the workspace's compute
//! parallelism, and it uses *scoped* threads (`std::thread::scope`) so
//! worker lifetimes are bounded and panics propagate at the join.
//! `crates/serve` is the second sanctioned crate: a server's acceptor,
//! connection, and worker threads genuinely outlive any one stack frame,
//! and its shutdown path joins every handle it spawns. `crates/faults`
//! is the third: `CancelToken::cancel_after` arms a timer thread whose
//! whole purpose is to outlive the calling frame. `crates/probe` is the
//! fourth: the telemetry aggregator's background sampler thread runs
//! for the life of the collection window and is joined on `stop()`.
//! `crates/cluster` is the fifth: the router's acceptor, connection,
//! health-poller, and hedged-forward threads mirror serve's I/O
//! threading and are joined on `Router::shutdown`. A
//! detached `std::thread::spawn` anywhere else would leak work past the
//! end of an experiment and race the probe registry snapshot; this rule
//! keeps the policy enforced as configuration rather than as per-line
//! suppressions. `scope.spawn(…)` (a method call) is allowed everywhere.

use crate::context::{FileClass, FileCtx};
use crate::lexer::TokenKind;
use crate::rules::RawDiag;

/// Crates whose library code may call `std::thread::spawn`: the search
/// core (owns compute parallelism), the query server (owns I/O
/// threads, joined on shutdown), the fault layer (cancellation timer
/// threads), the probe layer (the telemetry sampler thread, joined
/// on `telemetry::stop()`), and the cluster router (acceptor, poller,
/// and hedged-forward threads, joined on `Router::shutdown`).
const SANCTIONED_SPAWN_CRATES: &[&str] = &["core", "serve", "faults", "probe", "cluster"];

/// Scans one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<RawDiag>) {
    if ctx.class == FileClass::Test || SANCTIONED_SPAWN_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let code = ctx.code_indices();
    for (pos, &idx) in code.iter().enumerate() {
        let token = &ctx.tokens[idx];
        if token.kind != TokenKind::Ident || token.text != "spawn" || ctx.in_test(token.line) {
            continue;
        }
        // `thread :: spawn` — a path call, not a scope method.
        let is_thread_path = pos >= 3
            && ctx.tokens[code[pos - 1]].text == ":"
            && ctx.tokens[code[pos - 2]].text == ":"
            && ctx.tokens[code[pos - 3]].text == "thread";
        if is_thread_path {
            out.push(RawDiag::at(
                "thread-discipline",
                token,
                "detached `std::thread::spawn` outside the sanctioned crates \
                 (core, serve, faults, probe, cluster)"
                    .to_owned(),
                Some(
                    "route parallelism through the search layer's scoped threads \
                     (`std::thread::scope`) so worker lifetimes stay bounded"
                        .to_owned(),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<RawDiag> {
        let ctx = FileCtx::new(rel.to_owned(), src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn detached_spawn_fires() {
        let found = run(
            "crates/cell/src/a.rs",
            "fn f() { std::thread::spawn(|| {}); }",
        );
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn scoped_spawn_is_fine() {
        let found = run(
            "crates/cell/src/a.rs",
            "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn sanctioned_crates_and_tests_are_exempt() {
        for crate_dir in ["core", "serve", "faults", "probe", "cluster"] {
            assert!(
                run(
                    &format!("crates/{crate_dir}/src/a.rs"),
                    "fn f() { std::thread::spawn(|| {}); }"
                )
                .is_empty(),
                "crates/{crate_dir} is sanctioned"
            );
        }
        assert!(run(
            "crates/cell/tests/a.rs",
            "fn f() { std::thread::spawn(|| {}); }"
        )
        .is_empty());
    }

    #[test]
    fn unsanctioned_crates_still_fire() {
        for crate_dir in ["bench", "coopt", "array"] {
            assert_eq!(
                run(
                    &format!("crates/{crate_dir}/src/a.rs"),
                    "fn f() { std::thread::spawn(|| {}); }"
                )
                .len(),
                1,
                "crates/{crate_dir} is not sanctioned"
            );
        }
    }
}
