//! `dead-parameter`: every exposed knob must be read by something.
//!
//! The DAC'16 co-optimization space is only as trustworthy as its
//! parameter plumbing: a field added to `DeviceParams`, `DesignSpace`,
//! or a `*Config` struct that nothing ever reads is a dimension the
//! sweep silently ignores — the experiment *looks* like it explored the
//! knob, and didn't. This rule closes the ROADMAP's carried-over
//! "dead-parameter detection" item with a workspace use/def pass: the
//! symbol graph collects every `pub` named field of a parameter struct
//! (names ending in `Params`/`Config`/`Space`/`Options`, library code)
//! as a definition, and every `.field` dot access anywhere in the
//! workspace — tests included, deliberately conservative — as a use. A
//! field with no use anywhere is dead.
//!
//! Lexical limits, documented as always: a read through destructuring
//! (`let DeviceParams { vdd, .. } = p`) is invisible to the dot-access
//! scan, as is a read via a same-named field of an unrelated struct
//! (which *hides* deadness rather than inventing it). The escape hatch
//! is the usual reasoned suppression at the field's declaration line.

use crate::graph::Graph;
use crate::rules::{FileDiag, RawDiag};

/// Reports every parameter-struct field never dot-accessed anywhere in
/// the workspace.
pub fn check(graph: &Graph, out: &mut Vec<FileDiag>) {
    for (file, def) in &graph.params {
        if graph.is_field_read(&def.field) {
            continue;
        }
        out.push(FileDiag {
            file: file.clone(),
            diag: RawDiag::at_site(
                "dead-parameter",
                &def.site,
                format!(
                    "parameter `{}.{}` is never read: no rule, experiment, or serve query \
                     dot-accesses `{}` anywhere in the workspace",
                    def.strukt, def.field, def.field
                ),
                Some(
                    "wire the knob into the model/search/serve path, remove it, or — if it is \
                     only read by destructuring, which this lexical pass cannot see — suppress \
                     with `// sram-lint: allow(dead-parameter) <reason>` at the declaration"
                        .to_owned(),
                ),
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;
    use crate::engine::FileAnalysis;

    fn graph_for(files: &[(&str, &str)]) -> Graph {
        let analyses: Vec<FileAnalysis> = files
            .iter()
            .map(|(rel, src)| {
                let ctx = FileCtx::new((*rel).to_owned(), src);
                let mut out = Vec::new();
                let facts = crate::graph::extract(&ctx, &mut out);
                FileAnalysis::fresh((*rel).to_owned(), 0, Vec::new(), Vec::new(), facts)
            })
            .collect();
        Graph::build(&analyses)
    }

    #[test]
    fn unread_field_is_dead_and_read_field_is_live() {
        let graph = graph_for(&[
            (
                "crates/device/src/params.rs",
                "/// Card.\npub struct TuneParams {\n    /// Read.\n    pub live: f64,\n    /// Never read.\n    pub dead: f64,\n}\n",
            ),
            (
                "crates/core/src/search.rs",
                "fn f(p: &TuneParams) -> f64 { p.live * 2.0 }\n",
            ),
        ]);
        let mut out = Vec::new();
        check(&graph, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/device/src/params.rs");
        assert!(out[0].diag.message.contains("TuneParams.dead"));
        assert_eq!(out[0].diag.line, 6);
    }

    #[test]
    fn a_read_from_a_test_counts() {
        let graph = graph_for(&[
            (
                "crates/device/src/params.rs",
                "/// Card.\npub struct TuneParams {\n    /// Only a test reads it.\n    pub test_only: f64,\n}\n",
            ),
            (
                "crates/device/tests/check.rs",
                "fn t(p: &TuneParams) { assert!(p.test_only > 0.0); }\n",
            ),
        ]);
        let mut out = Vec::new();
        check(&graph, &mut out);
        assert!(out.is_empty(), "tests keep a parameter alive: {out:?}");
    }

    #[test]
    fn struct_literal_init_does_not_count_as_a_read() {
        // Set-but-never-read is exactly the bug this rule exists for.
        let graph = graph_for(&[
            (
                "crates/device/src/params.rs",
                "/// Card.\npub struct TuneParams {\n    /// Written, never read.\n    pub write_only: f64,\n}\nfn mk() -> TuneParams { TuneParams { write_only: 1.0 } }\n",
            ),
        ]);
        let mut out = Vec::new();
        check(&graph, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].diag.message.contains("write_only"));
    }
}
