//! `config-sync`: every `SRAM_*` environment knob is documented, and
//! every documented knob exists.
//!
//! The workspace's runtime surface is a family of `SRAM_*` env vars
//! (`SRAM_PROBE`, `SRAM_TRACE_SAMPLE`, the per-op `SRAM_SLO_<OP>_MS`
//! overrides, …). An undocumented variable is a knob nobody can find;
//! a documented variable nothing reads is a knob that silently does
//! nothing — the config-drift twin of `registry-sync`. The symbol graph
//! collects every full-string `SRAM_*` literal in library and binary
//! code as a read; this rule scans the root `README.md` and `DESIGN.md`
//! for `SRAM_*` tokens and diffs the two sets.
//!
//! Both sides are normalized into wildcard patterns so templated names
//! match their documentation: a code literal with a `{…}` placeholder
//! or a trailing `_` (a prefix completed at runtime) and a doc token
//! with an `<OP>`-style placeholder all become `*`, and two patterns
//! agree when their wildcard expansions can denote a common name.
//!
//! Lexical limits: any full `SRAM_*` string literal in non-test code
//! counts as a read — including one inside a log message — which can
//! only over-satisfy the documented-but-unread direction, never invent
//! a false undocumented-read.

use crate::graph::{patterns_overlap, Graph};
use crate::rules::{FileDiag, RawDiag};
use std::collections::BTreeSet;
use std::path::Path;

/// Root-relative documentation files that must mention every env var.
pub const DOC_PATHS: &[&str] = &["README.md", "DESIGN.md"];

/// One `SRAM_*` token found in a documentation file.
#[derive(Debug, Clone)]
struct DocPattern {
    file: &'static str,
    line: u32,
    col: u32,
    len: u32,
    pattern: String,
}

/// Diffs the graph's env-var reads against the root documentation.
pub fn check(graph: &Graph, root: &Path, out: &mut Vec<FileDiag>) {
    if graph.env_reads.is_empty() {
        // A tree with no env surface (most fixture trees) has nothing
        // to keep in sync — absent docs are fine there.
        return;
    }
    let mut docs: Vec<DocPattern> = Vec::new();
    for file in DOC_PATHS {
        if let Ok(text) = std::fs::read_to_string(root.join(file)) {
            scan_doc(file, &text, &mut docs);
        }
    }
    // Code → docs: every read pattern must be documented somewhere.
    // Deduplicated by pattern; the first (walk-order) read site anchors.
    let mut seen = BTreeSet::new();
    for (file, read) in &graph.env_reads {
        if !seen.insert(read.name.as_str()) {
            continue;
        }
        if docs
            .iter()
            .any(|d| patterns_overlap(&d.pattern, &read.name))
        {
            continue;
        }
        out.push(FileDiag {
            file: file.clone(),
            diag: RawDiag::at_site(
                "config-sync",
                &read.site,
                format!(
                    "env var `{}` is read here but documented in neither README.md nor DESIGN.md",
                    read.name
                ),
                Some(
                    "document the variable (name, values, default) in the README or DESIGN.md, \
                     or rename/remove the knob"
                        .to_owned(),
                ),
            ),
        });
    }
    // Docs → code: every documented pattern must have a reader.
    let mut seen_doc = BTreeSet::new();
    for doc in &docs {
        if !seen_doc.insert(doc.pattern.clone()) {
            continue;
        }
        if graph
            .env_reads
            .iter()
            .any(|(_, r)| patterns_overlap(&r.name, &doc.pattern))
        {
            continue;
        }
        out.push(FileDiag {
            file: doc.file.to_owned(),
            diag: RawDiag {
                rule: "config-sync",
                line: doc.line,
                col: doc.col,
                len: doc.len,
                message: format!(
                    "`{}` is documented in {} but no code reads an env var matching it",
                    doc.pattern, doc.file
                ),
                help: Some(
                    "delete the stale documentation or wire the variable back into the code"
                        .to_owned(),
                ),
            },
        });
    }
}

/// Scans one documentation file for `SRAM_*` tokens, normalizing
/// `<PLACEHOLDER>` segments to `*`.
fn scan_doc(file: &'static str, text: &str, out: &mut Vec<DocPattern>) {
    for (i, line) in text.lines().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut pos = 0usize;
        while pos < chars.len() {
            if !line_starts_with(&chars, pos, "SRAM_") {
                pos += 1;
                continue;
            }
            // Word-boundary on the left so `XSRAM_Y` doesn't match.
            if pos > 0 && (chars[pos - 1].is_ascii_alphanumeric() || chars[pos - 1] == '_') {
                pos += 1;
                continue;
            }
            let start = pos;
            let mut end = pos + 5;
            let mut pattern = String::from("SRAM_");
            while end < chars.len() {
                let c = chars[end];
                match c {
                    'A'..='Z' | '0'..='9' | '_' => {
                        pattern.push(c);
                        end += 1;
                    }
                    '<' => {
                        while end < chars.len() && chars[end] != '>' {
                            end += 1;
                        }
                        end += 1; // past '>'
                        pattern.push('*');
                    }
                    _ => break,
                }
            }
            pos = end.max(start + 1);
            if pattern == "SRAM_" {
                // Prose mentioning the family prefix, not a variable.
                continue;
            }
            if let Some(stripped) = pattern.strip_suffix('_') {
                if !stripped.ends_with('*') {
                    pattern = format!("{stripped}_*");
                }
            }
            out.push(DocPattern {
                file,
                line: (i + 1) as u32,
                col: (start + 1) as u32,
                len: (end - start).max(1) as u32,
                pattern,
            });
        }
    }
}

fn line_starts_with(chars: &[char], pos: usize, needle: &str) -> bool {
    needle
        .chars()
        .enumerate()
        .all(|(k, c)| chars.get(pos + k) == Some(&c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;
    use crate::engine::FileAnalysis;

    fn graph_for(files: &[(&str, &str)]) -> Graph {
        let analyses: Vec<FileAnalysis> = files
            .iter()
            .map(|(rel, src)| {
                let ctx = FileCtx::new((*rel).to_owned(), src);
                let mut out = Vec::new();
                let facts = crate::graph::extract(&ctx, &mut out);
                FileAnalysis::fresh((*rel).to_owned(), 0, Vec::new(), Vec::new(), facts)
            })
            .collect();
        Graph::build(&analyses)
    }

    fn run_in_tmp(graph: &Graph, readme: Option<&str>, design: Option<&str>) -> Vec<FileDiag> {
        let dir = std::env::temp_dir().join(format!(
            "sram-lint-cfgsync-{}-{:p}",
            std::process::id(),
            &graph
        ));
        std::fs::create_dir_all(&dir).unwrap();
        if let Some(text) = readme {
            std::fs::write(dir.join("README.md"), text).unwrap();
        }
        if let Some(text) = design {
            std::fs::write(dir.join("DESIGN.md"), text).unwrap();
        }
        let mut out = Vec::new();
        check(graph, &dir, &mut out);
        std::fs::remove_dir_all(&dir).ok();
        out
    }

    #[test]
    fn documented_reads_are_quiet_in_both_directions() {
        let graph = graph_for(&[(
            "crates/probe/src/lib.rs",
            "fn f() { let _ = std::env::var(\"SRAM_PROBE\"); }\n",
        )]);
        let out = run_in_tmp(
            &graph,
            Some("Set `SRAM_PROBE=1` to enable metrics.\n"),
            None,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn undocumented_read_fires_at_the_read_site() {
        let graph = graph_for(&[(
            "crates/probe/src/lib.rs",
            "fn f() { let _ = std::env::var(\"SRAM_SECRET_KNOB\"); }\n",
        )]);
        let out = run_in_tmp(&graph, Some("No knobs here.\n"), None);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/probe/src/lib.rs");
        assert!(out[0].diag.message.contains("SRAM_SECRET_KNOB"));
    }

    #[test]
    fn ghost_documentation_fires_at_the_doc_line() {
        let graph = graph_for(&[(
            "crates/probe/src/lib.rs",
            "fn f() { let _ = std::env::var(\"SRAM_PROBE\"); }\n",
        )]);
        let out = run_in_tmp(
            &graph,
            Some("`SRAM_PROBE` enables metrics.\n\n`SRAM_GHOST` does nothing.\n"),
            None,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "README.md");
        assert_eq!(out[0].diag.line, 3);
        assert!(out[0].diag.message.contains("SRAM_GHOST"));
    }

    #[test]
    fn placeholders_match_templated_reads() {
        let graph = graph_for(&[(
            "crates/serve/src/slo.rs",
            "const P: &str = \"SRAM_SLO_\"; const Q: &str = \"SRAM_SLO_OPTIMIZE_MS\";\n",
        )]);
        let out = run_in_tmp(
            &graph,
            Some("Override per op with `SRAM_SLO_<OP>_MS` (prefix `SRAM_SLO_`).\n"),
            None,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn a_tree_without_env_reads_needs_no_docs() {
        let graph = graph_for(&[("crates/x/src/a.rs", "fn f() {}\n")]);
        let out = run_in_tmp(&graph, None, None);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn doc_scanner_handles_boundaries() {
        let mut docs = Vec::new();
        scan_doc(
            "README.md",
            "SRAM_PROBE and XSRAM_NOT and SRAM_ alone and SRAM_SLO_<OP>_MS=5\n",
            &mut docs,
        );
        let patterns: Vec<&str> = docs.iter().map(|d| d.pattern.as_str()).collect();
        assert_eq!(patterns, vec!["SRAM_PROBE", "SRAM_SLO_*_MS"]);
    }
}
