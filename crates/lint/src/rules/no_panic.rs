//! `no-panic`: library crates must not abort.
//!
//! A single `unwrap()` on a non-converged SPICE solve kills a whole
//! exhaustive sweep over `V_SSC × n_r × N_pre × N_wr`, so panicking
//! escape hatches are denied in library code and allowed in tests,
//! benches, examples, and binary entry points. Contract assertions
//! (`assert!`) with a documented `# Panics` section remain legal — the
//! rule targets *recoverable* failures handled unrecoverably.

use crate::context::{FileClass, FileCtx};
use crate::lexer::TokenKind;
use crate::rules::RawDiag;

const PANICKING_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const PANICKING_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Scans one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<RawDiag>) {
    if ctx.class != FileClass::Library {
        return;
    }
    let code = ctx.code_indices();
    for (pos, &idx) in code.iter().enumerate() {
        let token = &ctx.tokens[idx];
        if token.kind != TokenKind::Ident || ctx.in_test(token.line) {
            continue;
        }
        let name = token.text.as_str();
        let prev = pos
            .checked_sub(1)
            .map(|p| ctx.tokens[code[p]].text.as_str());
        let next = code.get(pos + 1).map(|&n| ctx.tokens[n].text.as_str());
        if PANICKING_METHODS.contains(&name) && prev == Some(".") {
            out.push(RawDiag::at(
                "no-panic",
                token,
                format!("`.{name}()` in library code aborts the whole process on failure"),
                Some(
                    "propagate the crate's error type instead (the search loop must survive \
                     one bad candidate), or suppress with `// sram-lint: allow(no-panic) <reason>`"
                        .to_owned(),
                ),
            ));
        } else if PANICKING_MACROS.contains(&name) && next == Some("!") {
            out.push(RawDiag::at(
                "no-panic",
                token,
                format!("`{name}!` in library code aborts the whole process"),
                Some(
                    "return an error variant instead, or suppress with \
                     `// sram-lint: allow(no-panic) <reason>`"
                        .to_owned(),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<RawDiag> {
        let ctx = FileCtx::new(rel.to_owned(), src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let found = run(
            "crates/x/src/a.rs",
            "fn f() { v.unwrap(); w.expect(\"m\"); panic!(\"boom\"); unreachable!(); }",
        );
        assert_eq!(found.len(), 4);
    }

    #[test]
    fn unwrap_or_is_fine() {
        let found = run(
            "crates/x/src/a.rs",
            "fn f() { v.unwrap_or(0); v.unwrap_or_else(|| 0); v.unwrap_or_default(); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let found = run(
            "crates/x/src/a.rs",
            "// call .unwrap() at your peril\nfn f() { let s = \".unwrap()\"; }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn tests_bins_and_test_mods_are_exempt() {
        assert!(run("crates/x/tests/a.rs", "fn f() { v.unwrap(); }").is_empty());
        assert!(run("crates/x/src/bin/a.rs", "fn f() { v.unwrap(); }").is_empty());
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { v.unwrap(); }\n}\n";
        assert!(run("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn assert_is_allowed() {
        let found = run("crates/x/src/a.rs", "fn f() { assert!(x > 0.0, \"m\"); }");
        assert!(found.is_empty(), "{found:?}");
    }
}
