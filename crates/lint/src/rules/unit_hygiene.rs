//! `unit-hygiene`: bare physical magnitudes in model crates.
//!
//! The paper's Tables 1–3 models silently produce garbage when a raw
//! millivolt magnitude leaks in where volts are expected. Every
//! physical quantity in the workspace flows through the typed
//! `sram-units` newtypes; this rule keeps the magnitudes honest at the
//! boundary by flagging small-magnitude scientific-notation literals
//! (`1.5e-12`, `9.5e-5`, …) in the model crates `cell`, `array`, and
//! `core` unless they are
//!
//! * an argument in reach of an `sram-units` `from_*` constructor, or
//! * the initializer of a named `const`/`static` (the name documents
//!   the unit), or
//! * explicitly suppressed with a reason.
//!
//! The rule is deliberately a heuristic: it cannot type-check `f64`
//! flows, but in this codebase physical constants are exactly the
//! literals written in scientific notation with negative exponents.

use crate::context::{FileClass, FileCtx};
use crate::lexer::TokenKind;
use crate::rules::RawDiag;

/// Crates whose models carry physical magnitudes.
const MODEL_CRATES: &[&str] = &["cell", "array", "core"];

/// Exponent at or below which a literal counts as a physical magnitude.
const EXPONENT_THRESHOLD: i32 = -3;

/// How many preceding code tokens may separate a literal from its
/// `from_*` constructor.
const CONSTRUCTOR_WINDOW: usize = 8;

/// Scans one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<RawDiag>) {
    if ctx.class != FileClass::Library || !MODEL_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let code = ctx.code_indices();
    for (pos, &idx) in code.iter().enumerate() {
        let token = &ctx.tokens[idx];
        if token.kind != TokenKind::Float || ctx.in_test(token.line) {
            continue;
        }
        let Some(exp) = negative_exponent(&token.text) else {
            continue;
        };
        if exp > EXPONENT_THRESHOLD {
            continue;
        }
        if near_units_constructor(ctx, &code, pos) || in_const_item(ctx, &code, pos) {
            continue;
        }
        out.push(RawDiag::at(
            "unit-hygiene",
            token,
            format!(
                "bare physical-magnitude literal `{}` in model crate `{}`",
                token.text, ctx.crate_name
            ),
            Some(
                "wrap it in an sram-units constructor (Voltage::from_millivolts, \
                 Time::from_picoseconds, …) or hoist it to a named const documenting its unit"
                    .to_owned(),
            ),
        ));
    }
}

/// The literal's base-10 exponent when written in scientific notation
/// with a negative exponent (`1.5e-12` → `-12`); `None` otherwise.
fn negative_exponent(text: &str) -> Option<i32> {
    let lower = text.to_ascii_lowercase();
    let (_, tail) = lower.split_once('e')?;
    let tail = tail.strip_prefix('-')?;
    let digits: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .filter(|c| c.is_ascii_digit())
        .collect();
    digits.parse::<i32>().ok().map(|e| -e)
}

/// Looks back a few tokens for an `sram-units` `from_*` constructor;
/// stops at statement boundaries.
fn near_units_constructor(ctx: &FileCtx, code: &[usize], pos: usize) -> bool {
    for back in 1..=CONSTRUCTOR_WINDOW {
        let Some(p) = pos.checked_sub(back) else {
            break;
        };
        let t = &ctx.tokens[code[p]];
        if matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        if t.kind == TokenKind::Ident && t.text.starts_with("from_") {
            return true;
        }
    }
    false
}

/// `true` when the literal initializes a `const` or `static` item (scan
/// back to the previous statement boundary).
fn in_const_item(ctx: &FileCtx, code: &[usize], pos: usize) -> bool {
    for p in (0..pos).rev() {
        let t = &ctx.tokens[code[p]];
        match t.text.as_str() {
            ";" | "{" | "}" => return false,
            "const" | "static" if t.kind == TokenKind::Ident => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<RawDiag> {
        let ctx = FileCtx::new(rel.to_owned(), src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn bare_magnitude_fires() {
        let found = run("crates/cell/src/a.rs", "fn f() -> f64 { 1.5e-12 * x }");
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("1.5e-12"));
    }

    #[test]
    fn constructor_context_is_fine() {
        let found = run(
            "crates/cell/src/a.rs",
            "fn f() { let t = Time::from_seconds(1.5e-12); let c = Capacitance::from_farads(2.0e-15 * n); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn const_item_is_fine() {
        let found = run(
            "crates/cell/src/a.rs",
            "const WRITE_DELAY_S: f64 = 1.5e-12;\nstatic EPS: f64 = 1e-9;\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn small_exponents_and_other_crates_are_ignored() {
        assert!(run("crates/cell/src/a.rs", "fn f() { x * 1e-2 }").is_empty());
        assert!(run("crates/spice/src/a.rs", "fn f() { x * 1e-12 }").is_empty());
        assert!(run("crates/cell/tests/a.rs", "fn f() { x * 1e-12 }").is_empty());
    }

    #[test]
    fn exponent_parsing() {
        assert_eq!(negative_exponent("1.5e-12"), Some(-12));
        assert_eq!(negative_exponent("9.5E-5"), Some(-5));
        assert_eq!(negative_exponent("1e9"), None);
        assert_eq!(negative_exponent("1.25"), None);
    }
}
