//! `doc-coverage`: every `pub` item in library code carries a doc
//! comment.
//!
//! The workspace builds with `#![warn(missing_docs)]` and CI denies
//! warnings, but rustc only requires docs on items *reachable* from the
//! crate root — a `pub fn` inside an impl of a private type, or a pub
//! item in a private module, slips through and then surprises the next
//! reader who makes the enclosing type public. This rule closes that
//! gap at the token level: any `pub` item or `pub` struct field in a
//! [`FileClass::Library`] file must have an adjacent outer doc comment
//! (`///` or `/** … */`), looking through attributes and plain
//! comments exactly as rustdoc does.
//!
//! Deliberately out of scope:
//!
//! * `pub mod name;` declarations — module docs conventionally live as
//!   `//!` inner docs in the module's own file, which a single-file
//!   token scan cannot see; rustc's `missing_docs` already covers the
//!   reachable ones.
//! * `pub use` re-exports and `pub macro` items — rustdoc inlines the
//!   target's docs.
//! * restricted visibility (`pub(crate)`, `pub(super)`, `pub(in …)`) —
//!   not public API.
//! * tuple-struct fields — their meaning is positional; the struct's
//!   own doc comment is the right home.

use crate::context::{FileClass, FileCtx};
use crate::lexer::TokenKind;
use crate::rules::RawDiag;

/// Item keywords that take a doc comment. `const` doubles as a
/// qualifier (`pub const fn`) and is disambiguated at the use site;
/// `mod` is deliberately absent (see the module docs).
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "union", "const", "static",
];

/// Qualifiers that may sit between `pub` and the item keyword.
const QUALIFIERS: &[&str] = &["unsafe", "async", "extern"];

/// Scans one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<RawDiag>) {
    // A file that failed to tokenize has an unreliable item structure;
    // `parse-error` already reports it.
    if ctx.class != FileClass::Library || !ctx.lex_errors.is_empty() {
        return;
    }
    let code = ctx.code_indices();
    for (pos, &idx) in code.iter().enumerate() {
        let token = &ctx.tokens[idx];
        if token.kind != TokenKind::Ident || token.text != "pub" || ctx.in_test(token.line) {
            continue;
        }
        // `pub(crate)` / `pub(super)` / `pub(in …)` are not public API.
        if next_text(ctx, &code, pos + 1) == Some("(") {
            continue;
        }
        let Some((what, name)) = item_after_pub(ctx, &code, pos) else {
            continue;
        };
        if documented(ctx, idx) {
            continue;
        }
        out.push(RawDiag::at(
            "doc-coverage",
            token,
            format!("public {what} `{name}` has no doc comment"),
            Some(
                "add a `///` comment saying what the item is for — the workspace's \
                 `#![warn(missing_docs)]` only covers items reachable from the crate root"
                    .to_owned(),
            ),
        ));
    }
}

fn next_text<'c>(ctx: &'c FileCtx, code: &[usize], pos: usize) -> Option<&'c str> {
    code.get(pos).map(|&n| ctx.tokens[n].text.as_str())
}

/// Classifies what follows a `pub` token: `Some((kind, name))` for an
/// item or named struct field this rule covers, `None` for exempt or
/// unrecognized shapes.
fn item_after_pub(ctx: &FileCtx, code: &[usize], pub_pos: usize) -> Option<(&'static str, String)> {
    let mut k = pub_pos + 1;
    // Bound the qualifier scan; real items need at most
    // `pub unsafe extern "C" fn`.
    while k <= pub_pos + 5 {
        let &tok_idx = code.get(k)?;
        let token = &ctx.tokens[tok_idx];
        let text = token.text.as_str();
        if text == "use" || text == "macro" || text == "mod" {
            return None;
        }
        if QUALIFIERS.contains(&text) || token.kind == TokenKind::Str {
            k += 1; // `extern` and its ABI string
            continue;
        }
        if text == "const" && next_text(ctx, code, k + 1) == Some("fn") {
            k += 1; // `pub const fn` — `const` is a qualifier here
            continue;
        }
        if let Some(&kw) = ITEM_KEYWORDS.iter().find(|&&kw| kw == text) {
            // `pub fn $name` inside a `macro_rules!` template: docs are
            // supplied by the expansion site (`$(#[$meta])*`, `#[doc =
            // …]`), which this single-pass scan cannot resolve.
            if next_text(ctx, code, k + 1) == Some("$") {
                return None;
            }
            let name = code
                .get(k + 1)
                .map(|&n| &ctx.tokens[n])
                .filter(|t| t.kind == TokenKind::Ident)
                .map_or_else(|| "_".to_owned(), |t| t.text.clone());
            return Some((kw, name));
        }
        // A named struct field: `pub name: Type`.
        if token.kind == TokenKind::Ident && next_text(ctx, code, k + 1) == Some(":") {
            return Some(("field", token.text.clone()));
        }
        return None;
    }
    None
}

/// Walks the raw token stream backwards from the `pub` token, skipping
/// attributes (`#[…]`, `#![…]`) and plain comments, to find an
/// adjacent outer doc comment.
fn documented(ctx: &FileCtx, pub_raw_idx: usize) -> bool {
    let mut attr_depth = 0usize;
    // First identifier of the attribute currently being crossed
    // (backwards, so the last one seen before its `[` closes).
    let mut attr_head: Option<&str> = None;
    let mut i = pub_raw_idx;
    while i > 0 {
        i -= 1;
        let token = &ctx.tokens[i];
        match token.kind {
            TokenKind::LineComment => {
                if attr_depth > 0 {
                    continue;
                }
                if token.text.starts_with("///") {
                    return true;
                }
                if token.text.starts_with("//!") {
                    return false; // inner docs belong to the enclosing scope
                }
                // A plain comment between docs and item is fine.
            }
            TokenKind::BlockComment => {
                if attr_depth > 0 {
                    continue;
                }
                if token.text.starts_with("/**") && token.text.len() > 4 {
                    return true;
                }
                if token.text.starts_with("/*!") {
                    return false;
                }
            }
            _ => {
                if attr_depth > 0 {
                    match token.text.as_str() {
                        "]" => attr_depth += 1,
                        "[" => {
                            attr_depth -= 1;
                            // `#[doc = …]` (rustdoc's own desugaring of
                            // `///`) documents the item directly.
                            if attr_depth == 0 && attr_head == Some("doc") {
                                return true;
                            }
                        }
                        _ if token.kind == TokenKind::Ident => attr_head = Some(&token.text),
                        _ => {}
                    }
                    continue;
                }
                match token.text.as_str() {
                    "]" => {
                        attr_depth = 1;
                        attr_head = None;
                    }
                    // The `#` (and `!` of an inner attribute) just
                    // crossed, between the item and an earlier comment.
                    "#" | "!" => {}
                    _ => return false, // adjacent code — no docs
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<RawDiag> {
        let ctx = FileCtx::new(rel.to_owned(), src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn undocumented_pub_items_fire() {
        let found = run(
            "crates/device/src/a.rs",
            "pub fn f() {}\npub struct S;\npub const C: u32 = 1;\npub enum E { A }\n",
        );
        assert_eq!(found.len(), 4, "{found:?}");
        assert!(found[0].message.contains("fn `f`"), "{}", found[0].message);
    }

    #[test]
    fn documented_items_are_quiet() {
        let found = run(
            "crates/device/src/a.rs",
            "/// Docs.\npub fn f() {}\n/** Block docs. */\npub struct S;\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn docs_reach_through_attributes_and_plain_comments() {
        let found = run(
            "crates/device/src/a.rs",
            "/// Docs.\n#[derive(Debug, Clone)]\n// plain note\npub struct S;\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn inner_docs_do_not_document_the_next_item() {
        let found = run(
            "crates/device/src/a.rs",
            "//! Module docs.\npub fn f() {}\n",
        );
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn named_fields_need_docs_but_tuple_fields_do_not() {
        let found = run(
            "crates/device/src/a.rs",
            "/// S.\npub struct S {\n    /// Low.\n    pub low: f64,\n    pub high: f64,\n}\n/// T.\npub struct T(pub f64);\n",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].message.contains("field `high`"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn exempt_shapes_are_skipped() {
        let found = run(
            "crates/device/src/a.rs",
            "pub use other::Thing;\npub mod sub;\npub(crate) fn internal() {}\npub(super) fn up() {}\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn qualified_fns_are_recognized() {
        let found = run(
            "crates/device/src/a.rs",
            "pub const fn c() {}\npub unsafe fn u() {}\npub extern \"C\" fn x() {}\n/// Docs.\npub async fn ok() {}\n",
        );
        assert_eq!(found.len(), 3, "{found:?}");
    }

    #[test]
    fn macro_templates_and_doc_attributes_are_quiet() {
        let found = run(
            "crates/units/src/a.rs",
            "macro_rules! q {\n    ($name:ident) => {\n        pub struct $name(f64);\n        impl $name {\n            pub fn $name(self) -> f64 { self.0 }\n        }\n    };\n}\n",
        );
        assert!(found.is_empty(), "{found:?}");
        let found = run(
            "crates/units/src/a.rs",
            "#[doc = concat!(\"generated \", \"docs\")]\npub fn f() {}\n#[derive(Debug)]\npub struct S;\n",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].message.contains("struct `S`"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn tests_bins_and_broken_files_are_skipped() {
        assert!(run("crates/device/tests/a.rs", "pub fn f() {}\n").is_empty());
        assert!(run("crates/device/src/bin/a.rs", "pub fn f() {}\n").is_empty());
        assert!(run("crates/device/src/a.rs", "pub fn f() {}\n/* never closed\n").is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\n";
        assert!(run("crates/device/src/a.rs", in_test).is_empty());
    }
}
