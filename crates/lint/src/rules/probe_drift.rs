//! `probe-drift`: the probe/telemetry namespace matches its registry,
//! and every metric is asserted by something.
//!
//! `PROBES.md` at the workspace root is the naming registry: one table
//! row per metric (`| `name` | kind | asserted by |`). Dashboards, the
//! CI smoke steps, and the soak experiments all key on these names, so
//! three kinds of drift are errors:
//!
//! * a metric registered in code but absent from the registry (an
//!   undocumented name consumers can't discover),
//! * a registry row naming a metric no code registers (stale docs), and
//! * a kind cell disagreeing with what the code registers.
//!
//! A fourth check enforces *assertion coverage*: a metric that no test,
//! reproducer, or CI smoke ever mentions is telemetry nobody would
//! notice breaking. The symbol graph collects metric-name string
//! literals from assertion sites (test-class files, `crates/bench`,
//! `tests/`, `examples/`) and this rule additionally scans
//! `.github/workflows/*.yml`; a metric mentioned nowhere must carry an
//! `unchecked: <reason>` cell in its registry row — the probe-space
//! analogue of a reasoned suppression.

use crate::graph::Graph;
use crate::rules::{probe_naming, FileDiag, RawDiag};
use std::collections::BTreeSet;
use std::path::Path;

/// Root-relative path of the probe naming registry.
pub const REGISTRY_PATH: &str = "PROBES.md";

/// One parsed registry row.
#[derive(Debug, Clone)]
struct Row {
    name: String,
    kind: String,
    asserted: String,
    line: u32,
}

/// Diffs the graph's probe definitions against `PROBES.md` and the
/// assertion-site mentions.
pub fn check(graph: &Graph, root: &Path, out: &mut Vec<FileDiag>) {
    // First definition per name, in walk order (collisions are the
    // probe-naming rule's problem; drift works off one kind per name).
    let mut seen = BTreeSet::new();
    let defs: Vec<&(String, crate::graph::ProbeDef)> = graph
        .probes
        .iter()
        .filter(|(_, d)| seen.insert(d.name.clone()))
        .collect();

    let registry_text = std::fs::read_to_string(root.join(REGISTRY_PATH)).ok();
    if defs.is_empty() && registry_text.is_none() {
        // A tree with no probe surface (most fixture trees) needs no
        // registry.
        return;
    }
    let Some(text) = registry_text else {
        out.push(FileDiag {
            file: REGISTRY_PATH.to_owned(),
            diag: RawDiag {
                rule: "probe-drift",
                line: 1,
                col: 1,
                len: 1,
                message: format!(
                    "the workspace registers {} probe metric(s) but {REGISTRY_PATH} is missing",
                    defs.len()
                ),
                help: Some(
                    "add PROBES.md with a `| \\`name\\` | kind | asserted by |` table row per \
                     metric"
                        .to_owned(),
                ),
            },
        });
        return;
    };
    let rows = parse_rows(&text);
    let ci_mentions = ci_workflow_mentions(root);

    for (file, def) in &defs {
        let Some(row) = rows.iter().find(|r| r.name == def.name) else {
            out.push(FileDiag {
                file: file.clone(),
                diag: RawDiag::at_site(
                    "probe-drift",
                    &def.site,
                    format!(
                        "probe metric `{}` is registered here but not listed in {REGISTRY_PATH}",
                        def.name
                    ),
                    Some(format!(
                        "add a `| \\`{}\\` | {} | … |` row to {REGISTRY_PATH}",
                        def.name,
                        def.kind.word()
                    )),
                ),
            });
            continue;
        };
        if row.kind != def.kind.word() {
            out.push(FileDiag {
                file: REGISTRY_PATH.to_owned(),
                diag: RawDiag {
                    rule: "probe-drift",
                    line: row.line,
                    col: 1,
                    len: row.name.chars().count().max(1) as u32,
                    message: format!(
                        "{REGISTRY_PATH} lists `{}` as a {} but code registers it as a {} at \
                         {file}:{}",
                        def.name,
                        row.kind,
                        def.kind.word(),
                        def.site.line
                    ),
                    help: Some("update the kind cell to match the registration".to_owned()),
                },
            });
        }
        let unchecked = row.asserted.trim_start().starts_with("unchecked");
        if !unchecked && !graph.is_metric_mentioned(&def.name) && !ci_mentions.contains(&def.name) {
            out.push(FileDiag {
                file: file.clone(),
                diag: RawDiag::at_site(
                    "probe-drift",
                    &def.site,
                    format!(
                        "probe metric `{}` is never asserted by any test, reproducer, or CI \
                         smoke step",
                        def.name
                    ),
                    Some(format!(
                        "assert the metric somewhere (a test, `crates/bench`, or a CI smoke), \
                         or mark its {REGISTRY_PATH} row `unchecked: <reason>`"
                    )),
                ),
            });
        }
    }
    for row in &rows {
        if !defs.iter().any(|(_, d)| d.name == row.name) {
            out.push(FileDiag {
                file: REGISTRY_PATH.to_owned(),
                diag: RawDiag {
                    rule: "probe-drift",
                    line: row.line,
                    col: 1,
                    len: row.name.chars().count().max(1) as u32,
                    message: format!(
                        "{REGISTRY_PATH} lists `{}` but no code registers a probe metric with \
                         that name",
                        row.name
                    ),
                    help: Some(
                        "remove the stale row or restore the registration in code".to_owned(),
                    ),
                },
            });
        }
    }
}

/// Parses `| `name` | kind | asserted by |` rows anywhere in the file.
/// Rows without a backticked first cell (headers, separators) are
/// skipped; duplicate names keep their first row.
fn parse_rows(text: &str) -> Vec<Row> {
    let mut rows: Vec<Row> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed
            .trim_start_matches('|')
            .trim_end_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        let Some(first) = cells.first() else {
            continue;
        };
        // The name sits in backticks in the first cell.
        let mut parts = first.split('`');
        let _ = parts.next();
        let Some(name) = parts.next() else {
            continue;
        };
        let name = name.trim();
        if name.is_empty() || !probe_naming::well_formed(name) {
            continue;
        }
        if rows.iter().any(|r| r.name == name) {
            continue;
        }
        rows.push(Row {
            name: name.to_owned(),
            kind: cells.get(1).copied().unwrap_or("").to_owned(),
            asserted: cells.get(2).copied().unwrap_or("").to_owned(),
            line: (i + 1) as u32,
        });
    }
    rows
}

/// Dotted metric-name-shaped tokens appearing anywhere in the CI
/// workflow files — the smoke steps assert counters by name in inline
/// python, which the `.rs` walk cannot see.
fn ci_workflow_mentions(root: &Path) -> BTreeSet<String> {
    let mut mentions = BTreeSet::new();
    let dir = root.join(".github/workflows");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return mentions;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let is_yaml = path.extension().is_some_and(|e| e == "yml" || e == "yaml");
        if !is_yaml {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        for token in text.split(|c: char| {
            !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
        }) {
            if token.contains('.') && probe_naming::well_formed(token) {
                mentions.insert(token.to_owned());
            }
        }
    }
    mentions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;
    use crate::engine::FileAnalysis;

    fn graph_for(files: &[(&str, &str)]) -> Graph {
        let analyses: Vec<FileAnalysis> = files
            .iter()
            .map(|(rel, src)| {
                let ctx = FileCtx::new((*rel).to_owned(), src);
                let mut out = Vec::new();
                let facts = crate::graph::extract(&ctx, &mut out);
                FileAnalysis::fresh((*rel).to_owned(), 0, Vec::new(), Vec::new(), facts)
            })
            .collect();
        Graph::build(&analyses)
    }

    fn run_in_tmp(graph: &Graph, registry: Option<&str>, tag: &str) -> Vec<FileDiag> {
        let dir =
            std::env::temp_dir().join(format!("sram-lint-drift-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        if let Some(text) = registry {
            std::fs::write(dir.join(REGISTRY_PATH), text).unwrap();
        }
        let mut out = Vec::new();
        check(graph, &dir, &mut out);
        std::fs::remove_dir_all(&dir).ok();
        out
    }

    const SPICE_SRC: &str = "fn f() { sram_probe::probe_inc!(\"spice.solves\"); }\n";

    #[test]
    fn listed_and_asserted_metric_is_quiet() {
        let graph = graph_for(&[
            ("crates/spice/src/a.rs", SPICE_SRC),
            (
                "crates/spice/tests/t.rs",
                "fn t() { assert_counter(\"spice.solves\"); }\n",
            ),
        ]);
        let out = run_in_tmp(
            &graph,
            Some("| `spice.solves` | counter | spice tests |\n"),
            "clean",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unlisted_metric_fires_at_the_registration() {
        let graph = graph_for(&[("crates/spice/src/a.rs", SPICE_SRC)]);
        let out = run_in_tmp(
            &graph,
            Some("| `spice.other` | counter | unchecked: x |\n"),
            "unlisted",
        );
        let missing = out
            .iter()
            .find(|d| d.diag.message.contains("not listed"))
            .expect("unlisted metric reported");
        assert_eq!(missing.file, "crates/spice/src/a.rs");
        let stale = out
            .iter()
            .find(|d| d.diag.message.contains("`spice.other`"))
            .expect("stale row reported");
        assert_eq!(stale.file, REGISTRY_PATH);
    }

    #[test]
    fn kind_mismatch_fires_at_the_row() {
        let graph = graph_for(&[("crates/spice/src/a.rs", SPICE_SRC)]);
        let out = run_in_tmp(
            &graph,
            Some("| `spice.solves` | gauge | unchecked: fixture |\n"),
            "kind",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, REGISTRY_PATH);
        assert!(out[0].diag.message.contains("as a gauge"));
    }

    #[test]
    fn unasserted_metric_fires_unless_marked_unchecked() {
        let graph = graph_for(&[("crates/spice/src/a.rs", SPICE_SRC)]);
        let noisy = run_in_tmp(
            &graph,
            Some("| `spice.solves` | counter | spice tests |\n"),
            "unasserted",
        );
        assert_eq!(noisy.len(), 1, "{noisy:?}");
        assert!(noisy[0].diag.message.contains("never asserted"));
        let quiet = run_in_tmp(
            &graph,
            Some("| `spice.solves` | counter | unchecked: internal bookkeeping |\n"),
            "unchecked",
        );
        assert!(quiet.is_empty(), "{quiet:?}");
    }

    #[test]
    fn missing_registry_with_probes_is_one_finding() {
        let graph = graph_for(&[("crates/spice/src/a.rs", SPICE_SRC)]);
        let out = run_in_tmp(&graph, None, "missing");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, REGISTRY_PATH);
        assert!(out[0].diag.message.contains("missing"));
    }

    #[test]
    fn a_tree_without_probes_needs_no_registry() {
        let graph = graph_for(&[("crates/x/src/a.rs", "fn f() {}\n")]);
        let out = run_in_tmp(&graph, None, "empty");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn table_parser_skips_headers_and_separators() {
        let rows = parse_rows(
            "# Probes\n\n| metric | kind | asserted by |\n|---|---|---|\n| `spice.solves` | counter | tests |\n| `spice.solves` | gauge | dupe kept first |\n",
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "spice.solves");
        assert_eq!(rows[0].kind, "counter");
        assert_eq!(rows[0].line, 5);
    }
}
