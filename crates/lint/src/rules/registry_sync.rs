//! `registry-sync`: the experiment registry and EXPERIMENTS.md agree.
//!
//! `reproduce`'s CLI is generated from the registry in
//! `crates/bench/src/cli.rs`; EXPERIMENTS.md is the measured-results
//! ledger. A registry entry missing from the ledger is an experiment
//! nobody recorded; a ledger row naming no registry entry is stale
//! documentation. This cross-file rule extracts `name: "…"` fields from
//! the registry constant and backticked names from the ledger's
//! `## Registry` section and requires the two sets to be equal.

use crate::context::FileCtx;
use crate::lexer::{str_value, TokenKind};
use crate::rules::RawDiag;
use std::path::Path;

/// Registry-relative path of the experiment registry source.
pub const CLI_PATH: &str = "crates/bench/src/cli.rs";
/// Root-relative path of the results ledger.
pub const LEDGER_PATH: &str = "EXPERIMENTS.md";

/// Cross-file state: experiment names found in the registry source.
#[derive(Debug, Default)]
pub struct RegistryState {
    /// `(name, line)` pairs from `cli.rs`.
    pub experiments: Vec<(String, u32)>,
    /// Whether the registry file was seen during the walk.
    pub saw_cli: bool,
}

/// Per-file pass: harvests `name: "…"` fields from the registry source.
pub fn check(ctx: &FileCtx, state: &mut RegistryState) {
    if ctx.rel != CLI_PATH {
        return;
    }
    state.saw_cli = true;
    let code = ctx.code_indices();
    for window in 0..code.len().saturating_sub(2) {
        let a = &ctx.tokens[code[window]];
        let b = &ctx.tokens[code[window + 1]];
        let c = &ctx.tokens[code[window + 2]];
        if a.kind == TokenKind::Ident
            && a.text == "name"
            && b.text == ":"
            && c.kind == TokenKind::Str
            && !ctx.in_test(a.line)
        {
            if let Some(name) = str_value(&c.text) {
                state.experiments.push((name.to_owned(), c.line));
            }
        }
    }
}

/// End-of-walk pass: reads the ledger and reports both directions of
/// drift. `ledger` is `None` when EXPERIMENTS.md could not be read.
pub fn finish(state: &RegistryState, root: &Path, out: &mut Vec<RawDiag>) {
    if !state.saw_cli {
        // Not this workspace (e.g. a fixture tree without a registry).
        return;
    }
    let ledger_path = root.join(LEDGER_PATH);
    let Ok(ledger) = std::fs::read_to_string(&ledger_path) else {
        out.push(RawDiag {
            rule: "registry-sync",
            line: 1,
            col: 1,
            len: 1,
            message: format!(
                "{CLI_PATH} defines an experiment registry but {LEDGER_PATH} is missing"
            ),
            help: Some("add EXPERIMENTS.md with a `## Registry` section".to_owned()),
        });
        return;
    };
    let ledger_names = registry_section_names(&ledger);
    let Some(ledger_names) = ledger_names else {
        out.push(RawDiag {
            rule: "registry-sync",
            line: 1,
            col: 1,
            len: 1,
            message: format!("{LEDGER_PATH} has no `## Registry` section"),
            help: Some(
                "add a `## Registry` table listing every experiment name from \
                 crates/bench/src/cli.rs in backticks"
                    .to_owned(),
            ),
        });
        return;
    };
    for (name, line) in &state.experiments {
        if !ledger_names.iter().any(|(n, _)| n == name) {
            out.push(RawDiag {
                rule: "registry-sync",
                line: *line,
                col: 1,
                len: name.chars().count().max(1) as u32,
                message: format!(
                    "experiment `{name}` is registered in cli.rs but absent from \
                     {LEDGER_PATH}'s Registry section"
                ),
                help: Some(format!(
                    "add a `| \\`{name}\\` | … |` row to the Registry table"
                )),
            });
        }
    }
    for (name, _md_line) in &ledger_names {
        if !state.experiments.iter().any(|(n, _)| n == name) {
            out.push(RawDiag {
                rule: "registry-sync",
                line: 1,
                col: 1,
                len: 1,
                message: format!(
                    "{LEDGER_PATH} Registry lists `{name}` but cli.rs registers no such \
                     experiment"
                ),
                help: Some(
                    "remove the stale row or register the experiment in crates/bench/src/cli.rs"
                        .to_owned(),
                ),
            });
        }
    }
}

/// Backticked names in the first cell of each `## Registry` table row,
/// with their 1-based line numbers. `None` when the section is absent.
fn registry_section_names(ledger: &str) -> Option<Vec<(String, u32)>> {
    let mut in_section = false;
    let mut names = Vec::new();
    let mut found = false;
    for (i, line) in ledger.lines().enumerate() {
        if line.trim_start().starts_with("## ") {
            in_section = line.trim_start().starts_with("## Registry");
            if in_section {
                found = true;
            }
            continue;
        }
        if !in_section {
            continue;
        }
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            continue;
        }
        // First backticked token on the row.
        let mut parts = trimmed.split('`');
        let _ = parts.next();
        if let Some(name) = parts.next() {
            let name = name.trim();
            if !name.is_empty() && !name.contains('|') {
                names.push((name.to_owned(), (i + 1) as u32));
            }
        }
    }
    found.then_some(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_harvested() {
        let src = "pub const EXPERIMENTS: &[Experiment] = &[\n  Experiment { name: \"fig2\", summary: \"s\", in_all: true, run: fig2 },\n  Experiment { name: \"table4\", summary: \"s\", in_all: true, run: table4 },\n];\n";
        let ctx = FileCtx::new(CLI_PATH.to_owned(), src);
        let mut state = RegistryState::default();
        check(&ctx, &mut state);
        let names: Vec<&str> = state.experiments.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["fig2", "table4"]);
    }

    #[test]
    fn section_parser_reads_backticked_cells() {
        let md = "# Title\n\n## Registry\n\n| experiment | section |\n|---|---|\n| `fig2` | E1 |\n| `yield` | E8 |\n\n## Next\n| `not-me` | x |\n";
        let names = registry_section_names(md).expect("section present");
        let flat: Vec<&str> = names.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(flat, vec!["fig2", "yield"]);
        assert!(registry_section_names("# no registry\n").is_none());
    }

    #[test]
    fn other_files_are_ignored() {
        let ctx = FileCtx::new("crates/x/src/a.rs".to_owned(), "let name: &str = \"x\";");
        let mut state = RegistryState::default();
        check(&ctx, &mut state);
        assert!(!state.saw_cli);
        assert!(state.experiments.is_empty());
    }
}
