//! `registry-sync`: the experiment registry and EXPERIMENTS.md agree.
//!
//! `reproduce`'s CLI is generated from the registry in
//! `crates/bench/src/cli.rs`; EXPERIMENTS.md is the measured-results
//! ledger. A registry entry missing from the ledger is an experiment
//! nobody recorded; a ledger row naming no registry entry is stale
//! documentation. The symbol graph harvests `name: "…"` fields from the
//! registry constant during the walk; this cross-file rule diffs them
//! against the backticked names in the ledger's `## Registry` section
//! and requires the two sets to be equal. Registry-side findings anchor
//! at the registration line in `cli.rs` (and are suppressible there);
//! ledger-side findings anchor at the stale row.

use crate::graph::Graph;
use crate::rules::{FileDiag, RawDiag};
use std::path::Path;

/// Root-relative path of the experiment registry source.
pub const CLI_PATH: &str = "crates/bench/src/cli.rs";
/// Root-relative path of the results ledger.
pub const LEDGER_PATH: &str = "EXPERIMENTS.md";

/// End-of-walk pass: reads the ledger and reports both directions of
/// drift against the graph's experiment definitions.
pub fn finish(graph: &Graph, root: &Path, out: &mut Vec<FileDiag>) {
    if !graph.saw_cli {
        // Not this workspace (e.g. a fixture tree without a registry).
        return;
    }
    let anchored =
        |file: &str, line: u32, len: u32, message: String, help: Option<String>| FileDiag {
            file: file.to_owned(),
            diag: RawDiag {
                rule: "registry-sync",
                line,
                col: 1,
                len,
                message,
                help,
            },
        };
    let ledger_path = root.join(LEDGER_PATH);
    let Ok(ledger) = std::fs::read_to_string(&ledger_path) else {
        out.push(anchored(
            CLI_PATH,
            1,
            1,
            format!("{CLI_PATH} defines an experiment registry but {LEDGER_PATH} is missing"),
            Some("add EXPERIMENTS.md with a `## Registry` section".to_owned()),
        ));
        return;
    };
    let Some(ledger_names) = registry_section_names(&ledger) else {
        out.push(anchored(
            LEDGER_PATH,
            1,
            1,
            format!("{LEDGER_PATH} has no `## Registry` section"),
            Some(
                "add a `## Registry` table listing every experiment name from \
                 crates/bench/src/cli.rs in backticks"
                    .to_owned(),
            ),
        ));
        return;
    };
    for (file, def) in &graph.experiments {
        if !ledger_names.iter().any(|(n, _)| n == &def.name) {
            let name = &def.name;
            out.push(FileDiag {
                file: file.clone(),
                diag: RawDiag::at_site(
                    "registry-sync",
                    &def.site,
                    format!(
                        "experiment `{name}` is registered in cli.rs but absent from \
                         {LEDGER_PATH}'s Registry section"
                    ),
                    Some(format!(
                        "add a `| \\`{name}\\` | … |` row to the Registry table"
                    )),
                ),
            });
        }
    }
    for (name, md_line) in &ledger_names {
        if !graph.experiments.iter().any(|(_, d)| &d.name == name) {
            out.push(anchored(
                LEDGER_PATH,
                *md_line,
                name.chars().count().max(1) as u32,
                format!(
                    "{LEDGER_PATH} Registry lists `{name}` but cli.rs registers no such \
                     experiment"
                ),
                Some(
                    "remove the stale row or register the experiment in crates/bench/src/cli.rs"
                        .to_owned(),
                ),
            ));
        }
    }
}

/// Backticked names in the first cell of each `## Registry` table row,
/// with their 1-based line numbers. `None` when the section is absent.
fn registry_section_names(ledger: &str) -> Option<Vec<(String, u32)>> {
    let mut in_section = false;
    let mut names = Vec::new();
    let mut found = false;
    for (i, line) in ledger.lines().enumerate() {
        if line.trim_start().starts_with("## ") {
            in_section = line.trim_start().starts_with("## Registry");
            if in_section {
                found = true;
            }
            continue;
        }
        if !in_section {
            continue;
        }
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            continue;
        }
        // First backticked token on the row.
        let mut parts = trimmed.split('`');
        let _ = parts.next();
        if let Some(name) = parts.next() {
            let name = name.trim();
            if !name.is_empty() && !name.contains('|') {
                names.push((name.to_owned(), (i + 1) as u32));
            }
        }
    }
    found.then_some(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;
    use crate::engine::FileAnalysis;

    fn graph_for(src: &str) -> Graph {
        let ctx = FileCtx::new(CLI_PATH.to_owned(), src);
        let mut out = Vec::new();
        let facts = crate::graph::extract(&ctx, &mut out);
        let analysis = FileAnalysis::fresh(CLI_PATH.to_owned(), 0, Vec::new(), Vec::new(), facts);
        Graph::build(std::slice::from_ref(&analysis))
    }

    #[test]
    fn registry_names_are_harvested_via_the_graph() {
        let src = "pub const EXPERIMENTS: &[Experiment] = &[\n  Experiment { name: \"fig2\", summary: \"s\", in_all: true, run: fig2 },\n  Experiment { name: \"table4\", summary: \"s\", in_all: true, run: table4 },\n];\n";
        let graph = graph_for(src);
        let names: Vec<&str> = graph
            .experiments
            .iter()
            .map(|(_, d)| d.name.as_str())
            .collect();
        assert_eq!(names, vec!["fig2", "table4"]);
        assert!(graph.saw_cli);
    }

    #[test]
    fn section_parser_reads_backticked_cells() {
        let md = "# Title\n\n## Registry\n\n| experiment | section |\n|---|---|\n| `fig2` | E1 |\n| `yield` | E8 |\n\n## Next\n| `not-me` | x |\n";
        let names = registry_section_names(md).expect("section present");
        let flat: Vec<&str> = names.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(flat, vec!["fig2", "yield"]);
        assert_eq!(names[0].1, 7, "row line recorded");
        assert!(registry_section_names("# no registry\n").is_none());
    }

    #[test]
    fn other_files_contribute_no_experiments() {
        let ctx = FileCtx::new("crates/x/src/a.rs".to_owned(), "let name: &str = \"x\";");
        let mut out = Vec::new();
        let facts = crate::graph::extract(&ctx, &mut out);
        assert!(facts.experiments.is_empty());
    }

    #[test]
    fn drift_is_reported_in_both_directions() {
        let graph = graph_for("const E: &[X] = &[X { name: \"fig2\" }, X { name: \"ghost\" }];\n");
        let dir = std::env::temp_dir().join(format!("sram-lint-regsync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(LEDGER_PATH),
            "## Registry\n| `fig2` | ok |\n| `ghost-ledger` | stale |\n",
        )
        .unwrap();
        let mut out = Vec::new();
        finish(&graph, &dir, &mut out);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(out.len(), 2, "{out:?}");
        let ghost = out
            .iter()
            .find(|d| d.diag.message.contains("`ghost`"))
            .expect("unrecorded experiment");
        assert_eq!(ghost.file, CLI_PATH);
        assert_eq!(ghost.diag.line, 1);
        let stale = out
            .iter()
            .find(|d| d.diag.message.contains("`ghost-ledger`"))
            .expect("stale row");
        assert_eq!(stale.file, LEDGER_PATH);
        assert_eq!(stale.diag.line, 3, "anchored at the stale row");
    }
}
