//! SARIF 2.1.0 output (`--format sarif`).
//!
//! The Static Analysis Results Interchange Format is the lingua franca
//! of code-scanning UIs (GitHub code scanning, VS Code SARIF viewers,
//! most CI dashboards). This renderer emits the minimal valid subset:
//! one run, driver metadata with the full rule registry, and one
//! `result` per diagnostic with a physical location. Hand-rolled like
//! the JSON renderer — this workspace links no serialization ecosystem.

use crate::diag::{Level, Report};

/// SARIF severity for a diagnostic level. `Allow`ed rules never reach
/// the report, so only the two reportable levels map.
fn sarif_level(level: Level) -> &'static str {
    match level {
        Level::Deny => "error",
        Level::Allow | Level::Warn => "warning",
    }
}

/// Renders the report as a SARIF 2.1.0 document.
#[must_use]
pub fn render_sarif(report: &Report) -> String {
    use crate::diag::json_str as js;
    use std::fmt::Write as _;

    let mut out = String::from("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n",
    );
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"sram-lint\",\n");
    let _ = writeln!(
        out,
        "          \"version\": {},",
        js(env!("CARGO_PKG_VERSION"))
    );
    out.push_str("          \"informationUri\": \"https://example.invalid/sram-edp\",\n");
    out.push_str("          \"rules\": [");
    for (i, &(name, _, desc)) in crate::config::RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            js(name),
            js(desc)
        );
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let message = d.help.as_ref().map_or_else(
            || d.message.clone(),
            |help| format!("{} (help: {help})", d.message),
        );
        let _ = write!(
            out,
            "\n        {{\"ruleId\": {}, \"level\": \"{}\", \
             \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}, \
             \"startColumn\": {}, \"endColumn\": {}}}}}}}]}}",
            js(d.rule),
            sarif_level(d.level),
            js(&message),
            js(&d.file),
            d.line.max(1),
            d.col.max(1),
            d.col.max(1) + d.len.max(1)
        );
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn sample_report() -> Report {
        Report {
            diagnostics: vec![
                Diagnostic {
                    rule: "no-panic",
                    level: Level::Deny,
                    file: "crates/x/src/a.rs".into(),
                    line: 42,
                    col: 15,
                    len: 6,
                    message: "`.unwrap()` in library code".into(),
                    help: Some("propagate the error".into()),
                    excerpt: None,
                },
                Diagnostic {
                    rule: "unit-hygiene",
                    level: Level::Warn,
                    file: "crates/cell/src/m.rs".into(),
                    line: 7,
                    col: 1,
                    len: 4,
                    message: "bare literal".into(),
                    help: None,
                    excerpt: None,
                },
            ],
            files_scanned: 2,
            files_skipped: 0,
            suppressed: 0,
        }
    }

    #[test]
    fn sarif_has_version_tool_and_results() {
        let sarif = render_sarif(&sample_report());
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"sram-lint\""));
        assert!(sarif.contains("\"ruleId\": \"no-panic\""));
        assert!(sarif.contains("\"level\": \"error\""));
        assert!(sarif.contains("\"level\": \"warning\""));
        assert!(sarif.contains("\"startLine\": 42"));
        assert!(sarif.contains("\"uri\": \"crates/x/src/a.rs\""));
    }

    #[test]
    fn every_registered_rule_appears_in_driver_metadata() {
        let sarif = render_sarif(&Report::default());
        for &(name, _, _) in crate::config::RULES {
            assert!(sarif.contains(&format!("\"id\": \"{name}\"")), "{name}");
        }
    }

    #[test]
    fn empty_report_is_still_valid_shape() {
        let sarif = render_sarif(&Report::default());
        assert!(sarif.contains("\"results\": []"));
    }
}
