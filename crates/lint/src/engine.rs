//! The lint driver: a parallel, incrementally-cached pipeline.
//!
//! The run is two-phase. Phase one analyzes every `.rs` file
//! independently — lexing, the per-file rules, suppression parsing, and
//! symbol-graph fact extraction — on a scoped worker pool, reusing
//! cached results for files whose content hash is unchanged. Phase two
//! is sequential: the per-file facts assemble into a workspace
//! [`Graph`], the cross-file rules run over it, and every finding
//! (per-file and cross-file alike) resolves against the same inline
//! suppressions so `unused-suppression` sees the whole picture.
//!
//! Phase one is embarrassingly parallel because [`FileAnalysis`] is a
//! pure function of `(path, bytes)`; phase two re-runs even on a fully
//! warm cache because cross-file conclusions depend on the *set* of
//! files, not any one of them.

use crate::config::Config;
use crate::context::{FileCtx, Suppression};
use crate::diag::{Diagnostic, Level, Report};
use crate::graph::{FileFacts, Graph};
use crate::rules::{
    config_sync, dead_parameter, doc_coverage, nan_unsafe, no_panic, probe_drift, probe_naming,
    registry_sync, thread_discipline, unit_hygiene, unused_suppression, RawDiag,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Directory names the walker never descends into. `vendor/` holds
/// third-party stand-ins outside our conventions; `fixtures/` holds the
/// linter's own intentionally-bad test inputs.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", "node_modules"];

/// Everything phase one produces for one file: raw findings, parsed
/// suppressions, symbol-graph facts, and the source excerpts any later
/// diagnostic could need. This is exactly the unit the incremental
/// cache stores, keyed by the file's content hash.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// Path relative to the linted root, `/`-separated.
    pub rel: String,
    /// FNV-1a-64 hash of the file's bytes (the cache key).
    pub hash: u64,
    /// `true` when this analysis was reused from the cache.
    pub from_cache: bool,
    /// `false` when the file could not be read (its `raw` then carries
    /// a `parse-error` and nothing else).
    pub scanned: bool,
    /// Per-file rule findings, before suppression and severity.
    pub raw: Vec<RawDiag>,
    /// Parsed inline suppressions.
    pub suppressions: Vec<Suppression>,
    /// Use/def facts feeding the workspace [`Graph`].
    pub facts: FileFacts,
    /// Source text of every line a diagnostic might anchor to (raw
    /// findings, suppression comments, fact sites), so cached files can
    /// render excerpts without re-reading the source.
    pub excerpts: BTreeMap<u32, String>,
}

impl FileAnalysis {
    /// A freshly-computed (non-cache) analysis with no excerpts yet.
    #[must_use]
    pub fn fresh(
        rel: String,
        hash: u64,
        raw: Vec<RawDiag>,
        suppressions: Vec<Suppression>,
        facts: FileFacts,
    ) -> Self {
        Self {
            rel,
            hash,
            from_cache: false,
            scanned: true,
            raw,
            suppressions,
            facts,
            excerpts: BTreeMap::new(),
        }
    }
}

/// Engine knobs beyond rule severities.
#[derive(Debug, Default)]
pub struct Options {
    /// Incremental cache file to read before and write after the run
    /// (`None` disables caching).
    pub cache: Option<PathBuf>,
    /// Worker thread count (`None` = available parallelism).
    pub threads: Option<usize>,
}

/// Lints every `.rs` file under `root` with `config` and default
/// [`Options`].
///
/// # Errors
///
/// Returns an error when `root` cannot be read at all; unreadable
/// individual files become diagnostics instead.
pub fn run(root: &Path, config: &Config) -> io::Result<Report> {
    run_with(root, config, &Options::default())
}

/// Lints every `.rs` file under `root` with explicit engine options.
///
/// # Errors
///
/// Returns an error when `root` cannot be read at all; unreadable
/// individual files become diagnostics instead.
pub fn run_with(root: &Path, config: &Config, options: &Options) -> io::Result<Report> {
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths)?;
    paths.sort();
    let files: Vec<(PathBuf, String)> = paths
        .into_iter()
        .map(|p| {
            let rel = relative(root, &p);
            (p, rel)
        })
        .collect();

    let cached: HashMap<String, FileAnalysis> = options
        .cache
        .as_deref()
        .map(crate::cache::load)
        .unwrap_or_default();

    let analyses = analyze_all(&files, &cached, options.threads);

    if let Some(path) = options.cache.as_deref() {
        // A failed cache write costs the next run speed, not this run
        // correctness.
        let _ = crate::cache::save(path, &analyses);
    }

    let mut report = Report {
        files_scanned: analyses.iter().filter(|a| a.scanned).count(),
        files_skipped: analyses.iter().filter(|a| a.from_cache).count(),
        ..Report::default()
    };

    // Phase two: assemble the graph and run the cross-file rules.
    let graph = Graph::build(&analyses);
    let mut cross = Vec::new();
    probe_naming::collisions(&graph.probes, &mut cross);
    registry_sync::finish(&graph, root, &mut cross);
    dead_parameter::check(&graph, &mut cross);
    config_sync::check(&graph, root, &mut cross);
    probe_drift::check(&graph, root, &mut cross);

    // Split cross-file findings between walked `.rs` files (which get
    // suppression resolution and excerpts) and doc/registry anchors.
    let walked: HashSet<&str> = analyses.iter().map(|a| a.rel.as_str()).collect();
    let mut cross_by_file: HashMap<&str, Vec<RawDiag>> = HashMap::new();
    let mut doc_anchored = Vec::new();
    for fd in cross {
        if let Some(rel) = walked.get(fd.file.as_str()) {
            cross_by_file.entry(rel).or_default().push(fd.diag);
        } else {
            doc_anchored.push(fd);
        }
    }

    for analysis in &analyses {
        let mut merged = analysis.raw.clone();
        if let Some(extra) = cross_by_file.remove(analysis.rel.as_str()) {
            merged.extend(extra);
        }
        // Resolve suppressions here (not in `push_diag`) so each one's
        // slot in `used` records whether it ever absorbed a finding —
        // per-file and cross-file alike; the stale ones feed
        // `unused-suppression` below. A suppression never silences the
        // report that the suppression itself is malformed.
        let mut used = vec![false; analysis.suppressions.len()];
        for diag in merged {
            if diag.rule != "suppression-syntax" {
                let matching = matching_suppressions(&analysis.suppressions, diag.rule, diag.line);
                if !matching.is_empty() {
                    for i in matching {
                        used[i] = true;
                    }
                    report.suppressed += 1;
                    continue;
                }
            }
            push_diag(&mut report, config, &analysis.rel, &analysis.excerpts, diag);
        }
        let mut stale = Vec::new();
        unused_suppression::check(&analysis.suppressions, &used, &mut stale);
        for diag in stale {
            // A stale-suppression finding can itself be allowed, but
            // that allowance is deliberately not tracked recursively.
            if !matching_suppressions(&analysis.suppressions, diag.rule, diag.line).is_empty() {
                report.suppressed += 1;
                continue;
            }
            push_diag(&mut report, config, &analysis.rel, &analysis.excerpts, diag);
        }
    }

    // Findings anchored in markdown files (EXPERIMENTS.md, PROBES.md,
    // README.md, DESIGN.md) have no inline suppressions or excerpts.
    static NO_EXCERPTS: BTreeMap<u32, String> = BTreeMap::new();
    for fd in doc_anchored {
        push_diag(&mut report, config, &fd.file, &NO_EXCERPTS, fd.diag);
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}

/// Phase one: analyzes every file on a scoped worker pool, reusing
/// cache entries whose content hash still matches. Results come back in
/// input order regardless of completion order.
fn analyze_all(
    files: &[(PathBuf, String)],
    cached: &HashMap<String, FileAnalysis>,
    threads: Option<usize>,
) -> Vec<FileAnalysis> {
    let workers = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
        .clamp(1, files.len().max(1));
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, FileAnalysis)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((path, rel)) = files.get(i) else {
                    break;
                };
                let _ = tx.send((i, analyze_file(path, rel, cached)));
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<FileAnalysis>> = files.iter().map(|_| None).collect();
    for (i, analysis) in rx {
        if let Some(slot) = slots.get_mut(i) {
            *slot = Some(analysis);
        }
    }
    slots.into_iter().flatten().collect()
}

/// Analyzes one file: read, hash, consult the cache, run the per-file
/// rules and fact extraction on a miss.
fn analyze_file(path: &Path, rel: &str, cached: &HashMap<String, FileAnalysis>) -> FileAnalysis {
    let Ok(bytes) = std::fs::read(path) else {
        return unreadable(rel);
    };
    let hash = crate::cache::fnv1a64(&bytes);
    if let Some(entry) = cached.get(rel) {
        if entry.hash == hash {
            let mut reused = entry.clone();
            reused.from_cache = true;
            return reused;
        }
    }
    let Ok(src) = String::from_utf8(bytes) else {
        return unreadable(rel);
    };
    let ctx = FileCtx::new(rel.to_owned(), &src);
    let mut raw = Vec::new();
    for err in &ctx.lex_errors {
        raw.push(RawDiag {
            rule: "parse-error",
            line: err.line,
            col: err.col,
            len: 1,
            message: err.message.clone(),
            help: None,
        });
    }
    for err in &ctx.suppression_errors {
        raw.push(RawDiag {
            rule: "suppression-syntax",
            line: err.line,
            col: err.col,
            len: 1,
            message: err.message.clone(),
            help: Some(
                "syntax: `// sram-lint: allow(rule-name) reason` (reason is mandatory)".to_owned(),
            ),
        });
    }
    unit_hygiene::check(&ctx, &mut raw);
    no_panic::check(&ctx, &mut raw);
    nan_unsafe::check(&ctx, &mut raw);
    thread_discipline::check(&ctx, &mut raw);
    doc_coverage::check(&ctx, &mut raw);
    let facts = crate::graph::extract(&ctx, &mut raw);
    let excerpts = collect_excerpts(&ctx, &raw, &facts);
    let mut analysis = FileAnalysis::fresh(ctx.rel, hash, raw, ctx.suppressions, facts);
    analysis.excerpts = excerpts;
    analysis
}

/// The analysis recorded for a file that could not be read (or is not
/// UTF-8). It is never cached — there is no content to hash.
fn unreadable(rel: &str) -> FileAnalysis {
    let mut analysis = FileAnalysis::fresh(
        rel.to_owned(),
        0,
        vec![RawDiag {
            rule: "parse-error",
            line: 1,
            col: 1,
            len: 1,
            message: "file could not be read as UTF-8".to_owned(),
            help: None,
        }],
        Vec::new(),
        FileFacts::default(),
    );
    analysis.scanned = false;
    analysis
}

/// Captures the source text of every line a diagnostic could later
/// anchor to: raw findings, suppression comments (for the stale-
/// suppression report), and symbol-graph fact sites (for cross-file
/// findings).
fn collect_excerpts(ctx: &FileCtx, raw: &[RawDiag], facts: &FileFacts) -> BTreeMap<u32, String> {
    let mut lines: Vec<u32> = raw.iter().map(|d| d.line).collect();
    lines.extend(ctx.suppressions.iter().map(|s| s.from_line));
    lines.extend(facts.params.iter().map(|p| p.site.line));
    lines.extend(facts.env_reads.iter().map(|e| e.site.line));
    lines.extend(facts.probes.iter().map(|p| p.site.line));
    lines.extend(facts.experiments.iter().map(|e| e.site.line));
    let mut out = BTreeMap::new();
    for line in lines {
        let text = ctx.line_text(line);
        if !text.is_empty() {
            out.insert(line, text);
        }
    }
    out
}

/// Indices of every suppression covering `rule` at `line` (the
/// slice-based twin of `FileCtx::matching_suppressions`, usable for
/// cache-restored files that have no `FileCtx`).
fn matching_suppressions(suppressions: &[Suppression], rule: &str, line: u32) -> Vec<usize> {
    suppressions
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            s.rule == rule && (s.whole_file || (s.from_line <= line && line <= s.to_line))
        })
        .map(|(i, _)| i)
        .collect()
}

/// Applies severity and records the diagnostic (suppressions were
/// already resolved by the caller, which tracks their usage).
fn push_diag(
    report: &mut Report,
    config: &Config,
    file: &str,
    excerpts: &BTreeMap<u32, String>,
    diag: RawDiag,
) {
    let level = config.level(diag.rule);
    if level == Level::Allow {
        return;
    }
    report.diagnostics.push(Diagnostic {
        rule: diag.rule,
        level,
        file: file.to_owned(),
        line: diag.line,
        col: diag.col,
        len: diag.len,
        message: diag.message,
        help: diag.help,
        excerpt: excerpts.get(&diag.line).cloned(),
    });
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`] and hidden
/// directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Root-relative `/`-separated path.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks up from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]` — the default lint root.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").exists());
    }

    #[test]
    fn relative_paths_are_slash_separated() {
        let root = Path::new("/a/b");
        assert_eq!(
            relative(root, Path::new("/a/b/crates/x/src/l.rs")),
            "crates/x/src/l.rs"
        );
    }

    #[test]
    fn single_and_multi_thread_runs_agree() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = here.join("fixtures/ws");
        let config = Config::new();
        let serial = run_with(
            &root,
            &config,
            &Options {
                cache: None,
                threads: Some(1),
            },
        )
        .expect("serial run");
        let parallel = run_with(
            &root,
            &config,
            &Options {
                cache: None,
                threads: Some(8),
            },
        )
        .expect("parallel run");
        assert_eq!(serial.render_text(), parallel.render_text());
    }
}
