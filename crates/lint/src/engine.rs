//! The lint driver: walks the tree, runs every rule, applies
//! suppressions and severity levels.

use crate::config::Config;
use crate::context::FileCtx;
use crate::diag::{Diagnostic, Level, Report};
use crate::rules::{
    doc_coverage, nan_unsafe, no_panic, probe_naming, registry_sync, thread_discipline,
    unit_hygiene, unused_suppression, RawDiag,
};
use std::io;
use std::path::{Path, PathBuf};

/// Directory names the walker never descends into. `vendor/` holds
/// third-party stand-ins outside our conventions; `fixtures/` holds the
/// linter's own intentionally-bad test inputs.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", "node_modules"];

/// Lints every `.rs` file under `root` with `config`.
///
/// # Errors
///
/// Returns an error when `root` cannot be read at all; unreadable
/// individual files become diagnostics instead.
pub fn run(root: &Path, config: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    let mut probe_state = probe_naming::ProbeState::default();
    let mut registry_state = registry_sync::RegistryState::default();

    for path in files {
        let rel = relative(root, &path);
        let Ok(src) = std::fs::read_to_string(&path) else {
            push(
                &mut report,
                config,
                &rel,
                None,
                RawDiag {
                    rule: "parse-error",
                    line: 1,
                    col: 1,
                    len: 1,
                    message: "file could not be read as UTF-8".to_owned(),
                    help: None,
                },
            );
            continue;
        };
        report.files_scanned += 1;
        let ctx = FileCtx::new(rel, &src);
        let mut raw = Vec::new();
        for err in &ctx.lex_errors {
            raw.push(RawDiag {
                rule: "parse-error",
                line: err.line,
                col: err.col,
                len: 1,
                message: err.message.clone(),
                help: None,
            });
        }
        for err in &ctx.suppression_errors {
            raw.push(RawDiag {
                rule: "suppression-syntax",
                line: err.line,
                col: err.col,
                len: 1,
                message: err.message.clone(),
                help: Some(
                    "syntax: `// sram-lint: allow(rule-name) reason` (reason is mandatory)"
                        .to_owned(),
                ),
            });
        }
        unit_hygiene::check(&ctx, &mut raw);
        no_panic::check(&ctx, &mut raw);
        nan_unsafe::check(&ctx, &mut raw);
        probe_naming::check(&ctx, &mut probe_state, &mut raw);
        thread_discipline::check(&ctx, &mut raw);
        doc_coverage::check(&ctx, &mut raw);
        registry_sync::check(&ctx, &mut registry_state);
        // Resolve suppressions here (not in `push`) so each one's slot in
        // `used` records whether it ever absorbed a finding; the stale
        // ones feed `unused-suppression` below. A suppression never
        // silences the report that the suppression itself is malformed.
        let mut used = vec![false; ctx.suppressions.len()];
        for diag in raw {
            if diag.rule != "suppression-syntax" {
                let matching = ctx.matching_suppressions(diag.rule, diag.line);
                if !matching.is_empty() {
                    for i in matching {
                        used[i] = true;
                    }
                    report.suppressed += 1;
                    continue;
                }
            }
            let rel = ctx.rel.clone();
            push(&mut report, config, &rel, Some(&ctx), diag);
        }
        let mut stale = Vec::new();
        unused_suppression::check(&ctx, &used, &mut stale);
        for diag in stale {
            // A stale-suppression finding can itself be allowed, but that
            // allowance is deliberately not tracked recursively.
            if ctx.is_suppressed(diag.rule, diag.line) {
                report.suppressed += 1;
                continue;
            }
            let rel = ctx.rel.clone();
            push(&mut report, config, &rel, Some(&ctx), diag);
        }
    }

    let mut raw = Vec::new();
    registry_sync::finish(&registry_state, root, &mut raw);
    for diag in raw {
        // Anchor cross-file findings to the file each message names.
        let file = if diag.message.contains(registry_sync::LEDGER_PATH)
            && !diag.message.contains("absent from")
        {
            registry_sync::LEDGER_PATH.to_owned()
        } else {
            registry_sync::CLI_PATH.to_owned()
        };
        push(&mut report, config, &file, None, diag);
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}

/// Applies severity and records the diagnostic (suppressions were
/// already resolved by the caller, which tracks their usage).
fn push(report: &mut Report, config: &Config, file: &str, ctx: Option<&FileCtx>, diag: RawDiag) {
    let level = config.level(diag.rule);
    if level == Level::Allow {
        return;
    }
    let excerpt = ctx
        .map(|c| c.line_text(diag.line))
        .filter(|l| !l.is_empty());
    report.diagnostics.push(Diagnostic {
        rule: diag.rule,
        level,
        file: file.to_owned(),
        line: diag.line,
        col: diag.col,
        len: diag.len,
        message: diag.message,
        help: diag.help,
        excerpt,
    });
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`] and hidden
/// directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Root-relative `/`-separated path.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks up from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]` — the default lint root.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").exists());
    }

    #[test]
    fn relative_paths_are_slash_separated() {
        let root = Path::new("/a/b");
        assert_eq!(
            relative(root, Path::new("/a/b/crates/x/src/l.rs")),
            "crates/x/src/l.rs"
        );
    }
}
