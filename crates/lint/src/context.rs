//! Per-file context: path classification, `#[cfg(test)]` region
//! detection, and inline suppression parsing.

use crate::config::Config;
use crate::lexer::{LexError, Token, TokenKind};

/// How a file participates in the build — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Shipped library code: the full rule set applies.
    Library,
    /// Binary entry points (`src/bin/`, `main.rs`, `build.rs`): panics
    /// are acceptable at the top level, so `no-panic` is relaxed.
    Bin,
    /// Tests, benches, examples: panicking assertions are the point.
    Test,
}

/// One parsed inline suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule being allowed.
    pub rule: String,
    /// First line the suppression covers.
    pub from_line: u32,
    /// Last line the suppression covers (inclusive).
    pub to_line: u32,
    /// `// sram-lint: allow-file(...)` covers the whole file.
    pub whole_file: bool,
}

/// A malformed suppression comment (reported under `suppression-syntax`).
#[derive(Debug, Clone)]
pub struct SuppressionError {
    /// Line of the offending comment.
    pub line: u32,
    /// Column of the offending comment.
    pub col: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Everything a rule needs to inspect one file.
#[derive(Debug)]
pub struct FileCtx {
    /// Path relative to the linted root, `/`-separated.
    pub rel: String,
    /// Owning crate (`spice` for `crates/spice/...`, `sram-edp` for the
    /// root `src/`).
    pub crate_name: String,
    /// Build-role classification.
    pub class: FileClass,
    /// Token stream (comments included).
    pub tokens: Vec<Token>,
    /// Source split into lines (for excerpts).
    pub lines: Vec<String>,
    /// `test_line[i]` is `true` when 1-based line `i + 1` sits inside a
    /// `#[cfg(test)]` module or a `#[test]` item.
    pub test_line: Vec<bool>,
    /// Parsed suppressions.
    pub suppressions: Vec<Suppression>,
    /// Malformed suppression comments.
    pub suppression_errors: Vec<SuppressionError>,
    /// Tokenization failures.
    pub lex_errors: Vec<LexError>,
}

impl FileCtx {
    /// Builds the context for one file.
    #[must_use]
    pub fn new(rel: String, src: &str) -> Self {
        let (tokens, lex_errors) = crate::lexer::lex(src);
        let lines: Vec<String> = src.lines().map(str::to_owned).collect();
        let (crate_name, class) = classify(&rel);
        let test_line = mark_test_regions(&tokens, lines.len());
        let (suppressions, suppression_errors) = parse_suppressions(&tokens);
        Self {
            rel,
            crate_name,
            class,
            tokens,
            lines,
            test_line,
            suppressions,
            suppression_errors,
            lex_errors,
        }
    }

    /// `true` when 1-based `line` is inside a test region (or the whole
    /// file is test-class).
    #[must_use]
    pub fn in_test(&self, line: u32) -> bool {
        self.class == FileClass::Test
            || self
                .test_line
                .get(line.saturating_sub(1) as usize)
                .copied()
                .unwrap_or(false)
    }

    /// `true` when `rule` is suppressed at `line`.
    #[must_use]
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        !self.matching_suppressions(rule, line).is_empty()
    }

    /// Indices into [`Self::suppressions`] of every suppression covering
    /// `rule` at `line` — the engine marks these as used so stale ones
    /// can be reported by `unused-suppression`.
    #[must_use]
    pub fn matching_suppressions(&self, rule: &str, line: u32) -> Vec<usize> {
        self.suppressions
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.rule == rule && (s.whole_file || (s.from_line <= line && line <= s.to_line))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// The source text of 1-based `line` (empty when out of range).
    #[must_use]
    pub fn line_text(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Indices of non-comment tokens, in order.
    #[must_use]
    pub fn code_indices(&self) -> Vec<usize> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Derives `(crate_name, class)` from a root-relative path.
fn classify(rel: &str) -> (String, FileClass) {
    let components: Vec<&str> = rel.split('/').collect();
    let crate_name = match components.as_slice() {
        ["crates", name, ..] => (*name).to_owned(),
        ["src", ..] => "sram-edp".to_owned(),
        [first, ..] => (*first).to_owned(),
        [] => String::new(),
    };
    let file = components.last().copied().unwrap_or("");
    let class = if components
        .iter()
        .any(|c| matches!(*c, "tests" | "benches" | "examples"))
    {
        FileClass::Test
    } else if components.contains(&"bin") || file == "main.rs" || file == "build.rs" {
        FileClass::Bin
    } else {
        FileClass::Library
    };
    (crate_name, class)
}

/// Marks the line span of every item carrying a `test`-bearing attribute
/// (`#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[test]`).
fn mark_test_regions(tokens: &[Token], n_lines: usize) -> Vec<bool> {
    let mut marked = vec![false; n_lines];
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].kind == TokenKind::Punct
            && code[i].text == "#"
            && matches!(code.get(i + 1), Some(t) if t.text == "["))
        {
            i += 1;
            continue;
        }
        // Collect the attribute body up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut has_test = false;
        while j < code.len() && depth > 0 {
            match code[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                "test" if code[j].kind == TokenKind::Ident => has_test = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test {
            i = j;
            continue;
        }
        // Find the item's body: the next `{` before any `;` at depth 0,
        // then its matching `}`. Mark every line in between.
        let start_line = code[i].line;
        let mut k = j;
        let mut open = None;
        while k < code.len() {
            match code[k].text.as_str() {
                "{" => {
                    open = Some(k);
                    break;
                }
                ";" => break,
                _ => {}
            }
            k += 1;
        }
        let end_line = if let Some(open_idx) = open {
            let mut brace = 0usize;
            let mut end = code[open_idx].line;
            let mut m = open_idx;
            while m < code.len() {
                match code[m].text.as_str() {
                    "{" => brace += 1,
                    "}" => {
                        brace -= 1;
                        if brace == 0 {
                            end = code[m].line;
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            i = m;
            end
        } else {
            i = k;
            code.get(k).map_or(start_line, |t| t.line)
        };
        for line in start_line..=end_line {
            if let Some(slot) = marked.get_mut(line.saturating_sub(1) as usize) {
                *slot = true;
            }
        }
        i += 1;
    }
    marked
}

/// Parses `// sram-lint: allow(rule[, rule]) reason` and
/// `// sram-lint: allow-file(rule[, rule]) reason` comments.
fn parse_suppressions(tokens: &[Token]) -> (Vec<Suppression>, Vec<SuppressionError>) {
    const MARKER: &str = "sram-lint:";
    let mut out = Vec::new();
    let mut errors = Vec::new();
    for (idx, token) in tokens.iter().enumerate() {
        if !matches!(token.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        // A directive is a plain comment whose body *starts* with the
        // marker. Doc comments and prose that merely mention the syntax
        // (like this sentence) are not directives.
        let body = token
            .text
            .strip_prefix("//")
            .or_else(|| token.text.strip_prefix("/*"))
            .unwrap_or(&token.text);
        if body.starts_with(['/', '!', '*']) {
            continue;
        }
        if !body.trim_start().starts_with(MARKER) {
            continue;
        }
        let pos = token.text.find(MARKER).unwrap_or(0);
        let rest = token.text[pos + MARKER.len()..]
            .trim_start()
            .trim_end_matches("*/")
            .trim_end();
        let mut bad = |message: String| {
            errors.push(SuppressionError {
                line: token.line,
                col: token.col,
                message,
            });
        };
        let (whole_file, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow") {
            (false, r)
        } else {
            bad(format!(
                "expected `allow(rule) reason` or `allow-file(rule) reason` after `{MARKER}`"
            ));
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            bad("missing `(` after `allow`".to_owned());
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("missing `)` in suppression".to_owned());
            continue;
        };
        let rules: Vec<&str> = rest[..close]
            .split(',')
            .map(str::trim)
            .filter(|r| !r.is_empty())
            .collect();
        let reason = rest[close + 1..].trim();
        if rules.is_empty() {
            bad("suppression names no rule".to_owned());
            continue;
        }
        if reason.is_empty() {
            bad(format!(
                "suppression of `{}` has no reason — say why the violation is acceptable",
                rules.join(", ")
            ));
            continue;
        }
        let mut ok = true;
        for rule in &rules {
            if !Config::is_known_rule(rule) {
                bad(format!("unknown rule `{rule}` in suppression"));
                ok = false;
            }
        }
        if !ok {
            continue;
        }
        // The suppression covers its own line through the next line that
        // carries code (so it can sit above or trail the offending line,
        // and stacked suppressions chain past one another).
        let to_line = tokens[idx + 1..]
            .iter()
            .find(|t| {
                !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                    && t.line >= token.line
            })
            .map_or(token.line, |t| t.line);
        for rule in rules {
            out.push(Suppression {
                rule: rule.to_owned(),
                from_line: token.line,
                to_line,
                whole_file,
            });
        }
    }
    (out, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(
            classify("crates/spice/src/dc.rs"),
            ("spice".to_owned(), FileClass::Library)
        );
        assert_eq!(classify("crates/cell/tests/x.rs").1, FileClass::Test);
        assert_eq!(classify("crates/bench/benches/x.rs").1, FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs").1, FileClass::Test);
        assert_eq!(
            classify("crates/bench/src/bin/reproduce.rs").1,
            FileClass::Bin
        );
        assert_eq!(classify("crates/lint/src/main.rs").1, FileClass::Bin);
        assert_eq!(
            classify("src/lib.rs"),
            ("sram-edp".to_owned(), FileClass::Library)
        );
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n";
        let ctx = FileCtx::new("crates/x/src/a.rs".into(), src);
        assert!(!ctx.in_test(1));
        assert!(ctx.in_test(2));
        assert!(ctx.in_test(4));
        assert!(ctx.in_test(5));
        assert!(!ctx.in_test(6));
    }

    #[test]
    fn test_attribute_marks_one_fn() {
        let src = "#[test]\nfn t() {\n    body();\n}\nfn lib() {}\n";
        let ctx = FileCtx::new("crates/x/src/a.rs".into(), src);
        assert!(ctx.in_test(3));
        assert!(!ctx.in_test(5));
    }

    #[test]
    fn suppression_covers_next_code_line() {
        let src = "// sram-lint: allow(no-panic) locally checked invariant\nlet x = v.unwrap();\nlet y = w.unwrap();\n";
        let ctx = FileCtx::new("crates/x/src/a.rs".into(), src);
        assert!(ctx.is_suppressed("no-panic", 1));
        assert!(ctx.is_suppressed("no-panic", 2));
        assert!(!ctx.is_suppressed("no-panic", 3));
        assert!(!ctx.is_suppressed("unit-hygiene", 2));
    }

    #[test]
    fn trailing_suppression_covers_its_own_line() {
        let src = "let x = v.unwrap(); // sram-lint: allow(no-panic) checked above\n";
        let ctx = FileCtx::new("crates/x/src/a.rs".into(), src);
        assert!(ctx.is_suppressed("no-panic", 1));
    }

    #[test]
    fn reasonless_suppression_is_an_error() {
        let src = "// sram-lint: allow(no-panic)\nlet x = v.unwrap();\n";
        let ctx = FileCtx::new("crates/x/src/a.rs".into(), src);
        assert_eq!(ctx.suppression_errors.len(), 1);
        assert!(!ctx.is_suppressed("no-panic", 2));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let src = "// sram-lint: allow(made-up-rule) because\nlet x = 1;\n";
        let ctx = FileCtx::new("crates/x/src/a.rs".into(), src);
        assert_eq!(ctx.suppression_errors.len(), 1);
    }

    #[test]
    fn allow_file_covers_everything() {
        let src = "// sram-lint: allow-file(no-panic) generated shim\nfn a() {}\nfn z() { v.unwrap(); }\n";
        let ctx = FileCtx::new("crates/x/src/a.rs".into(), src);
        assert!(ctx.is_suppressed("no-panic", 3));
    }
}
