//! Rule registry and per-rule severity configuration.

use crate::diag::Level;

/// `(name, default level, one-line description)` for every rule.
pub const RULES: &[(&str, Level, &str)] = &[
    (
        "unit-hygiene",
        Level::Warn,
        "bare physical-magnitude literals in model crates (cell/array/core) must use sram-units constructors or named consts",
    ),
    (
        "no-panic",
        Level::Deny,
        "unwrap/expect/panic!/unreachable!/todo! denied in library code (allowed in tests, examples, benches, bins)",
    ),
    (
        "nan-unsafe",
        Level::Deny,
        "partial_cmp().unwrap() chains and float equality inside asserts outside tests",
    ),
    (
        "probe-naming",
        Level::Deny,
        "sram-probe metric names must be lowercase dotted crate.subsystem.metric, crate-prefixed, and kind-unique",
    ),
    (
        "thread-discipline",
        Level::Deny,
        "std::thread::spawn forbidden outside the sanctioned crates (core, serve, faults, probe, cluster)",
    ),
    (
        "doc-coverage",
        Level::Deny,
        "pub items and named pub fields in library code must carry a /// doc comment",
    ),
    (
        "registry-sync",
        Level::Deny,
        "every experiment in crates/bench/src/cli.rs must appear in EXPERIMENTS.md's Registry section and vice versa",
    ),
    (
        "dead-parameter",
        Level::Deny,
        "pub fields of parameter structs (*Params/*Config/*Space/*Options) must be dot-read somewhere in the workspace",
    ),
    (
        "config-sync",
        Level::Deny,
        "SRAM_* env vars read in code must be documented in README.md/DESIGN.md and vice versa",
    ),
    (
        "probe-drift",
        Level::Deny,
        "probe metric names must match PROBES.md (name + kind) and be asserted by a test, reproducer, or CI smoke",
    ),
    (
        "suppression-syntax",
        Level::Deny,
        "inline suppressions must name a known rule and carry a reason",
    ),
    (
        "unused-suppression",
        Level::Warn,
        "inline `sram-lint: allow` comments whose rule reports nothing on the covered lines are stale and must go",
    ),
    (
        "parse-error",
        Level::Deny,
        "the file could not be tokenized (unterminated string/comment)",
    ),
];

/// Effective severity per rule.
#[derive(Debug, Clone)]
pub struct Config {
    levels: Vec<(&'static str, Level)>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            levels: RULES
                .iter()
                .map(|&(name, level, _)| (name, level))
                .collect(),
        }
    }
}

impl Config {
    /// Default severities.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Every rule at `Deny` (the CI configuration).
    #[must_use]
    pub fn deny_all() -> Self {
        Self {
            levels: RULES
                .iter()
                .map(|&(name, _, _)| (name, Level::Deny))
                .collect(),
        }
    }

    /// Overrides one rule's level. Returns `false` for unknown rules.
    pub fn set(&mut self, rule: &str, level: Level) -> bool {
        for slot in &mut self.levels {
            if slot.0 == rule {
                slot.1 = level;
                return true;
            }
        }
        false
    }

    /// The effective level of `rule` (`Allow` for unknown names).
    #[must_use]
    pub fn level(&self, rule: &str) -> Level {
        self.levels
            .iter()
            .find(|(name, _)| *name == rule)
            .map_or(Level::Allow, |&(_, level)| level)
    }

    /// `true` when `rule` is a registered rule name.
    #[must_use]
    pub fn is_known_rule(rule: &str) -> bool {
        RULES.iter().any(|&(name, _, _)| name == rule)
    }
}

/// The rule registry rendered for `--list-rules`.
#[must_use]
pub fn render_rule_list() -> String {
    let mut out = String::new();
    let width = RULES.iter().map(|(n, _, _)| n.len()).max().unwrap_or(0);
    for &(name, level, desc) in RULES {
        out.push_str(&format!("{name:width$}  [{:5}]  {desc}\n", level.name()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_registry() {
        let c = Config::new();
        assert_eq!(c.level("no-panic"), Level::Deny);
        assert_eq!(c.level("unit-hygiene"), Level::Warn);
        assert_eq!(c.level("nonexistent"), Level::Allow);
    }

    #[test]
    fn deny_all_promotes_everything() {
        let c = Config::deny_all();
        for &(name, _, _) in RULES {
            assert_eq!(c.level(name), Level::Deny, "{name}");
        }
    }

    #[test]
    fn set_overrides() {
        let mut c = Config::new();
        assert!(c.set("no-panic", Level::Allow));
        assert_eq!(c.level("no-panic"), Level::Allow);
        assert!(!c.set("bogus", Level::Deny));
    }
}
