//! A small, self-contained Rust lexer.
//!
//! The build environment is offline, so the linter cannot use `syn` or
//! `proc-macro2`; instead it tokenizes source text directly. The lexer
//! is *classification-faithful* rather than grammar-complete: its job is
//! to never mistake the inside of a string, character literal, or
//! comment for code (and vice versa), so that rules matching on
//! identifiers and literals cannot fire on e.g. `"call .unwrap() here"`
//! inside a doc string.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw strings with arbitrary `#` fences, byte/C-string
//! prefixes (`b`, `c`, `br`, `cr`, `rb` is rejected like rustc),
//! character vs. lifetime disambiguation, raw identifiers (`r#match`),
//! integer/float literals with underscores, exponents and type
//! suffixes, and single-character punctuation.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish them).
    Ident,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Integer literal (any base, with optional suffix).
    Int,
    /// Floating-point literal (decimal point, exponent, or f-suffix).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// `// …` comment (including doc comments `///` and `//!`).
    LineComment,
    /// `/* … */` comment (nesting-aware, including `/** … */`).
    BlockComment,
    /// A single punctuation character (`::` is two `Punct(':')`).
    Punct,
}

/// One token with its source location (1-based line and column, in
/// characters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Verbatim source text, including quotes/fences for literals.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

/// A lexing failure (unterminated string/comment/char literal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending construct.
    pub line: u32,
    /// 1-based column of the offending construct.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

/// Tokenizes `src`. Returns every token recognized plus any errors; on
/// an unterminated construct the remainder of the file is consumed by
/// that construct (matching how rustc would see it).
#[must_use]
pub fn lex(src: &str) -> (Vec<Token>, Vec<LexError>) {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    errors: Vec<LexError>,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            errors: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self, buf: &mut String) {
        if let Some(&c) = self.chars.get(self.pos) {
            self.pos += 1;
            buf.push(c);
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn error(&mut self, line: u32, col: u32, message: &str) {
        self.errors.push(LexError {
            line,
            col,
            message: message.to_owned(),
        });
    }

    fn run(mut self) -> (Vec<Token>, Vec<LexError>) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                let mut sink = String::new();
                self.bump(&mut sink);
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col);
            } else if c == '"' {
                self.string(line, col, String::new());
            } else if c == '\'' {
                self.char_or_lifetime(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal(line, col);
            } else {
                let mut text = String::new();
                self.bump(&mut text);
                self.push(TokenKind::Punct, text, line, col);
            }
        }
        (self.tokens, self.errors)
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump(&mut text);
        }
        self.push(TokenKind::LineComment, text, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        self.bump(&mut text); // '/'
        self.bump(&mut text); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump(&mut text);
                    self.bump(&mut text);
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump(&mut text);
                    self.bump(&mut text);
                }
                (Some(_), _) => self.bump(&mut text),
                (None, _) => {
                    self.error(line, col, "unterminated block comment");
                    break;
                }
            }
        }
        self.push(TokenKind::BlockComment, text, line, col);
    }

    /// Cooked string body starting at the opening quote; `text` holds any
    /// already-consumed prefix (`b`, `c`).
    fn string(&mut self, line: u32, col: u32, mut text: String) {
        self.bump(&mut text); // opening '"'
        loop {
            match self.peek(0) {
                Some('\\') => {
                    self.bump(&mut text);
                    self.bump(&mut text); // whatever is escaped
                }
                Some('"') => {
                    self.bump(&mut text);
                    break;
                }
                Some(_) => self.bump(&mut text),
                None => {
                    self.error(line, col, "unterminated string literal");
                    break;
                }
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// Raw string body: cursor is on the first `#` or the `"`; `text`
    /// holds the prefix (`r`, `br`, `cr`).
    fn raw_string(&mut self, line: u32, col: u32, mut text: String) {
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            self.bump(&mut text);
        }
        self.bump(&mut text); // opening '"'
        'scan: loop {
            match self.peek(0) {
                Some('"') => {
                    self.bump(&mut text);
                    let mut seen = 0usize;
                    while seen < fence && self.peek(0) == Some('#') {
                        seen += 1;
                        self.bump(&mut text);
                    }
                    if seen == fence {
                        break 'scan;
                    }
                }
                Some(_) => self.bump(&mut text),
                None => {
                    self.error(line, col, "unterminated raw string literal");
                    break 'scan;
                }
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// `'` — either a character/byte literal or a lifetime. `text` may
    /// already hold a `b` prefix.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.char_or_lifetime_with(line, col, String::new());
    }

    fn char_or_lifetime_with(&mut self, line: u32, col: u32, mut text: String) {
        let byte_prefix = !text.is_empty();
        self.bump(&mut text); // opening '\''
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume `\x`, then to closing quote.
                self.bump(&mut text);
                self.bump(&mut text);
                self.finish_char(line, col, text);
            }
            Some(c) if is_ident_start(c) && self.peek(1) != Some('\'') && !byte_prefix => {
                // Lifetime: `'ident` not followed by a closing quote.
                while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
                    self.bump(&mut text);
                }
                self.push(TokenKind::Lifetime, text, line, col);
            }
            Some(_) => {
                self.bump(&mut text); // the character itself
                self.finish_char(line, col, text);
            }
            None => {
                self.error(line, col, "unterminated character literal");
                self.push(TokenKind::Char, text, line, col);
            }
        }
    }

    fn finish_char(&mut self, line: u32, col: u32, mut text: String) {
        // Consume up to the closing quote (covers `'\u{1F600}'`).
        loop {
            match self.peek(0) {
                Some('\'') => {
                    self.bump(&mut text);
                    break;
                }
                Some(c) if c != '\n' => self.bump(&mut text),
                _ => {
                    self.error(line, col, "unterminated character literal");
                    break;
                }
            }
        }
        self.push(TokenKind::Char, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut is_float = false;
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'b' | 'B' | 'o' | 'O'))
        {
            // Radix literal: digits + underscores + hex letters + suffix.
            self.bump(&mut text);
            self.bump(&mut text);
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                self.bump(&mut text);
            }
            self.push(TokenKind::Int, text, line, col);
            return;
        }
        while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
            self.bump(&mut text);
        }
        // Fractional part: `.` followed by a digit, or a bare trailing `.`
        // that is not `..` / `.method`.
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    is_float = true;
                    self.bump(&mut text);
                    while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                        self.bump(&mut text);
                    }
                }
                Some(c) if c == '.' || is_ident_start(c) => {}
                _ => {
                    is_float = true;
                    self.bump(&mut text); // `1.`
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let sign = matches!(self.peek(1), Some('+' | '-'));
            let digit_at = if sign { 2 } else { 1 };
            if matches!(self.peek(digit_at), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                self.bump(&mut text);
                if sign {
                    self.bump(&mut text);
                }
                while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                    self.bump(&mut text);
                }
            }
        }
        // Type suffix (`u32`, `f64`, …).
        let mut suffix = String::new();
        while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
            self.bump(&mut suffix);
        }
        if suffix.starts_with('f') {
            is_float = true;
        }
        text.push_str(&suffix);
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, text, line, col);
    }

    fn ident_or_prefixed_literal(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
            self.bump(&mut text);
        }
        match text.as_str() {
            // Raw identifier or raw string: `r#ident` vs `r#"…"#` / `r"…"`.
            "r" | "br" | "cr" => {
                if self.raw_fence_ahead() {
                    self.raw_string(line, col, text);
                    return;
                }
                if text == "r"
                    && self.peek(0) == Some('#')
                    && matches!(self.peek(1), Some(c) if is_ident_start(c))
                {
                    // Raw identifier `r#match`: absorb `#` + ident.
                    self.bump(&mut text);
                    while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
                        self.bump(&mut text);
                    }
                }
                self.push(TokenKind::Ident, text, line, col);
            }
            "b" | "c" => {
                if self.peek(0) == Some('"') {
                    self.string(line, col, text);
                } else if text == "b" && self.peek(0) == Some('\'') {
                    self.char_or_lifetime_with(line, col, text);
                } else {
                    self.push(TokenKind::Ident, text, line, col);
                }
            }
            _ => self.push(TokenKind::Ident, text, line, col),
        }
    }

    /// `true` when the cursor sits on `#*"` (a raw-string fence).
    fn raw_fence_ahead(&self) -> bool {
        let mut k = 0usize;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        self.peek(k) == Some('"')
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// The value of a string-literal token (quotes and raw fences stripped;
/// escape sequences are left as written). Returns `None` for tokens that
/// are not strings.
#[must_use]
pub fn str_value(text: &str) -> Option<&str> {
    let body = text
        .trim_start_matches(['b', 'c', 'r'])
        .trim_start_matches('#');
    let body = body.strip_prefix('"')?;
    let body = body.strip_suffix('"').unwrap_or(body);
    Some(body.trim_end_matches('#').trim_end_matches('"'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        let (tokens, errors) = lex(src);
        assert!(errors.is_empty(), "unexpected lex errors: {errors:?}");
        tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r#"let s = "call .unwrap() // not a comment";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "unwrap"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"let x = r#"quote " inside"#; let r#match = 1;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("quote")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks =
            kinds(r"fn f<'a>(x: &'a str) { let c = 'x'; let q = '\''; let s: &'static str = s; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 3, "{toks:?}");
        assert_eq!(chars.len(), 2, "{toks:?}");
    }

    #[test]
    fn numbers() {
        let toks = kinds("1e-9 1.5e-12 0xFF_u32 1..2 1.max(2) 3.0f64 7usize 1.");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["1e-9", "1.5e-12", "3.0f64", "1."]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, vec!["0xFF_u32", "1", "2", "1", "2", "7usize"]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::BlockComment)
                .count(),
            1
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let (_, errors) = lex("let s = \"oops");
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("unterminated"));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r#"let a = b"bytes"; let c = b'\''; let d = b'x';"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn str_value_strips_fences() {
        assert_eq!(str_value("\"abc\""), Some("abc"));
        assert_eq!(str_value("r#\"abc\"#"), Some("abc"));
        assert_eq!(str_value("b\"abc\""), Some("abc"));
    }
}
