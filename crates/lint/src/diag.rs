//! Diagnostics: severity levels, the diagnostic record, and the text /
//! JSON renderers.

use std::fmt::Write as _;

/// Severity assigned to a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Rule disabled: no diagnostics are reported.
    Allow,
    /// Reported, does not affect the exit code.
    Warn,
    /// Reported, makes the lint run fail.
    Deny,
}

impl Level {
    /// Name used in CLI flags and rendered output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Level::Allow => "allow",
            Level::Warn => "warn",
            Level::Deny => "deny",
        }
    }
}

/// One finding, anchored to a file location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule that fired (kebab-case name).
    pub rule: &'static str,
    /// Effective severity under the active configuration.
    pub level: Level,
    /// Path relative to the linted root (`/`-separated).
    pub file: String,
    /// 1-based line (0 when the finding has no line anchor).
    pub line: u32,
    /// 1-based column in characters.
    pub col: u32,
    /// Length of the underlined span in characters (min 1).
    pub len: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix or suppress it.
    pub help: Option<String>,
    /// The source line, for the excerpt block.
    pub excerpt: Option<String>,
}

/// Result of a whole lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Diagnostics at `Warn` or `Deny`, in file/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Files whose analysis was reused from the incremental cache
    /// (content hash unchanged since the cached run).
    pub files_skipped: usize,
    /// Findings silenced by inline `sram-lint: allow(…)` comments.
    pub suppressed: usize,
}

impl Report {
    /// Number of deny-level diagnostics (non-zero fails the run).
    #[must_use]
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Deny)
            .count()
    }

    /// Number of warn-level diagnostics.
    #[must_use]
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Warn)
            .count()
    }

    /// Renders the full report in rustc-style text.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&render_diagnostic(d));
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "sram-lint: {} file(s) scanned ({} unchanged from cache), {} error(s), \
             {} warning(s), {} suppressed",
            self.files_scanned,
            self.files_skipped,
            self.deny_count(),
            self.warn_count(),
            self.suppressed
        );
        out
    }

    /// Renders the report as a JSON document (hand-rolled serializer —
    /// this workspace links no serialization ecosystem).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"files_skipped\": {},", self.files_skipped);
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        let _ = writeln!(
            out,
            "  \"counts\": {{\"deny\": {}, \"warn\": {}}},",
            self.deny_count(),
            self.warn_count()
        );
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"rule\": {}, ", json_str(d.rule));
            let _ = write!(out, "\"level\": {}, ", json_str(d.level.name()));
            let _ = write!(out, "\"file\": {}, ", json_str(&d.file));
            let _ = write!(out, "\"line\": {}, \"col\": {}, ", d.line, d.col);
            let _ = write!(out, "\"message\": {}", json_str(&d.message));
            if let Some(help) = &d.help {
                let _ = write!(out, ", \"help\": {}", json_str(help));
            }
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Renders one diagnostic in rustc style:
///
/// ```text
/// deny[no-panic]: `.unwrap()` in library code
///   --> crates/spice/src/dc.rs:42:17
///    |
/// 42 |     let x = v.unwrap();
///    |               ^^^^^^
///    = help: propagate the error instead
/// ```
#[must_use]
pub fn render_diagnostic(d: &Diagnostic) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", d.level.name(), d.rule, d.message);
    let _ = writeln!(out, "  --> {}:{}:{}", d.file, d.line, d.col);
    if let Some(src) = &d.excerpt {
        let line_no = d.line.to_string();
        let pad = " ".repeat(line_no.len());
        let _ = writeln!(out, "{pad} |");
        let _ = writeln!(out, "{line_no} | {src}");
        let caret_pad = " ".repeat(d.col.saturating_sub(1) as usize);
        let carets = "^".repeat(d.len.max(1) as usize);
        let _ = writeln!(out, "{pad} | {caret_pad}{carets}");
    }
    if let Some(help) = &d.help {
        let _ = writeln!(out, "  = help: {help}");
    }
    out
}

/// JSON string literal with escaping.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "no-panic",
            level: Level::Deny,
            file: "crates/x/src/a.rs".into(),
            line: 42,
            col: 15,
            len: 6,
            message: "`.unwrap()` in library code".into(),
            help: Some("propagate the error".into()),
            excerpt: Some("    let x = v.unwrap();".into()),
        }
    }

    #[test]
    fn text_rendering_is_rustc_like() {
        let text = render_diagnostic(&sample());
        assert!(text.starts_with("deny[no-panic]:"));
        assert!(text.contains("--> crates/x/src/a.rs:42:15"));
        assert!(text.contains("^^^^^^"));
        assert!(text.contains("= help:"));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_report_shape() {
        let report = Report {
            diagnostics: vec![sample()],
            files_scanned: 3,
            files_skipped: 2,
            suppressed: 1,
        };
        let json = report.render_json();
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"files_skipped\": 2"));
        assert!(json.contains("\"rule\": \"no-panic\""));
        assert!(json.contains("\"counts\": {\"deny\": 1, \"warn\": 0}"));
    }
}
