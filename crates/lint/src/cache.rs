//! The incremental on-disk cache (`SRAM_LINT_CACHE`).
//!
//! Per-file analysis — lexing, the per-file rules, suppression parsing,
//! and symbol-graph fact extraction — is a pure function of the file's
//! path and bytes, so its results can be keyed by an FNV-1a-64 content
//! hash and reused verbatim on the next run. Everything that *isn't*
//! pure per file (graph assembly, the cross-file rules, suppression
//! resolution, severity levels) re-runs every time over the restored
//! facts, which is what keeps warm and cold runs byte-identical: the
//! cache changes where per-file results come from, never what they are.
//!
//! The format is a line-oriented, tab-separated text file. The header
//! pins a format version and the crate version — any rule-logic change
//! ships in a new crate version, so a stale cache is discarded whole
//! rather than mixing analyses from two rule sets. A record line that
//! fails to parse discards its file's entry (the file is simply
//! re-analyzed); corruption can cost speed, never correctness.

use crate::context::Suppression;
use crate::engine::FileAnalysis;
use crate::graph::{EnvRead, ExperimentDef, FileFacts, ParamDef, ProbeDef, SiteRef};
use crate::rules::probe_naming::Kind;
use crate::rules::RawDiag;
use std::collections::HashMap;
use std::io;
use std::path::Path;

/// Cache format header: bump the leading version on any layout change;
/// the crate version changes whenever rule logic does.
const HEADER: &str = concat!("sram-lint-cache v1 ", env!("CARGO_PKG_VERSION"));

/// FNV-1a 64-bit content hash (the same construction the serve cache
/// uses for query keys — collision-resistant enough for change
/// detection, dependency-free).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Loads a cache file into per-path entries. A missing file, a stale
/// header, or an unparseable entry yields an empty/partial map — cache
/// misses, never errors.
#[must_use]
pub fn load(path: &Path) -> HashMap<String, FileAnalysis> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return HashMap::new();
    };
    let mut lines = text.lines();
    if lines.next() != Some(HEADER) {
        return HashMap::new();
    }
    let mut entries = HashMap::new();
    let mut current: Option<FileAnalysis> = None;
    let mut poisoned = false;
    for line in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        let Some(&tag) = fields.first() else {
            continue;
        };
        if tag == "F" {
            // New entry: commit the previous one (unless poisoned).
            if let Some(mut done) = current.take() {
                if !poisoned {
                    done.from_cache = true;
                    entries.insert(done.rel.clone(), done);
                }
            }
            poisoned = false;
            current = parse_file_header(&fields);
            if current.is_none() {
                poisoned = true;
            }
            continue;
        }
        let Some(entry) = current.as_mut() else {
            continue;
        };
        if poisoned {
            continue;
        }
        if !parse_record(tag, &fields, entry) {
            poisoned = true;
            current = None;
        }
    }
    if let Some(mut done) = current.take() {
        if !poisoned {
            done.from_cache = true;
            entries.insert(done.rel.clone(), done);
        }
    }
    entries
}

/// Writes every scanned analysis to `path`.
///
/// # Errors
///
/// Propagates the underlying file write.
pub fn save(path: &Path, analyses: &[FileAnalysis]) -> io::Result<()> {
    let mut out = String::from(HEADER);
    out.push('\n');
    for a in analyses {
        if !a.scanned {
            // Unreadable files have no content hash to key on.
            continue;
        }
        out.push_str(&format!("F\t{}\t{:016x}\n", esc(&a.rel), a.hash));
        for d in &a.raw {
            let help = d
                .help
                .as_ref()
                .map_or_else(|| "-".to_owned(), |h| format!("+{}", esc(h)));
            out.push_str(&format!(
                "D\t{}\t{}\t{}\t{}\t{}\t{help}\n",
                d.rule,
                d.line,
                d.col,
                d.len,
                esc(&d.message)
            ));
        }
        for s in &a.suppressions {
            out.push_str(&format!(
                "S\t{}\t{}\t{}\t{}\n",
                esc(&s.rule),
                s.from_line,
                s.to_line,
                u8::from(s.whole_file)
            ));
        }
        for (line, text) in &a.excerpts {
            out.push_str(&format!("E\t{line}\t{}\n", esc(text)));
        }
        for p in &a.facts.params {
            out.push_str(&format!(
                "M\t{}\t{}\t{}\t{}\t{}\n",
                esc(&p.strukt),
                esc(&p.field),
                p.site.line,
                p.site.col,
                p.site.len
            ));
        }
        for e in &a.facts.env_reads {
            out.push_str(&format!(
                "V\t{}\t{}\t{}\t{}\n",
                esc(&e.name),
                e.site.line,
                e.site.col,
                e.site.len
            ));
        }
        for p in &a.facts.probes {
            out.push_str(&format!(
                "P\t{}\t{}\t{}\t{}\t{}\n",
                esc(&p.name),
                p.kind.word(),
                p.site.line,
                p.site.col,
                p.site.len
            ));
        }
        for e in &a.facts.experiments {
            out.push_str(&format!(
                "X\t{}\t{}\t{}\t{}\n",
                esc(&e.name),
                e.site.line,
                e.site.col,
                e.site.len
            ));
        }
        for r in &a.facts.dot_refs {
            out.push_str(&format!("R\t{}\n", esc(r)));
        }
        for m in &a.facts.metric_mentions {
            out.push_str(&format!("T\t{}\n", esc(m)));
        }
    }
    std::fs::write(path, out)
}

fn parse_file_header(fields: &[&str]) -> Option<FileAnalysis> {
    let rel = unesc(fields.get(1)?);
    let hash = u64::from_str_radix(fields.get(2)?, 16).ok()?;
    Some(FileAnalysis::fresh(
        rel,
        hash,
        Vec::new(),
        Vec::new(),
        FileFacts::default(),
    ))
}

/// Applies one record line to the open entry; `false` poisons it.
fn parse_record(tag: &str, fields: &[&str], entry: &mut FileAnalysis) -> bool {
    fn site(fields: &[&str], at: usize) -> Option<SiteRef> {
        Some(SiteRef {
            line: fields.get(at)?.parse().ok()?,
            col: fields.get(at + 1)?.parse().ok()?,
            len: fields.get(at + 2)?.parse().ok()?,
        })
    }
    let applied = match tag {
        "D" => (|| {
            // Rule names intern back to the registry's &'static str; an
            // unknown name means the cache predates a rule rename.
            let rule = crate::config::RULES
                .iter()
                .map(|&(name, _, _)| name)
                .find(|&name| Some(name) == fields.get(1).copied())?;
            let s = site(fields, 2)?;
            let help = match fields.get(6)? {
                &"-" => None,
                h => Some(unesc(h.strip_prefix('+')?)),
            };
            entry.raw.push(RawDiag {
                rule,
                line: s.line,
                col: s.col,
                len: s.len,
                message: unesc(fields.get(5)?),
                help,
            });
            Some(())
        })(),
        "S" => (|| {
            entry.suppressions.push(Suppression {
                rule: unesc(fields.get(1)?),
                from_line: fields.get(2)?.parse().ok()?,
                to_line: fields.get(3)?.parse().ok()?,
                whole_file: *fields.get(4)? == "1",
            });
            Some(())
        })(),
        "E" => (|| {
            let line: u32 = fields.get(1)?.parse().ok()?;
            entry.excerpts.insert(line, unesc(fields.get(2)?));
            Some(())
        })(),
        "M" => (|| {
            entry.facts.params.push(ParamDef {
                strukt: unesc(fields.get(1)?),
                field: unesc(fields.get(2)?),
                site: site(fields, 3)?,
            });
            Some(())
        })(),
        "V" => (|| {
            entry.facts.env_reads.push(EnvRead {
                name: unesc(fields.get(1)?),
                site: site(fields, 2)?,
            });
            Some(())
        })(),
        "P" => (|| {
            entry.facts.probes.push(ProbeDef {
                name: unesc(fields.get(1)?),
                kind: Kind::from_word(fields.get(2)?)?,
                site: site(fields, 3)?,
            });
            Some(())
        })(),
        "X" => (|| {
            entry.facts.experiments.push(ExperimentDef {
                name: unesc(fields.get(1)?),
                site: site(fields, 2)?,
            });
            Some(())
        })(),
        "R" => (|| {
            entry.facts.dot_refs.insert(unesc(fields.get(1)?));
            Some(())
        })(),
        "T" => (|| {
            entry.facts.metric_mentions.insert(unesc(fields.get(1)?));
            Some(())
        })(),
        _ => None,
    };
    applied.is_some()
}

/// Escapes tabs, newlines, and backslashes for one tab-separated field.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_analysis() -> FileAnalysis {
        let mut facts = FileFacts::default();
        facts.params.push(ParamDef {
            strukt: "TuneParams".into(),
            field: "dead".into(),
            site: SiteRef {
                line: 4,
                col: 9,
                len: 4,
            },
        });
        facts.env_reads.push(EnvRead {
            name: "SRAM_SLO_*_MS".into(),
            site: SiteRef {
                line: 7,
                col: 2,
                len: 15,
            },
        });
        facts.probes.push(ProbeDef {
            name: "spice.solves".into(),
            kind: Kind::Counter,
            site: SiteRef {
                line: 9,
                col: 3,
                len: 14,
            },
        });
        facts.dot_refs.insert("alpha".into());
        facts.metric_mentions.insert("spice.solves".into());
        let mut a = FileAnalysis::fresh(
            "crates/spice/src/a.rs".into(),
            0xdead_beef,
            vec![RawDiag {
                rule: "no-panic",
                line: 3,
                col: 5,
                len: 6,
                message: "line with\ttab and \\ backslash".into(),
                help: Some("multi\nline".into()),
            }],
            vec![Suppression {
                rule: "no-panic".into(),
                from_line: 2,
                to_line: 3,
                whole_file: false,
            }],
            facts,
        );
        a.excerpts = BTreeMap::from([(3, "    v.unwrap();".to_owned())]);
        a
    }

    #[test]
    fn round_trip_preserves_everything() {
        let path = std::env::temp_dir().join(format!("sram-lint-cache-rt-{}", std::process::id()));
        let original = sample_analysis();
        save(&path, std::slice::from_ref(&original)).unwrap();
        let loaded = load(&path);
        std::fs::remove_file(&path).ok();
        let entry = loaded.get("crates/spice/src/a.rs").expect("entry restored");
        assert_eq!(entry.hash, 0xdead_beef);
        assert!(entry.from_cache);
        assert_eq!(entry.raw.len(), 1);
        assert_eq!(entry.raw[0].rule, "no-panic");
        assert_eq!(entry.raw[0].message, "line with\ttab and \\ backslash");
        assert_eq!(entry.raw[0].help.as_deref(), Some("multi\nline"));
        assert_eq!(entry.suppressions.len(), 1);
        assert_eq!(
            entry.excerpts.get(&3).map(String::as_str),
            Some("    v.unwrap();")
        );
        assert_eq!(entry.facts.params[0].field, "dead");
        assert_eq!(entry.facts.env_reads[0].name, "SRAM_SLO_*_MS");
        assert_eq!(entry.facts.probes[0].kind, Kind::Counter);
        assert!(entry.facts.dot_refs.contains("alpha"));
        assert!(entry.facts.metric_mentions.contains("spice.solves"));
    }

    #[test]
    fn stale_header_discards_the_whole_file() {
        let path = std::env::temp_dir().join(format!("sram-lint-cache-sh-{}", std::process::id()));
        std::fs::write(&path, "sram-lint-cache v0 0.0.0\nF\tx.rs\t00\n").unwrap();
        assert!(load(&path).is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_discards_only_its_entry() {
        let path = std::env::temp_dir().join(format!("sram-lint-cache-cr-{}", std::process::id()));
        let good = sample_analysis();
        save(&path, std::slice::from_ref(&good)).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("F\tcrates/x/src/broken.rs\t0000000000000001\n");
        text.push_str("D\tno-such-rule\t1\t1\t1\tmsg\t-\n");
        text.push_str("F\tcrates/x/src/fine.rs\t0000000000000002\n");
        std::fs::write(&path, text).unwrap();
        let loaded = load(&path);
        std::fs::remove_file(&path).ok();
        assert!(loaded.contains_key("crates/spice/src/a.rs"));
        assert!(!loaded.contains_key("crates/x/src/broken.rs"));
        assert!(loaded.contains_key("crates/x/src/fine.rs"));
    }

    #[test]
    fn missing_file_is_an_empty_cache() {
        assert!(load(Path::new("/nonexistent/sram-lint.cache")).is_empty());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
