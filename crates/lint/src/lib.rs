//! # sram-lint
//!
//! Workspace-specific static analysis for the SRAM EDP co-optimization
//! workspace. `cargo` and `clippy` know Rust; they do not know that a
//! bare `9.5e-5` in a cell model is a latent unit bug, that a panic in
//! the SPICE inner loop kills a 50k-point Monte Carlo run, or that two
//! probe sites disagreeing on a metric's kind corrupts every dashboard
//! downstream. This crate encodes those house rules as a fast,
//! dependency-free lint pass.
//!
//! The analysis is intentionally lexical: a hand-written, string- and
//! comment-aware Rust lexer ([`lexer`]) feeds token-pattern rules
//! ([`rules`]). That is deliberate — the build environment is offline
//! (no `syn`), and every invariant we enforce is visible at the token
//! level. The trade-off is documented per rule: each rule states what
//! it can and cannot see.
//!
//! ## Rules
//!
//! See [`config::RULES`] for the registry with default levels. Inline
//! suppression:
//!
//! ```text
//! // sram-lint: allow(no-panic) registry kind checked two lines up
//! ```
//!
//! A suppression covers its own line and the next code-bearing line,
//! and the reason is mandatory — a suppression without a justification
//! is itself a `suppression-syntax` error.
//!
//! ## Cross-file analysis
//!
//! Beyond per-file token rules, the engine assembles a workspace
//! symbol graph ([`graph`]): parameter-struct field definitions,
//! `SRAM_*` environment reads, probe metric registrations, and
//! experiment registry entries, against the dot-accesses and string
//! mentions that use them. Three rules consume it — `dead-parameter`,
//! `config-sync`, `probe-drift` — plus the graph-driven halves of
//! `probe-naming` and `registry-sync`. File analysis runs in parallel
//! and is incrementally cached ([`cache`], enabled by pointing
//! `SRAM_LINT_CACHE` at a file); results can render as text, JSON, or
//! SARIF 2.1.0 ([`sarif`]).

pub mod bench_self;
pub mod cache;
pub mod config;
pub mod context;
pub mod diag;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod sarif;

pub use config::Config;
pub use diag::{Diagnostic, Level, Report};
pub use engine::{find_workspace_root, run, run_with, FileAnalysis, Options};
