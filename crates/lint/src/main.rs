//! Command-line entry point for `sram-lint`.
//!
//! ```text
//! cargo run -p sram-lint -- --deny-all            # CI gate
//! cargo run -p sram-lint -- --format json         # machine-readable
//! cargo run -p sram-lint -- --format sarif        # code-scanning UIs
//! cargo run -p sram-lint -- --root path/to/tree   # lint another tree
//! cargo run -p sram-lint -- --bench-self          # time a full pass
//! cargo run -p sram-lint -- --list-rules
//! ```
//!
//! Set `SRAM_LINT_CACHE=/path/to/file` to enable the incremental cache:
//! files whose content hash is unchanged since the cached run skip
//! re-analysis (the cross-file rules always re-run). The library API
//! stays environment-free — the variable is read only here.
//!
//! Exit codes: 0 clean (or warnings only), 1 deny-level findings,
//! 2 usage or I/O error.

use sram_lint::{find_workspace_root, run_with, Config, Level, Options};
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("sram-lint: error: {message}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut config = Config::new();
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut bench = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => config = Config::deny_all(),
            "--bench-self" => bench = true,
            "--format" => {
                let value = args
                    .next()
                    .ok_or("--format needs a value (text|json|sarif)")?;
                format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}` (text|json|sarif)")),
                };
            }
            "--root" => {
                let value = args.next().ok_or("--root needs a path")?;
                root = Some(PathBuf::from(value));
            }
            "--allow" | "--warn" | "--deny" => {
                let rule = args
                    .next()
                    .ok_or_else(|| format!("{arg} needs a rule name"))?;
                let level = match arg.as_str() {
                    "--allow" => Level::Allow,
                    "--warn" => Level::Warn,
                    _ => Level::Deny,
                };
                if !config.set(&rule, level) {
                    return Err(format!("unknown rule `{rule}` (see --list-rules)"));
                }
            }
            "--list-rules" => {
                print!("{}", sram_lint::config::render_rule_list());
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass --root")?
        }
    };
    if !root.is_dir() {
        return Err(format!("root `{}` is not a directory", root.display()));
    }

    if bench {
        let result = sram_lint::bench_self::run_bench(&root, &config)?;
        println!(
            "sram-lint --bench-self: {} files, cold {:.1} ms, warm {:.1} ms ({} reused), \
             {} diagnostic(s)\n  appended: BENCH_trajectory.json (lint_ms entry)",
            result.files, result.cold_ms, result.warm_ms, result.skipped, result.diagnostics
        );
        return Ok(ExitCode::SUCCESS);
    }

    let options = Options {
        cache: std::env::var_os("SRAM_LINT_CACHE").map(PathBuf::from),
        threads: None,
    };
    let report = run_with(&root, &config, &options)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    match format {
        Format::Text => print!("{}", report.render_text()),
        Format::Json => println!("{}", report.render_json()),
        Format::Sarif => print!("{}", sram_lint::sarif::render_sarif(&report)),
    }
    if report.deny_count() > 0 {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

const USAGE: &str = "\
sram-lint — workspace static analysis for the SRAM EDP workspace

USAGE:
    sram-lint [OPTIONS]

OPTIONS:
    --root <PATH>      Tree to lint (default: enclosing cargo workspace)
    --format <FMT>     Output format: text (default), json, or sarif
    --deny-all         Escalate every rule to deny (the CI gate)
    --allow <RULE>     Disable a rule
    --warn <RULE>      Set a rule to warn
    --deny <RULE>      Set a rule to deny
    --bench-self       Time a cold + warm pass, append to BENCH_trajectory.json
    --list-rules       Print the rule registry and exit
    -h, --help         Print this help

ENVIRONMENT:
    SRAM_LINT_CACHE    Incremental cache file (unset = no caching)";
