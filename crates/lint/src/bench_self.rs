//! `--bench-self`: the linter times a full workspace pass over itself.
//!
//! The lint gate runs on every CI build, so its wall time is part of
//! the workspace's perf budget alongside the solver benches. This mode
//! runs one cold pass (empty cache) and one warm pass (cache populated
//! by the cold pass) over the same root, verifies their rendered output
//! is byte-identical — the cache's core soundness claim — and appends a
//! `lint_ms` entry to `BENCH_trajectory.json`, the same bounded v2
//! envelope (`{"schema_version":2,"entries":[…]}`, newest last, at most
//! 100 kept) that `cargo bench -p sram-bench` maintains, so the lint
//! pass shows up in the same perf-trajectory plots.
//!
//! The envelope is spliced with a string-aware brace counter rather
//! than a JSON parser: sram-lint is dependency-free and cannot link the
//! bench crate's `Json` value type, but the envelope's shape is fixed
//! and owned by this workspace.

use crate::config::Config;
use crate::engine::{run_with, Options};
use std::path::Path;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Upper bound on kept history entries — mirrors the bench crate's
/// `MAX_HISTORY` so the two writers enforce the same cap.
const MAX_HISTORY: usize = 100;

/// History file name, relative to the linted root — mirrors the bench
/// crate's `OUTPUT_FILE`.
const OUTPUT_FILE: &str = "BENCH_trajectory.json";

/// Timing captured by one cold/warm benchmark pass.
#[derive(Debug)]
pub struct BenchResult {
    /// Files scanned per pass.
    pub files: usize,
    /// Cold (empty-cache) wall time in milliseconds.
    pub cold_ms: f64,
    /// Warm (fully-cached) wall time in milliseconds.
    pub warm_ms: f64,
    /// Files the warm pass reused from the cache.
    pub skipped: usize,
    /// Diagnostics reported (identical across both passes).
    pub diagnostics: usize,
}

/// Times a cold and a warm lint pass over `root` and appends the result
/// to the trajectory history file in `root`.
///
/// # Errors
///
/// Fails when the two passes disagree (a cache soundness bug), when
/// either pass fails to walk the tree, or when the history file cannot
/// be written.
pub fn run_bench(root: &Path, config: &Config) -> Result<BenchResult, String> {
    let cache = std::env::temp_dir().join(format!("sram-lint-bench-{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&cache);
    let options = Options {
        cache: Some(cache.clone()),
        threads: None,
    };

    let t0 = Instant::now();
    let cold = run_with(root, config, &options).map_err(|e| format!("cold pass: {e}"))?;
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let warm = run_with(root, config, &options).map_err(|e| format!("warm pass: {e}"))?;
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_file(&cache);

    // Compare the rendered diagnostics, not the full report text — the
    // summary line's cache-reuse count differs between the passes by
    // design.
    let rendered = |report: &crate::diag::Report| {
        report
            .diagnostics
            .iter()
            .map(crate::diag::render_diagnostic)
            .collect::<String>()
    };
    if rendered(&cold) != rendered(&warm) {
        return Err(
            "cache soundness violation: warm-cache diagnostics differ from cold run".to_owned(),
        );
    }

    let result = BenchResult {
        files: cold.files_scanned,
        cold_ms,
        warm_ms,
        skipped: warm.files_skipped,
        diagnostics: cold.diagnostics.len(),
    };

    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis());
    let entry = format!(
        "{{\"unix_ms\":{unix_ms},\"lint_ms\":{:.3},\"lint\":{{\"files\":{},\"cold_ms\":{:.3},\
         \"warm_ms\":{:.3},\"skipped\":{},\"diagnostics\":{}}}}}",
        result.cold_ms,
        result.files,
        result.cold_ms,
        result.warm_ms,
        result.skipped,
        result.diagnostics
    );
    let history = root.join(OUTPUT_FILE);
    let existing = std::fs::read_to_string(&history).ok();
    let updated = append_history(existing.as_deref(), &entry);
    std::fs::write(&history, updated).map_err(|e| format!("writing {OUTPUT_FILE}: {e}"))?;
    Ok(result)
}

/// Splices `entry` (a complete JSON object) into the v2 envelope,
/// keeping the newest [`MAX_HISTORY`] entries. A missing, corrupt, or
/// wrong-schema history starts a fresh envelope rather than erroring.
fn append_history(existing: Option<&str>, entry: &str) -> String {
    let mut entries = existing.and_then(parse_envelope).unwrap_or_default();
    entries.push(entry.to_owned());
    if entries.len() > MAX_HISTORY {
        let excess = entries.len() - MAX_HISTORY;
        entries.drain(..excess);
    }
    format!(
        "{{\"schema_version\":2,\"entries\":[{}]}}\n",
        entries.join(",")
    )
}

/// Extracts the entry objects from a v2 envelope as raw JSON strings.
/// Returns `None` when the document is not a v2 envelope.
fn parse_envelope(text: &str) -> Option<Vec<String>> {
    let version_at = text.find("\"schema_version\"")?;
    let after = text[version_at + "\"schema_version\"".len()..]
        .trim_start()
        .strip_prefix(':')?
        .trim_start();
    if !after.starts_with('2') {
        return None;
    }
    let entries_at = text.find("\"entries\"")?;
    let after = text[entries_at + "\"entries\"".len()..]
        .trim_start()
        .strip_prefix(':')?
        .trim_start();
    if !after.starts_with('[') {
        return None;
    }
    // Walk the array with a string-aware depth counter; each 0→1 brace
    // transition starts an entry, each 1→0 transition ends it.
    let mut entries = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    let mut start = None;
    for (i, c) in after.char_indices().skip(1) {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = start.take() {
                        entries.push(after[s..=i].to_owned());
                    }
                }
            }
            ']' if depth == 0 => return Some(entries),
            _ => {}
        }
    }
    // Unterminated array: treat as corrupt.
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_envelope_from_nothing() {
        let out = append_history(None, r#"{"unix_ms":1,"lint_ms":2.0}"#);
        assert_eq!(
            out,
            "{\"schema_version\":2,\"entries\":[{\"unix_ms\":1,\"lint_ms\":2.0}]}\n"
        );
    }

    #[test]
    fn appends_after_existing_entries() {
        let one = append_history(None, r#"{"unix_ms":1}"#);
        let two = append_history(Some(&one), r#"{"unix_ms":2}"#);
        let entries = parse_envelope(&two).expect("valid envelope");
        assert_eq!(entries, vec![r#"{"unix_ms":1}"#, r#"{"unix_ms":2}"#]);
    }

    #[test]
    fn coexists_with_bench_entries_containing_nested_objects() {
        let existing = r#"{"schema_version":2,"entries":[{"unix_ms":1,"sweep":{"points":128,"note":"brace } in string"}}]}"#;
        let out = append_history(Some(existing), r#"{"unix_ms":2,"lint_ms":9.0}"#);
        let entries = parse_envelope(&out).expect("valid envelope");
        assert_eq!(entries.len(), 2);
        assert!(entries[0].contains("brace } in string"));
        assert!(entries[1].contains("lint_ms"));
    }

    #[test]
    fn wrong_schema_or_corrupt_history_starts_fresh() {
        for bad in [
            r#"{"schema_version":1,"entries":[{"unix_ms":1}]}"#,
            "not json at all",
            r#"{"schema_version":2,"entries":[{"unterminated":1}"#,
        ] {
            let out = append_history(Some(bad), r#"{"unix_ms":7}"#);
            let entries = parse_envelope(&out).expect("valid envelope");
            assert_eq!(entries.len(), 1, "history {bad:?} should reset");
        }
    }

    #[test]
    fn history_is_bounded() {
        let mut doc = append_history(None, r#"{"unix_ms":0}"#);
        for n in 1..=(MAX_HISTORY + 5) {
            doc = append_history(Some(&doc), &format!("{{\"unix_ms\":{n}}}"));
        }
        let entries = parse_envelope(&doc).expect("valid envelope");
        assert_eq!(entries.len(), MAX_HISTORY);
        assert_eq!(
            entries.last().map(String::as_str),
            Some(format!("{{\"unix_ms\":{}}}", MAX_HISTORY + 5).as_str())
        );
    }
}
