//! Incremental-cache soundness: a warm-cache run must be byte-identical
//! to a cold run — on the fixture tree, on the real workspace, and on
//! randomly generated trees — and measurably faster where the tree is
//! big enough to time.

use sram_lint::{find_workspace_root, run_with, Config, Options};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sram-lint-rt-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Every diagnostic rendered, without the trailing summary line — the
/// summary's cache-reuse count differs between cold and warm runs by
/// design, the diagnostics must not.
fn diagnostics_text(report: &sram_lint::Report) -> String {
    report
        .diagnostics
        .iter()
        .map(sram_lint::diag::render_diagnostic)
        .collect()
}

/// Runs cold (fresh cache file) then warm (same cache file) and returns
/// both reports.
fn cold_then_warm(root: &Path, cache: &Path) -> (sram_lint::Report, sram_lint::Report) {
    let _ = std::fs::remove_file(cache);
    let options = Options {
        cache: Some(cache.to_path_buf()),
        threads: None,
    };
    let config = Config::deny_all();
    let cold = run_with(root, &config, &options).expect("cold run");
    let warm = run_with(root, &config, &options).expect("warm run");
    (cold, warm)
}

#[test]
fn warm_cache_output_is_byte_identical_on_the_fixture_tree() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws");
    let cache = tmp_dir("fixture").join("cache");
    let (cold, warm) = cold_then_warm(&root, &cache);
    assert_eq!(diagnostics_text(&cold), diagnostics_text(&warm));
    assert_eq!(
        sram_lint::sarif::render_sarif(&cold),
        sram_lint::sarif::render_sarif(&warm),
        "SARIF carries no cache counters, so it must match byte-for-byte"
    );
    assert_eq!(cold.suppressed, warm.suppressed);
    assert_eq!(cold.files_scanned, warm.files_scanned);
    assert_eq!(cold.files_skipped, 0, "cold run must not hit the cache");
    assert_eq!(
        warm.files_skipped, warm.files_scanned,
        "warm run must reuse every file"
    );
    std::fs::remove_dir_all(cache.parent().expect("parent")).ok();
}

#[test]
fn warm_cache_run_is_faster_on_the_real_workspace() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let cache = tmp_dir("speed").join("cache");
    let config = Config::deny_all();

    // Prime the cache, then take best-of-3 for each mode so scheduler
    // noise on a loaded CI box doesn't flake the comparison.
    let warm_options = Options {
        cache: Some(cache.clone()),
        threads: None,
    };
    let cold_options = Options {
        cache: None,
        threads: None,
    };
    let primer = run_with(&root, &config, &warm_options).expect("primer run");
    assert!(primer.files_scanned > 50, "walker lost the workspace");

    let best = |options: &Options| -> (f64, String) {
        let mut best = f64::INFINITY;
        let mut text = String::new();
        for _ in 0..3 {
            let t = Instant::now();
            let report = run_with(&root, &config, options).expect("timed run");
            best = best.min(t.elapsed().as_secs_f64());
            text = diagnostics_text(&report);
        }
        (best, text)
    };
    let (cold_s, cold_text) = best(&cold_options);
    let (warm_s, warm_text) = best(&warm_options);
    assert_eq!(cold_text, warm_text, "cache changed the diagnostics");
    assert!(
        warm_s < cold_s,
        "warm ({:.1} ms) should beat cold ({:.1} ms)",
        warm_s * 1e3,
        cold_s * 1e3
    );
    std::fs::remove_dir_all(cache.parent().expect("parent")).ok();
}

/// Splitmix64 — a tiny deterministic generator for the property test.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Source templates spanning the analysis surface: clean code, per-file
/// violations, suppressions, parameter structs, env reads, probes,
/// metric mentions, and a lex error.
const TEMPLATES: &[&str] = &[
    "/// Clean.\npub fn ok(x: f64) -> f64 {\n    x + 1.0\n}\n",
    "pub fn no_docs() {}\n",
    "/// Panics.\npub fn risky(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    "// sram-lint: allow(no-panic) generated property-test input\n/// Suppressed.\npub fn excused(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    "// sram-lint: allow(no-panic) stale by construction\n/// Stale.\npub fn tidy() -> u32 {\n    7\n}\n",
    "/// Knobs.\npub struct SweepParams {\n    /// Unread.\n    pub orphan: f64,\n}\n",
    "/// Env.\npub fn env() -> Option<String> {\n    std::env::var(\"SRAM_PROP_TEST_VAR\").ok()\n}\n",
    "/// Probe.\npub fn count() {\n    sram_probe::probe_inc!(\"propcrate.events\");\n}\n",
    "/// Unterminated: \"\npub fn broken() {}\n",
];

const CRATES: &[&str] = &["propcrate", "othercrate"];

/// Generates a random tree under `dir`; returns the file count.
fn generate_tree(dir: &Path, rng: &mut Rng) -> usize {
    let n_files = 2 + rng.below(6);
    for i in 0..n_files {
        let crate_name = CRATES[rng.below(CRATES.len())];
        let path = dir.join(format!("crates/{crate_name}/src/f{i}.rs"));
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, TEMPLATES[rng.below(TEMPLATES.len())]).expect("write");
    }
    n_files
}

#[test]
fn property_cold_and_warm_agree_on_generated_trees() {
    let base = tmp_dir("prop");
    let mut rng = Rng(0x5eed_0001);
    for case in 0..25 {
        let root = base.join(format!("case{case}"));
        std::fs::create_dir_all(&root).expect("case dir");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
        let n_files = generate_tree(&root, &mut rng);
        let cache = root.join("lint.cache");
        let (cold, warm) = cold_then_warm(&root, &cache);
        assert_eq!(
            diagnostics_text(&cold),
            diagnostics_text(&warm),
            "case {case} diverged"
        );
        assert_eq!(cold.suppressed, warm.suppressed, "case {case}");
        assert_eq!(cold.files_scanned, n_files, "case {case} lost files");
        assert_eq!(
            warm.files_skipped, warm.files_scanned,
            "case {case} missed the cache"
        );

        // Mutate one file: only it re-analyzes, and a third run matches
        // a fresh cold run of the mutated tree.
        let victim = root.join(format!(
            "crates/{}/src/f0.rs",
            CRATES[rng.below(CRATES.len())]
        ));
        if victim.exists() {
            // The trailing comment guarantees the content (and hash)
            // differs from whatever template the file started as.
            let mutated = format!("{}// mutated\n", TEMPLATES[rng.below(TEMPLATES.len())]);
            std::fs::write(&victim, mutated).expect("mutate");
            let options = Options {
                cache: Some(cache.clone()),
                threads: None,
            };
            let config = Config::deny_all();
            let incremental = run_with(&root, &config, &options).expect("incremental run");
            assert_eq!(
                incremental.files_skipped,
                incremental.files_scanned - 1,
                "case {case}: exactly the mutated file should re-analyze"
            );
            let fresh_cache = root.join("fresh.cache");
            let (fresh, _) = cold_then_warm(&root, &fresh_cache);
            assert_eq!(
                diagnostics_text(&incremental),
                diagnostics_text(&fresh),
                "case {case} incremental run diverged from cold truth"
            );
        }
    }
    std::fs::remove_dir_all(&base).ok();
}
