//! The engine against the intentionally-bad fixture workspace under
//! `fixtures/ws`, plus the self-hosting run on the real workspace.
//!
//! The fixture tree holds exactly one violation site per behavior under
//! test, so every assertion here pins an exact count — a rule that
//! stops firing (or starts double-firing) breaks the build.

use sram_lint::{find_workspace_root, run, Config, Diagnostic, Level, Report};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn fixture_report() -> Report {
    run(&fixture_root(), &Config::deny_all()).expect("fixture tree readable")
}

fn count(report: &Report, rule: &str) -> usize {
    report.diagnostics.iter().filter(|d| d.rule == rule).count()
}

fn in_file<'r>(report: &'r Report, file: &str) -> Vec<&'r Diagnostic> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.file == file)
        .collect()
}

#[test]
fn every_rule_fires_on_the_fixture_tree() {
    let report = fixture_report();
    assert_eq!(report.files_scanned, 19, "fixture tree changed shape");
    assert_eq!(count(&report, "no-panic"), 6);
    assert_eq!(count(&report, "unit-hygiene"), 1);
    assert_eq!(count(&report, "nan-unsafe"), 2);
    assert_eq!(count(&report, "probe-naming"), 8);
    assert_eq!(count(&report, "thread-discipline"), 1);
    assert_eq!(count(&report, "doc-coverage"), 2);
    assert_eq!(count(&report, "registry-sync"), 2);
    assert_eq!(count(&report, "dead-parameter"), 1);
    assert_eq!(count(&report, "config-sync"), 2);
    assert_eq!(count(&report, "probe-drift"), 5);
    assert_eq!(count(&report, "suppression-syntax"), 1);
    assert_eq!(count(&report, "unused-suppression"), 2);
    assert_eq!(count(&report, "parse-error"), 1);
    assert_eq!(report.diagnostics.len(), 34);
    assert!(report.deny_count() > 0, "--deny-all must fail on fixtures");
}

#[test]
fn suppression_is_counted_not_reported() {
    let report = fixture_report();
    assert_eq!(report.suppressed, 2, "no-panic + dead-parameter");
    assert!(
        in_file(&report, "crates/spice/src/suppressed_ok.rs").is_empty(),
        "a justified suppression must silence its finding"
    );
}

#[test]
fn stale_suppression_is_reported_at_its_comment() {
    let report = fixture_report();
    let diags = in_file(&report, "crates/array/src/unused_suppress.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "unused-suppression");
    assert_eq!(diags[0].line, 5, "anchored at the stale comment");
    assert!(
        diags[0].message.contains("no-panic"),
        "{}",
        diags[0].message
    );
}

#[test]
fn clean_file_is_quiet() {
    let report = fixture_report();
    assert!(in_file(&report, "crates/device/src/clean.rs").is_empty());
}

#[test]
fn reasonless_suppression_errors_and_does_not_cover() {
    let report = fixture_report();
    let diags = in_file(&report, "crates/array/src/bad_suppress.rs");
    let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&"suppression-syntax"), "{rules:?}");
    assert!(
        rules.contains(&"no-panic"),
        "an invalid suppression must not silence the violation: {rules:?}"
    );
}

#[test]
fn unit_hygiene_exempts_consts_and_constructors() {
    let report = fixture_report();
    let diags = in_file(&report, "crates/cell/src/bad_units.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("9.5e-5"), "{}", diags[0].message);
}

#[test]
fn probe_collision_is_reported_at_the_second_site() {
    let report = fixture_report();
    let collision = report
        .diagnostics
        .iter()
        .find(|d| d.message.contains("registered as"))
        .expect("cross-kind collision reported");
    assert_eq!(collision.file, "crates/spice/src/bad_probe.rs");
    assert!(
        collision.message.contains("bad_probe.rs:8"),
        "collision must name the first registration site: {}",
        collision.message
    );
}

#[test]
fn registry_sync_reports_both_directions_of_drift() {
    let report = fixture_report();
    let ghost = report
        .diagnostics
        .iter()
        .find(|d| d.message.contains("`ghost`"))
        .expect("unrecorded experiment reported");
    assert_eq!(ghost.file, "crates/bench/src/cli.rs");
    let stale = report
        .diagnostics
        .iter()
        .find(|d| d.message.contains("`ghost-ledger`"))
        .expect("stale ledger row reported");
    assert_eq!(stale.file, "EXPERIMENTS.md");
}

#[test]
fn allow_level_silences_a_rule() {
    let mut config = Config::deny_all();
    assert!(config.set("no-panic", Level::Allow));
    let report = run(&fixture_root(), &config).expect("fixture tree readable");
    assert_eq!(count(&report, "no-panic"), 0);
    assert_eq!(count(&report, "nan-unsafe"), 2, "other rules unaffected");
}

#[test]
fn warn_level_keeps_exit_clean() {
    let mut config = Config::deny_all();
    for rule in [
        "unit-hygiene",
        "no-panic",
        "nan-unsafe",
        "probe-naming",
        "thread-discipline",
        "doc-coverage",
        "registry-sync",
        "dead-parameter",
        "config-sync",
        "probe-drift",
        "suppression-syntax",
        "unused-suppression",
        "parse-error",
    ] {
        assert!(config.set(rule, Level::Warn), "{rule}");
    }
    let report = run(&fixture_root(), &config).expect("fixture tree readable");
    assert_eq!(report.deny_count(), 0);
    assert_eq!(report.warn_count(), 34);
}

#[test]
fn json_rendering_of_the_fixture_report_is_well_formed() {
    let report = fixture_report();
    let json = report.render_json();
    assert!(json.contains("\"files_scanned\": 19"));
    assert!(json.contains("\"counts\": {\"deny\": 34, \"warn\": 0}"));
    // Balanced braces/brackets outside strings — cheap well-formedness
    // check without a JSON parser in the dependency-free workspace.
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escape = false;
    for c in json.chars() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced close in JSON output");
    }
    assert_eq!(depth, 0, "unbalanced JSON output");
    assert!(!in_str, "unterminated string in JSON output");
}

#[test]
fn the_workspace_lints_clean_under_deny_all() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = run(&root, &Config::deny_all()).expect("workspace readable");
    let rendered = report.render_text();
    assert_eq!(
        report.deny_count(),
        0,
        "self-hosting run failed:\n{rendered}"
    );
    assert_eq!(
        report.warn_count(),
        0,
        "self-hosting run warned:\n{rendered}"
    );
    assert!(
        report.files_scanned > 50,
        "walker lost the workspace: only {} files",
        report.files_scanned
    );
}

#[test]
fn doc_coverage_fires_on_the_bare_items_only() {
    let report = fixture_report();
    let diags = in_file(&report, "crates/device/src/bad_docs.rs");
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "doc-coverage"), "{diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("field `high`")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("fn `undocumented`")),
        "{diags:?}"
    );
}

#[test]
fn probe_crate_fixture_is_sanctioned_but_namespaced() {
    let report = fixture_report();
    let diags = in_file(&report, "crates/probe/src/telemetry_ok.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "probe-naming");
    assert!(
        diags[0].message.contains("metrics.wrong_home"),
        "{}",
        diags[0].message
    );
}

#[test]
fn cluster_crate_fixture_is_sanctioned_but_namespaced() {
    // PR 8's satellite: the router crate's detached spawns are exempt
    // from thread-discipline, but its metrics must live under
    // `cluster.` (the wrong-prefix registration). PR 9 adds the
    // unasserted `cluster.trace.` stitching metric: probe-drift must
    // see the new trace namespace, not just the PR 8 families.
    let report = fixture_report();
    let diags = in_file(&report, "crates/cluster/src/bad_cluster.rs");
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!(diags[0].rule, "probe-naming");
    assert!(
        diags[0].message.contains("node.evicted_fixture"),
        "{}",
        diags[0].message
    );
    assert_eq!(diags[1].rule, "probe-drift");
    assert!(
        diags[1].message.contains("cluster.trace.stitched_fixture"),
        "{}",
        diags[1].message
    );
}

#[test]
fn dead_parameter_fires_on_the_unread_field_only() {
    let report = fixture_report();
    let diags = in_file(&report, "crates/device/src/bad_dead_param.rs");
    let dead: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "dead-parameter")
        .collect();
    assert_eq!(dead.len(), 1, "{diags:?}");
    assert!(
        dead[0].message.contains("TuningParams.dead_knob"),
        "{}",
        dead[0].message
    );
    // The read field and the suppressed field stay quiet.
    assert!(
        !diags.iter().any(|d| d.message.contains("live_knob")),
        "{diags:?}"
    );
    assert!(
        !diags.iter().any(|d| d.message.contains("shadow_knob")),
        "{diags:?}"
    );
}

#[test]
fn stale_dead_parameter_suppression_is_reported() {
    // Satellite of the cross-file analysis: graph-rule findings flow
    // through the same suppression accounting as per-file rules, so a
    // `dead-parameter` allow on a field that IS read goes stale.
    let report = fixture_report();
    let diags = in_file(&report, "crates/device/src/bad_dead_param.rs");
    let stale = diags
        .iter()
        .find(|d| d.rule == "unused-suppression")
        .expect("stale dead-parameter suppression reported");
    assert!(
        stale.message.contains("dead-parameter"),
        "{}",
        stale.message
    );
    assert_eq!(stale.line, 8, "anchored at the stale allow comment");
}

#[test]
fn config_sync_reports_both_directions_of_drift() {
    let report = fixture_report();
    let undocumented = report
        .diagnostics
        .iter()
        .find(|d| d.message.contains("SRAM_FIXTURE_UNDOCUMENTED"))
        .expect("undocumented env read reported");
    assert_eq!(undocumented.rule, "config-sync");
    assert_eq!(undocumented.file, "crates/serve/src/bad_config.rs");
    let ghost = report
        .diagnostics
        .iter()
        .find(|d| d.message.contains("SRAM_FIXTURE_GHOST"))
        .expect("ghost doc entry reported");
    assert_eq!(ghost.rule, "config-sync");
    assert_eq!(ghost.file, "README.md");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("SRAM_FIXTURE_DOCUMENTED ")),
        "the documented-and-read var must be quiet"
    );
}

#[test]
fn probe_drift_reports_all_four_drift_shapes() {
    let report = fixture_report();
    let drift: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "probe-drift")
        .collect();
    // Four shapes in the spice crate plus the never-asserted
    // cluster.trace fixture metric.
    assert_eq!(drift.len(), 5, "{drift:?}");
    let unlisted = drift
        .iter()
        .find(|d| d.message.contains("spice.drifted_metric"))
        .expect("unlisted metric reported");
    assert_eq!(unlisted.file, "crates/spice/src/bad_probe_drift.rs");
    let unasserted = drift
        .iter()
        .find(|d| d.message.contains("spice.unasserted_metric"))
        .expect("unasserted metric reported");
    assert!(unasserted.message.contains("never asserted"));
    let mismatch = drift
        .iter()
        .find(|d| d.message.contains("spice.mismatched_kind"))
        .expect("kind mismatch reported");
    assert_eq!(mismatch.file, "PROBES.md");
    assert!(mismatch.message.contains("as a gauge"));
    let ghost = drift
        .iter()
        .find(|d| d.message.contains("spice.ghost_metric"))
        .expect("stale row reported");
    assert_eq!(ghost.file, "PROBES.md");
}

#[test]
fn sarif_rendering_of_the_fixture_report_is_well_formed() {
    let report = fixture_report();
    let sarif = sram_lint::sarif::render_sarif(&report);
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"ruleId\": \"dead-parameter\""));
    assert!(sarif.contains("\"uri\": \"PROBES.md\""));
    // One result per diagnostic.
    assert_eq!(
        sarif.matches("\"ruleId\":").count(),
        report.diagnostics.len()
    );
}
