//! Lexer property tests (vendored proptest: deterministic cases, no
//! shrinking).
//!
//! The lexer underpins every rule, so these pin its two load-bearing
//! guarantees: it is *total* (arbitrary input never panics and always
//! yields in-bounds spans) and *classification-faithful* (a well-formed
//! token stream lexes back to exactly the tokens that produced it, and
//! code-looking text inside strings and comments stays invisible).

use proptest::collection::vec;
use proptest::prelude::*;
use sram_lint::lexer::{lex, str_value, Token, TokenKind};

/// Renders one token from a numeric spec: `(expected kind, text)`.
/// Deterministic so failures reproduce from the printed specs alone.
fn render(spec: u32) -> (TokenKind, String) {
    let payload = spec / 7;
    match spec % 7 {
        0 => (TokenKind::Ident, format!("ident_{payload}")),
        1 => (TokenKind::Int, format!("{payload}")),
        2 => (
            TokenKind::Float,
            format!("{}.{}e-{}", payload % 100, payload % 10, payload % 15),
        ),
        3 => (TokenKind::Str, format!("\"s{payload}\"")),
        4 => (TokenKind::LineComment, format!("// comment {payload}")),
        5 => (TokenKind::BlockComment, format!("/* block {payload} */")),
        _ => {
            let punct = match payload % 5 {
                0 => "+",
                1 => ";",
                2 => "(",
                3 => ")",
                _ => ",",
            };
            (TokenKind::Punct, punct.to_owned())
        }
    }
}

/// `(line, col)` pairs must advance in document order.
fn positions_advance(tokens: &[Token]) -> bool {
    tokens
        .windows(2)
        .all(|w| (w[0].line, w[0].col) < (w[1].line, w[1].col))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A generated token stream (one token per line, so line comments
    /// terminate) lexes back to exactly the pieces that produced it.
    #[test]
    fn well_formed_streams_round_trip(specs in vec(0u32..u32::MAX, 1..24)) {
        let pieces: Vec<(TokenKind, String)> = specs.iter().map(|&s| render(s)).collect();
        let src: String = pieces
            .iter()
            .map(|(_, text)| text.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        let (tokens, errors) = lex(&src);
        prop_assert!(errors.is_empty(), "{errors:?}");
        let got: Vec<(TokenKind, String)> =
            tokens.iter().map(|t| (t.kind, t.text.clone())).collect();
        prop_assert_eq!(&got, &pieces);
        // One piece per line, each starting at column 1.
        for (i, t) in tokens.iter().enumerate() {
            prop_assert_eq!(t.line as usize, i + 1);
            prop_assert_eq!(t.col, 1);
        }
    }

    /// Arbitrary input never panics, and every token it yields carries
    /// an in-bounds span whose text matches the source at that span.
    #[test]
    fn lexing_is_total_with_faithful_spans(codes in vec(0u32..0x250, 0..120)) {
        // 0..0x250 covers ASCII, Latin-1, and some two-byte UTF-8 so
        // char-vs-byte column accounting gets exercised.
        let src: String = codes.iter().filter_map(|&c| char::from_u32(c)).collect();
        let (tokens, _errors) = lex(&src);
        let lines: Vec<&str> = src.lines().collect();
        prop_assert!(positions_advance(&tokens), "spans out of order");
        for t in &tokens {
            prop_assert!(t.line >= 1 && t.col >= 1, "zero-based span {t:?}");
            prop_assert!(!t.text.is_empty(), "empty token {t:?}");
            let line = lines.get(t.line as usize - 1).copied().unwrap_or("");
            let at_col: String = line.chars().skip(t.col as usize - 1).collect();
            let first_line = t.text.lines().next().unwrap_or("");
            prop_assert!(
                at_col.starts_with(first_line),
                "token {t:?} does not match source line {line:?}"
            );
        }
    }

    /// Lexing is deterministic: the same source yields the same stream.
    #[test]
    fn lexing_is_deterministic(codes in vec(0u32..0x80, 0..80)) {
        let src: String = codes.iter().filter_map(|&c| char::from_u32(c)).collect();
        prop_assert_eq!(lex(&src), lex(&src));
    }

    /// `str_value` recovers the body of every string flavor the rules
    /// read names from.
    #[test]
    fn str_value_recovers_simple_bodies(payload in 0u32..u32::MAX, flavor in 0u8..4) {
        let body = format!("spice.metric_{payload}");
        let literal = match flavor {
            0 => format!("\"{body}\""),
            1 => format!("r\"{body}\""),
            2 => format!("r#\"{body}\"#"),
            _ => format!("b\"{body}\""),
        };
        let (tokens, errors) = lex(&literal);
        prop_assert!(errors.is_empty(), "{errors:?}");
        prop_assert_eq!(tokens.len(), 1);
        prop_assert_eq!(tokens[0].kind, TokenKind::Str);
        prop_assert_eq!(str_value(&tokens[0].text), Some(body.as_str()));
    }

    /// Code-looking text inside strings and comments never surfaces as
    /// identifier tokens — the property the whole rule set leans on.
    #[test]
    fn strings_and_comments_hide_code(payload in 0u32..u32::MAX, which in 0u8..4) {
        let src = match which {
            0 => format!("let s = \"x{payload}.unwrap()\";"),
            1 => format!("// .unwrap() number {payload}\nlet x = 1;"),
            2 => format!("/* unwrap {payload} */ let x = 1;"),
            _ => format!("let c = r#\"panic!({payload})\"#;"),
        };
        let (tokens, errors) = lex(&src);
        prop_assert!(errors.is_empty(), "{errors:?}");
        prop_assert!(
            tokens
                .iter()
                .all(|t| t.kind != TokenKind::Ident
                    || (t.text != "unwrap" && t.text != "panic")),
            "hidden code leaked into the identifier stream: {tokens:?}"
        );
    }
}
