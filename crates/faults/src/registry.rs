//! The process-wide fault registry: a plan is installed once, and
//! hardened call sites ask `should_fire("point")` / `maybe_sleep("point")`
//! on their hot paths.
//!
//! Determinism contract: every point owns an independent PRNG stream
//! seeded `plan.seed ^ fnv1a64(point)`, so the k-th draw at a point gives
//! the same verdict in every run of the same plan — regardless of thread
//! interleaving, batching, or how many draws other points make. The
//! `faults.injected` probe counter and the per-point fire counts are the
//! replay invariants the chaos-soak experiment asserts on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::plan::FaultPlan;
use crate::{fnv1a64, FaultError, SRAM_FAULTS_ENV};

struct PointState {
    probability: f64,
    latency: Duration,
    max_fires: Option<u64>,
    fires: u64,
    draws: u64,
    rng: StdRng,
}

impl PointState {
    /// One draw: advances the stream and returns the injected latency if
    /// the point fired. A point past its `max_fires` cap stops drawing
    /// entirely, so capped rules cost nothing once exhausted.
    fn decide(&mut self) -> Option<Duration> {
        if let Some(cap) = self.max_fires {
            if self.fires >= cap {
                return None;
            }
        }
        self.draws += 1;
        let fired = self.rng.random::<f64>() < self.probability;
        if fired {
            self.fires += 1;
            Some(self.latency)
        } else {
            None
        }
    }
}

/// A non-global set of armed injection points. The process-wide registry
/// wraps one of these behind a mutex; tests can also drive an `ActiveSet`
/// directly to assert on determinism without touching global state.
pub struct ActiveSet {
    points: HashMap<String, PointState>,
}

impl ActiveSet {
    /// Arms every rule in the plan, deriving each point's PRNG stream
    /// from the plan seed and the point name.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        let mut points = HashMap::new();
        for rule in &plan.rules {
            points.insert(
                rule.point.clone(),
                PointState {
                    probability: rule.probability,
                    latency: Duration::from_millis(rule.latency_ms),
                    max_fires: rule.max_fires,
                    fires: 0,
                    draws: 0,
                    rng: StdRng::seed_from_u64(plan.seed ^ fnv1a64(&rule.point)),
                },
            );
        }
        Self { points }
    }

    /// One draw at `point`: `Some(latency)` if it fired. Points the plan
    /// does not mention never fire.
    pub fn decide(&mut self, point: &str) -> Option<Duration> {
        self.points.get_mut(point).and_then(PointState::decide)
    }

    /// Draws at `point` and reports whether it fired (latency ignored).
    pub fn should_fire(&mut self, point: &str) -> bool {
        self.decide(point).is_some()
    }

    /// Per-point `(name, fires)` pairs, sorted by name so two runs of the
    /// same plan compare equal.
    #[must_use]
    pub fn counts(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .points
            .iter()
            .map(|(name, state)| (name.clone(), state.fires))
            .collect();
        out.sort();
        out
    }

    /// Total fires across all points since this set was armed.
    #[must_use]
    pub fn injected_total(&self) -> u64 {
        self.points.values().map(|state| state.fires).sum()
    }

    /// Total draws across all points (fires plus no-fires).
    #[must_use]
    pub fn draw_total(&self) -> u64 {
        self.points.values().map(|state| state.draws).sum()
    }
}

/// Fast path: is any plan installed? A single relaxed load, so hardened
/// call sites stay effectively free when injection is off.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static Mutex<Option<ActiveSet>> {
    static SLOT: OnceLock<Mutex<Option<ActiveSet>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn lock() -> MutexGuard<'static, Option<ActiveSet>> {
    // A panic while holding this lock (there is no panicking code inside
    // the critical sections, but the serve worker intentionally panics
    // nearby) must not wedge fault accounting for the rest of the process.
    slot().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `plan`, replacing any previous one and resetting all counts
/// and PRNG streams. Process-wide: affects every hardened call site.
pub fn install(plan: &FaultPlan) {
    let mut guard = lock();
    *guard = Some(ActiveSet::new(plan));
    ENABLED.store(true, Ordering::Release);
}

/// Disarms injection; subsequent draws are free and never fire.
pub fn uninstall() {
    let mut guard = lock();
    ENABLED.store(false, Ordering::Release);
    *guard = None;
}

/// Installs the plan named by `SRAM_FAULTS` (a path to a plan JSON file),
/// if the variable is set. Returns `Ok(true)` when a plan was installed.
///
/// # Errors
///
/// Propagates [`FaultError`] from reading or parsing the plan file.
pub fn install_from_env() -> Result<bool, FaultError> {
    match std::env::var(SRAM_FAULTS_ENV) {
        Ok(path) if !path.is_empty() => {
            let plan = FaultPlan::from_file(std::path::Path::new(&path))?;
            install(&plan);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Whether a plan is currently installed (single relaxed atomic load).
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// One draw at `point` against the installed plan. Fires bump the
/// `faults.injected` probe counter. Always `false` with no plan installed.
pub fn should_fire(point: &str) -> bool {
    if !enabled() {
        return false;
    }
    let fired = lock().as_mut().is_some_and(|set| set.should_fire(point));
    if fired {
        sram_probe::probe_inc!("faults.injected");
    }
    fired
}

/// One draw at a latency point: if it fires, sleeps the rule's
/// `latency_ms` (with the registry lock *released*) and returns `true`.
pub fn maybe_sleep(point: &str) -> bool {
    if !enabled() {
        return false;
    }
    let latency = lock().as_mut().and_then(|set| set.decide(point));
    match latency {
        Some(pause) => {
            sram_probe::probe_inc!("faults.injected");
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
            true
        }
        None => false,
    }
}

/// Per-point fire counts of the installed plan (empty when disarmed).
#[must_use]
pub fn counts() -> Vec<(String, u64)> {
    lock().as_ref().map(ActiveSet::counts).unwrap_or_default()
}

/// Total fires of the installed plan since it was armed.
#[must_use]
pub fn injected_total() -> u64 {
    lock().as_ref().map(ActiveSet::injected_total).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultRule;

    fn replay_plan() -> FaultPlan {
        FaultPlan::new(0xC0FFEE)
            .rule(FaultRule::sometimes("spice.nonconverge", 0.37))
            .rule(FaultRule::sometimes("cell.slow", 0.11).with_latency_ms(5))
    }

    #[test]
    fn same_plan_same_seed_replays_bit_identically() {
        let plan = replay_plan();
        let mut first = ActiveSet::new(&plan);
        let mut second = ActiveSet::new(&plan);
        let a: Vec<bool> = (0..10_000)
            .map(|_| first.should_fire("spice.nonconverge"))
            .collect();
        let b: Vec<bool> = (0..10_000)
            .map(|_| second.should_fire("spice.nonconverge"))
            .collect();
        assert_eq!(a, b, "fire sequence must depend only on the plan");
        assert!(a.iter().any(|f| *f) && a.iter().any(|f| !*f));
        let rate = a.iter().filter(|f| **f).count() as f64 / a.len() as f64;
        assert!((rate - 0.37).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn per_point_streams_are_independent_of_interleaving() {
        let plan = replay_plan();
        // Run A: strictly alternate draws between the two points.
        let mut alternating = ActiveSet::new(&plan);
        let mut a = Vec::new();
        for _ in 0..500 {
            a.push(alternating.should_fire("spice.nonconverge"));
            let _ = alternating.should_fire("cell.slow");
        }
        // Run B: different global order — all cell.slow draws up front.
        let mut batched = ActiveSet::new(&plan);
        for _ in 0..500 {
            let _ = batched.should_fire("cell.slow");
        }
        let b: Vec<bool> = (0..500)
            .map(|_| batched.should_fire("spice.nonconverge"))
            .collect();
        assert_eq!(a, b, "a point's stream must not see other points' draws");
    }

    #[test]
    fn max_fires_caps_the_count_and_stops_drawing() {
        let plan = FaultPlan::new(1).rule(FaultRule::always("serve.worker_panic", 2));
        let mut set = ActiveSet::new(&plan);
        let fired: Vec<bool> = (0..10)
            .map(|_| set.should_fire("serve.worker_panic"))
            .collect();
        assert_eq!(fired.iter().filter(|f| **f).count(), 2);
        assert_eq!(&fired[..2], &[true, true], "p=1 fires immediately");
        assert_eq!(set.injected_total(), 2);
        assert_eq!(set.counts(), vec![("serve.worker_panic".to_string(), 2)]);
        assert_eq!(set.draw_total(), 2, "exhausted points stop drawing");
    }

    #[test]
    fn decide_returns_the_rule_latency() {
        let plan = FaultPlan::new(9).rule(FaultRule::always("cell.slow", 1).with_latency_ms(25));
        let mut set = ActiveSet::new(&plan);
        assert_eq!(set.decide("cell.slow"), Some(Duration::from_millis(25)));
        assert_eq!(set.decide("cell.slow"), None, "cap exhausted");
        assert_eq!(set.decide("unplanned.point"), None);
    }

    #[test]
    fn unknown_points_never_fire_and_cost_no_draws() {
        let plan = replay_plan();
        let mut set = ActiveSet::new(&plan);
        assert!(!set.should_fire("serve.conn_drop"));
        assert_eq!(set.draw_total(), 0);
    }
}
