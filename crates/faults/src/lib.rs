//! # sram-faults — deterministic fault injection and cooperative cancellation
//!
//! Std-only, like the rest of the workspace. Two halves:
//!
//! 1. **Fault injection.** A [`FaultPlan`] names injection points
//!    (`spice.nonconverge`, `cell.characterize_nan`, `cell.slow`,
//!    `serve.worker_panic`, `serve.conn_drop`, `serve.node_kill`),
//!    each with a firing
//!    probability, an optional injected latency, and an optional cap on
//!    total fires. Installing a plan ([`install`] / `SRAM_FAULTS=plan.json`
//!    via [`install_from_env`]) arms the process-wide registry; hardened
//!    call sites then ask [`should_fire`] / [`maybe_sleep`] at their named
//!    point. Every point draws from its own PRNG stream seeded
//!    `plan.seed ^ fnv1a64(point)`, so the fire/no-fire sequence at a point
//!    depends only on the plan — never on thread interleaving or on how
//!    draws at *other* points are ordered — and runs replay bit-identically.
//!    With no plan installed, the fast path is a single relaxed atomic load.
//!
//! 2. **Cancellation.** A [`CancelToken`] carries a deadline and a shared
//!    shutdown flag. It is plumbed from the serve layer through
//!    `optimize_with_cell` into the exhaustive-search slice loop and the
//!    Monte Carlo sample loop, which poll it cooperatively — an expired
//!    deadline aborts a sweep mid-flight with a typed error instead of
//!    running to completion.
//!
//! The crate sits below `serve`, `core`, `cell`, and `spice` in the
//! dependency graph (it depends only on `sram-probe` and the vendored
//! `rand`), so every layer can share the same token and registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod plan;
mod registry;

pub use cancel::{CancelReason, CancelToken};
pub use plan::{FaultError, FaultPlan, FaultRule};
pub use registry::{
    counts, enabled, injected_total, install, install_from_env, maybe_sleep, should_fire,
    uninstall, ActiveSet,
};

/// Environment variable naming a fault-plan JSON file; read by
/// [`install_from_env`].
pub const SRAM_FAULTS_ENV: &str = "SRAM_FAULTS";

/// FNV-1a 64-bit hash — the same content-addressing primitive the serve
/// cache uses. Exposed so tests can predict per-point stream seeds.
#[must_use]
pub fn fnv1a64(s: &str) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = BASIS;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}
