//! Cooperative cancellation: a cloneable token carrying a deadline and a
//! shared shutdown flag, polled at slice/sample granularity by the
//! long-running loops (exhaustive search, Monte Carlo) so a sweep stops
//! within one slice of the deadline instead of running to completion.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a token reports cancelled. Deadline wins ties: a request that is
/// both expired and shutting down is the *client's* timeout first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The token's deadline passed.
    Deadline,
    /// The shared shutdown flag was raised.
    Shutdown,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Deadline => write!(f, "deadline exceeded"),
            Self::Shutdown => write!(f, "shutting down"),
        }
    }
}

/// A cooperative cancellation token. Cheap to clone (the flag is shared);
/// cheap to poll (an `Instant` compare and a relaxed load). Work that
/// holds one checks it at natural pause points — per search slice, per
/// Monte Carlo sample — and unwinds with a typed error when it reports
/// cancelled.
#[derive(Debug, Clone)]
pub struct CancelToken {
    deadline: Option<Instant>,
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A token that never cancels (unless [`CancelToken::cancel`] is
    /// called on it or a clone).
    #[must_use]
    pub fn never() -> Self {
        Self {
            deadline: None,
            flag: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A token that cancels once `deadline` passes.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            deadline: Some(deadline),
            flag: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A token observing an external shutdown flag (the serve layer links
    /// every in-flight job to the server's flag) plus an optional
    /// per-request deadline.
    #[must_use]
    pub fn linked(deadline: Option<Instant>, flag: Arc<AtomicBool>) -> Self {
        Self { deadline, flag }
    }

    /// The deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Polls the token. Deadline is checked before the flag so an expired
    /// request reports [`CancelReason::Deadline`] even during shutdown.
    #[must_use]
    pub fn cancelled(&self) -> Option<CancelReason> {
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(CancelReason::Deadline);
        }
        if self.flag.load(Ordering::Acquire) {
            return Some(CancelReason::Shutdown);
        }
        None
    }

    /// `true` if the token reports any cancellation.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled().is_some()
    }

    /// Raises the shared flag: every clone of this token reports
    /// [`CancelReason::Shutdown`] from now on.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Raises the shared flag after `delay`, from a detached timer thread.
    /// Test/chaos helper for exercising mid-sweep cancellation.
    pub fn cancel_after(&self, delay: Duration) {
        let flag = Arc::clone(&self.flag);
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            flag.store(true, Ordering::Release);
        });
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::never()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_is_never_cancelled_until_cancel() {
        let token = CancelToken::never();
        assert_eq!(token.cancelled(), None);
        let clone = token.clone();
        token.cancel();
        assert_eq!(clone.cancelled(), Some(CancelReason::Shutdown));
    }

    #[test]
    fn expired_deadline_reports_deadline_even_when_shut_down() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        token.cancel();
        assert_eq!(
            token.cancelled(),
            Some(CancelReason::Deadline),
            "deadline outranks shutdown"
        );
    }

    #[test]
    fn future_deadline_is_not_yet_cancelled() {
        let token = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(token.cancelled(), None);
    }

    #[test]
    fn cancel_after_fires_from_the_timer_thread() {
        let token = CancelToken::never();
        token.cancel_after(Duration::from_millis(10));
        let waited = Instant::now();
        while token.cancelled().is_none() {
            assert!(
                waited.elapsed() < Duration::from_secs(5),
                "timer thread never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(token.cancelled(), Some(CancelReason::Shutdown));
    }
}
