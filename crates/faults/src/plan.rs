//! Fault plans: which injection points can fire, with what probability,
//! latency, and cap — plus a dependency-free JSON reader so plans load
//! from `SRAM_FAULTS=plan.json` without pulling the serve codec down the
//! dependency graph.

use std::fmt;
use std::fs;
use std::path::Path;

/// One injection rule: a named point, a firing probability, an optional
/// injected latency, and an optional hard cap on total fires.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Injection-point name, e.g. `spice.nonconverge`.
    pub point: String,
    /// Probability in `[0, 1]` that a single draw at this point fires.
    pub probability: f64,
    /// Latency injected when a latency point (e.g. `cell.slow`) fires.
    pub latency_ms: u64,
    /// Hard cap on total fires at this point; `None` means unbounded.
    pub max_fires: Option<u64>,
}

impl FaultRule {
    /// A rule that fires every draw until `max_fires` is exhausted — the
    /// workhorse for deterministic chaos plans, since the fire count then
    /// never depends on how many draws each thread happens to make.
    #[must_use]
    pub fn always(point: &str, max_fires: u64) -> Self {
        Self {
            point: point.to_string(),
            probability: 1.0,
            latency_ms: 0,
            max_fires: Some(max_fires),
        }
    }

    /// A rule that fires each draw independently with `probability`.
    #[must_use]
    pub fn sometimes(point: &str, probability: f64) -> Self {
        Self {
            point: point.to_string(),
            probability,
            latency_ms: 0,
            max_fires: None,
        }
    }

    /// Attaches an injected latency to the rule (milliseconds).
    #[must_use]
    pub fn with_latency_ms(mut self, latency_ms: u64) -> Self {
        self.latency_ms = latency_ms;
        self
    }
}

/// A deterministic, seeded set of fault rules. Install with
/// [`crate::install`] or load from a file via [`FaultPlan::from_file`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Master seed; each point derives its own stream as
    /// `seed ^ fnv1a64(point)`.
    pub seed: u64,
    /// The rules, one per injection point.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given master seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
        }
    }

    /// Appends a rule (builder style).
    #[must_use]
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Parses a plan from its JSON form:
    ///
    /// ```json
    /// {"seed": 7, "rules": [
    ///   {"point": "spice.nonconverge", "probability": 1.0, "max_fires": 2},
    ///   {"point": "cell.slow", "probability": 0.5, "latency_ms": 25}
    /// ]}
    /// ```
    ///
    /// `p` is accepted as a shorthand for `probability` (default 1.0);
    /// `latency_ms` defaults to 0 and `max_fires` to unbounded.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Parse`] on malformed JSON and
    /// [`FaultError::Invalid`] on a well-formed plan that is semantically
    /// bad (empty point name, probability outside `[0, 1]`).
    pub fn parse(json: &str) -> Result<Self, FaultError> {
        let value = Parser::new(json).document()?;
        let top = value.as_object("plan")?;
        let mut plan = FaultPlan::default();
        for (key, val) in top {
            match key.as_str() {
                "seed" => plan.seed = val.as_u64("seed")?,
                "rules" => {
                    for entry in val.as_array("rules")? {
                        plan.rules.push(rule_from(entry)?);
                    }
                }
                other => {
                    return Err(FaultError::Invalid {
                        message: format!("unknown plan key `{other}`"),
                    })
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Reads and parses a plan file (see [`FaultPlan::parse`]).
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Io`] if the file is unreadable, otherwise
    /// whatever [`FaultPlan::parse`] returns.
    pub fn from_file(path: &Path) -> Result<Self, FaultError> {
        let text = fs::read_to_string(path).map_err(|e| FaultError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::parse(&text)
    }

    fn validate(&self) -> Result<(), FaultError> {
        for rule in &self.rules {
            if rule.point.is_empty() {
                return Err(FaultError::Invalid {
                    message: "rule with empty point name".to_string(),
                });
            }
            if !(0.0..=1.0).contains(&rule.probability) {
                return Err(FaultError::Invalid {
                    message: format!(
                        "rule `{}`: probability {} outside [0, 1]",
                        rule.point, rule.probability
                    ),
                });
            }
        }
        Ok(())
    }
}

fn rule_from(value: &Value) -> Result<FaultRule, FaultError> {
    let fields = value.as_object("rule")?;
    let mut rule = FaultRule {
        point: String::new(),
        probability: 1.0,
        latency_ms: 0,
        max_fires: None,
    };
    for (key, val) in fields {
        match key.as_str() {
            "point" => rule.point = val.as_str("point")?.to_string(),
            "probability" | "p" => rule.probability = val.as_f64("probability")?,
            "latency_ms" => rule.latency_ms = val.as_u64("latency_ms")?,
            "max_fires" => rule.max_fires = Some(val.as_u64("max_fires")?),
            other => {
                return Err(FaultError::Invalid {
                    message: format!("unknown rule key `{other}`"),
                })
            }
        }
    }
    Ok(rule)
}

/// Errors loading or validating a fault plan.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// The plan file could not be read.
    Io {
        /// Path we tried to read.
        path: String,
        /// Underlying I/O error text.
        message: String,
    },
    /// The plan text is not well-formed JSON (of the subset we accept).
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The plan parsed but is semantically invalid.
    Invalid {
        /// What is wrong with it.
        message: String,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, message } => write!(f, "fault plan `{path}`: {message}"),
            Self::Parse { offset, message } => {
                write!(f, "fault plan parse error at byte {offset}: {message}")
            }
            Self::Invalid { message } => write!(f, "invalid fault plan: {message}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// Minimal JSON value tree — just enough for fault plans. The serve crate
/// has a full codec, but it sits *above* this crate in the dependency
/// graph, so plans get their own ~150-line reader.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn as_object(&self, what: &str) -> Result<&[(String, Value)], FaultError> {
        match self {
            Self::Obj(fields) => Ok(fields),
            _ => Err(FaultError::Invalid {
                message: format!("{what} must be a JSON object"),
            }),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Value], FaultError> {
        match self {
            Self::Arr(items) => Ok(items),
            _ => Err(FaultError::Invalid {
                message: format!("{what} must be a JSON array"),
            }),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, FaultError> {
        match self {
            Self::Str(s) => Ok(s),
            _ => Err(FaultError::Invalid {
                message: format!("{what} must be a JSON string"),
            }),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, FaultError> {
        match self {
            Self::Num(n) => Ok(*n),
            _ => Err(FaultError::Invalid {
                message: format!("{what} must be a JSON number"),
            }),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, FaultError> {
        let n = self.as_f64(what)?;
        if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Ok(n as u64)
        } else {
            Err(FaultError::Invalid {
                message: format!("{what} must be a non-negative integer, got {n}"),
            })
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn document(&mut self) -> Result<Value, FaultError> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing content after document"));
        }
        Ok(value)
    }

    fn err(&self, message: &str) -> FaultError {
        FaultError::Parse {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), FaultError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Value, FaultError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, FaultError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect_byte(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, FaultError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, FaultError> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let start = self.pos;
        while let Some(&c) = self.bytes.get(self.pos) {
            if c == b'\\' {
                return Err(self.err("escapes are not supported in plan strings"));
            }
            if c == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<Value, FaultError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_of_a_full_plan() {
        let plan = FaultPlan::parse(
            r#"{"seed": 42, "rules": [
                {"point": "spice.nonconverge", "probability": 1.0, "max_fires": 2},
                {"point": "cell.slow", "p": 0.5, "latency_ms": 25}
            ]}"#,
        )
        .expect("valid plan parses");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0], FaultRule::always("spice.nonconverge", 2));
        assert_eq!(
            plan.rules[1],
            FaultRule::sometimes("cell.slow", 0.5).with_latency_ms(25)
        );
    }

    #[test]
    fn defaults_apply_when_fields_are_omitted() {
        let plan = FaultPlan::parse(r#"{"rules": [{"point": "serve.conn_drop"}]}"#)
            .expect("minimal plan parses");
        assert_eq!(plan.seed, 0);
        let rule = &plan.rules[0];
        assert_eq!(rule.probability, 1.0);
        assert_eq!(rule.latency_ms, 0);
        assert_eq!(rule.max_fires, None);
    }

    #[test]
    fn semantic_validation_rejects_bad_probability_and_unknown_keys() {
        let out_of_range =
            FaultPlan::parse(r#"{"rules": [{"point": "x", "probability": 1.5}]}"#).unwrap_err();
        assert!(matches!(out_of_range, FaultError::Invalid { .. }));

        let unknown = FaultPlan::parse(r#"{"sede": 3}"#).unwrap_err();
        assert!(matches!(unknown, FaultError::Invalid { .. }));
    }

    #[test]
    fn parse_errors_carry_an_offset() {
        let truncated = FaultPlan::parse(r#"{"seed": 1, "rules": ["#).unwrap_err();
        match truncated {
            FaultError::Parse { offset, .. } => assert!(offset > 0),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(FaultPlan::parse("").is_err());
        assert!(
            FaultPlan::parse("[1, 2]").is_err(),
            "top level must be an object"
        );
    }

    #[test]
    fn from_file_reports_missing_files_as_io_errors() {
        let err = FaultPlan::from_file(Path::new("/nonexistent/plan.json")).unwrap_err();
        assert!(matches!(err, FaultError::Io { .. }));
    }
}
