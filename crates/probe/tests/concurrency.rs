//! Counters and histograms must not lose updates under contention.

use sram_probe::{probe_inc, probe_record, Level};

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn concurrent_increments_are_lossless() {
    sram_probe::set_level(Level::Summary);

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for i in 0..PER_THREAD {
                    probe_inc!("conc.counter");
                    probe_record!("conc.hist", i);
                }
            });
        }
    });

    let snap = sram_probe::snapshot();
    let expected = THREADS as u64 * PER_THREAD;
    assert_eq!(snap.counters["conc.counter"], expected);

    let hist = &snap.histograms["conc.hist"];
    assert_eq!(hist.count, expected);
    // Each thread records 0..PER_THREAD, so the sum is THREADS * (sum 0..PER_THREAD).
    assert_eq!(
        hist.sum,
        THREADS as u64 * (PER_THREAD * (PER_THREAD - 1) / 2)
    );
    // Bucket totals must add back up to the sample count.
    assert_eq!(hist.buckets.iter().map(|&(_, c)| c).sum::<u64>(), expected);
}

#[test]
fn concurrent_registration_yields_one_metric() {
    sram_probe::set_level(Level::Summary);

    let handles: Vec<_> = std::thread::scope(|scope| {
        (0..THREADS)
            .map(|_| scope.spawn(|| sram_probe::counter("conc.register") as *const _ as usize))
            .map(|h| h.join().expect("registration thread panicked"))
            .collect()
    });
    assert!(handles.windows(2).all(|w| w[0] == w[1]));
}
