//! Snapshot / diff / reset lifecycle, and the off-level no-op path.
//!
//! One `#[test]` on purpose: the steps share the process-global
//! registry and level, so their order matters.

use sram_probe::{probe_gauge, probe_inc, probe_span, Level};

#[test]
fn snapshot_diff_reset_lifecycle() {
    // Level off: macros must record nothing, spans must be no-ops.
    sram_probe::set_level(Level::Off);
    probe_inc!("flow.counter");
    probe_gauge!("flow.gauge", 4.2);
    {
        let _span = probe_span!("flow.span_ns");
    }
    assert!(sram_probe::snapshot().is_empty());

    // Summary level: everything records.
    sram_probe::set_level(Level::Summary);
    probe_inc!("flow.counter");
    probe_inc!("flow.counter");
    probe_gauge!("flow.gauge", 4.2);
    {
        let _span = probe_span!("flow.span_ns");
    }
    let first = sram_probe::snapshot();
    assert_eq!(first.counters["flow.counter"], 2);
    assert_eq!(first.gauges["flow.gauge"], 4.2);
    assert_eq!(first.histograms["flow.span_ns"].count, 1);

    // Detail-only probes stay silent at Summary (the metric is not
    // even registered until the level allows it)...
    probe_inc!(detail "flow.detail");
    let at_summary = sram_probe::snapshot();
    assert_eq!(
        at_summary.counters.get("flow.detail").copied().unwrap_or(0),
        0
    );
    // ...and record at Detail.
    sram_probe::set_level(Level::Detail);
    probe_inc!(detail "flow.detail");
    assert_eq!(sram_probe::snapshot().counters["flow.detail"], 1);
    sram_probe::set_level(Level::Summary);

    // Diff isolates the increment since the first snapshot.
    probe_inc!("flow.counter");
    let second = sram_probe::snapshot();
    let delta = second.diff(&first);
    assert_eq!(delta.counters["flow.counter"], 1);
    assert_eq!(delta.histograms["flow.span_ns"].count, 0);

    // Reset zeroes values but keeps names registered.
    sram_probe::reset();
    let after = sram_probe::snapshot();
    assert!(after.is_empty());
    assert!(after.counters.contains_key("flow.counter"));
    probe_inc!("flow.counter");
    assert_eq!(sram_probe::snapshot().counters["flow.counter"], 1);
}
