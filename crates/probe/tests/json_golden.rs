//! Golden test: the JSON export is byte-exact for known inputs.

use sram_probe::Level;

#[test]
fn json_export_matches_golden() {
    sram_probe::set_level(Level::Summary);

    sram_probe::counter("golden.solves").add(17);
    sram_probe::counter("golden.zero"); // registered, never incremented
    sram_probe::gauge("golden.score").set(-3.25e-21);
    let hist = sram_probe::histogram("golden.iters");
    for value in [0u64, 1, 5, 5, 900] {
        hist.record(value);
    }

    let expected = r#"{
  "counters": {
    "golden.solves": 17,
    "golden.zero": 0
  },
  "gauges": {
    "golden.score": -3.25e-21
  },
  "histograms": {
    "golden.iters": {"count": 5, "sum": 911, "buckets": [{"bucket": 0, "count": 1}, {"bucket": 1, "count": 1}, {"bucket": 3, "count": 2}, {"bucket": 10, "count": 1}]}
  }
}
"#;
    assert_eq!(sram_probe::snapshot().to_json(), expected);
}

#[test]
fn empty_registry_exports_empty_objects() {
    // Runs in the same process as the golden test in either order, so
    // assert only on shape-independent structure via a fresh diff.
    let snap = sram_probe::snapshot().diff(&sram_probe::snapshot());
    let json = snap.to_json();
    assert!(json.starts_with("{\n  \"counters\": {"));
    assert!(json.ends_with("}\n}\n"));
}
