//! `SRAM_PROBE=0` spans must compile to near-zero work: no histogram
//! registration, no clock read, no recording.
//!
//! This lives in its own integration-test binary (its own process) so
//! the registry is guaranteed empty at startup, and as a single test
//! function because every phase mutates the process-global level.

use sram_probe::{probe_span, trace_span, Level};

#[test]
fn disabled_spans_are_near_zero_work() {
    // Phase 1: Level::Off — nothing registers, nothing records.
    sram_probe::set_level(Level::Off);
    {
        let _span = probe_span!("off.never_registered");
        let _detail = probe_span!(detail "off.never_registered_detail");
        let _trace = trace_span!("off.never_traced");
    }
    // Raising the level afterward must reveal an empty registry: the
    // disabled branch never called `sram_probe::histogram`, so nothing
    // was registered, let alone recorded.
    sram_probe::set_level(Level::Summary);
    let snap = sram_probe::snapshot();
    assert!(
        !snap.histograms.contains_key("off.never_registered"),
        "disabled probe_span! must not register its histogram: {:?}",
        snap.histograms.keys().collect::<Vec<_>>()
    );
    assert!(!snap.histograms.contains_key("off.never_registered_detail"));
    assert!(snap.is_empty(), "no metric activity at all was expected");
    // The disabled trace span likewise left no events behind.
    assert!(
        !sram_probe::trace::capture()
            .iter()
            .any(|e| e.name == "off.never_traced"),
        "disabled trace_span! must not emit events"
    );

    // Phase 2: Summary — detail spans stay unregistered, summary spans
    // record.
    {
        let _detail = probe_span!(detail "off.detail_at_summary");
        let _summary = probe_span!("off.summary_at_summary");
    }
    let snap = sram_probe::snapshot();
    assert!(
        !snap.histograms.contains_key("off.detail_at_summary"),
        "detail spans must stay unregistered at Summary"
    );
    assert_eq!(snap.histograms["off.summary_at_summary"].count, 1);

    // Phase 3: a coarse budget check. A disabled span site must cost
    // on the order of a branch, not a clock read. The budget is loose
    // enough for slow CI machines while still catching an accidental
    // `Instant::now()` (~20–40 ns each, plus the register/record path
    // it would drag in); debug builds pay unoptimized call overhead on
    // every macro expansion, so their budget is wider. Taking the best
    // of several rounds discards scheduler preemption noise — a real
    // per-call regression slows every round equally.
    sram_probe::set_level(Level::Off);
    const CALLS: u32 = 200_000;
    const ROUNDS: usize = 5;
    let budget_ns = if cfg!(debug_assertions) { 150.0 } else { 50.0 };
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = std::time::Instant::now();
        for _ in 0..CALLS {
            let _span = probe_span!("off.cost_probe");
            let _trace = trace_span!("off.cost_trace");
            std::hint::black_box(());
        }
        let per_call = start.elapsed().as_nanos() as f64 / f64::from(CALLS);
        best = best.min(per_call);
    }
    assert!(
        best < budget_ns,
        "disabled span pair cost {best:.1} ns/call, expected branch-like (budget {budget_ns})"
    );
    assert!(
        !sram_probe::snapshot()
            .histograms
            .contains_key("off.cost_probe"),
        "the cost loop must not have registered anything"
    );
}
