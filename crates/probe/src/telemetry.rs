//! Windowed time-series telemetry over the probe registry.
//!
//! The [`snapshot`](crate::snapshot) module answers "what happened since
//! process start"; this module answers "what is happening *now*". A
//! background sampler thread (started with [`start`], joined by
//! [`stop`]) copies every registered counter/gauge/histogram at a fixed
//! interval and stores the **delta** since the previous sample in a
//! fixed-capacity ring of [`Window`]s, so rates ("requests/s over the
//! last minute") and short-horizon quantiles survive on a long-lived
//! node whose absolute totals stopped being informative hours ago.
//!
//! * `SRAM_TELEMETRY_WINDOW` — sampling interval in milliseconds
//!   (default 1000, clamped to `[10, 600_000]`);
//! * `SRAM_TELEMETRY_SLOTS` — ring capacity in windows (default 60,
//!   clamped to `[4, 3600]`). With the defaults the ring holds one
//!   minute of one-second windows.
//!
//! # Quantiles
//!
//! The registry's [`Histogram`](crate::Histogram) uses one bucket per
//! power of two — fine for orders of magnitude, uselessly coarse for a
//! p99 latency objective. This module adds [`LogLinear`]: a fixed
//! 976-bucket log-linear histogram (16 linear sub-buckets per octave)
//! whose midpoint quantile estimates carry a guaranteed relative error
//! bound of [`MAX_QUANTILE_RELATIVE_ERROR`] (1/32 ≈ 3.1 %). Snapshots
//! of it ([`QuantileSnapshot`]) are mergeable — summing per-window
//! deltas reproduces the whole-stream histogram exactly — which is
//! what makes windowed p50/p90/p99 well-defined.
//!
//! # Determinism and cost
//!
//! Sampling is wall-clock-driven, but every window records its own
//! measured duration, so rates are exact regardless of scheduler
//! jitter; [`force_sample`] takes a window synchronously for tests and
//! experiments that must not depend on timing. Recording into a
//! [`LogLinear`] is three relaxed atomic RMWs and is deliberately
//! *not* gated on the probe level: the health/metrics surface built on
//! it must keep working on a node running with `SRAM_PROBE=0`.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, LazyLock, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant, SystemTime};

use crate::metrics::Counter;
use crate::snapshot::{snapshot, Snapshot};

/// Linear sub-buckets per power of two (must be a power of two).
const SUB_BUCKETS: usize = 16;
/// `log2(SUB_BUCKETS)`.
const SUB_SHIFT: u32 = 4;
/// Total bucket count: values `0..16` get exact buckets, then 16
/// sub-buckets per octave for exponents 4..=63.
pub(crate) const LOG_LINEAR_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_SHIFT as usize) * SUB_BUCKETS;

/// Worst-case relative error of a [`QuantileSnapshot::quantile`]
/// estimate: a bucket spanning `[lo, lo + w)` has `lo ≥ 16·w`, so the
/// midpoint is within `w/2 ≤ lo/32` of any sample in it.
pub const MAX_QUANTILE_RELATIVE_ERROR: f64 = 1.0 / 32.0;

/// Default sampling interval.
const DEFAULT_WINDOW_MS: u64 = 1000;
/// Default ring capacity.
const DEFAULT_SLOTS: usize = 60;

/// The bucket a value lands in: exact below [`SUB_BUCKETS`], then
/// `(exponent, sub-bucket)` addressed log-linearly. Contiguous at the
/// boundary (`bucket_index(v) == v` for `v < 32`).
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let exponent = 63 - value.leading_zeros();
        let sub = ((value >> (exponent - SUB_SHIFT)) & (SUB_BUCKETS as u64 - 1)) as usize;
        SUB_BUCKETS + (exponent - SUB_SHIFT) as usize * SUB_BUCKETS + sub
    }
}

/// Inclusive `[lo, hi]` value range of a bucket.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS {
        (index as u64, index as u64)
    } else {
        let k = index - SUB_BUCKETS;
        let exponent = SUB_SHIFT + (k / SUB_BUCKETS) as u32;
        let sub = (k % SUB_BUCKETS) as u64;
        let width = 1u64 << (exponent - SUB_SHIFT);
        let lo = (SUB_BUCKETS as u64 + sub) << (exponent - SUB_SHIFT);
        (lo, lo + (width - 1))
    }
}

/// A bucket's midpoint — the quantile estimate for ranks that land in
/// it. Computed in `f64` to avoid `u64` overflow near the top octave.
fn bucket_midpoint(index: usize) -> f64 {
    let (lo, hi) = bucket_bounds(index);
    lo as f64 + (hi - lo) as f64 / 2.0
}

/// A concurrent fixed-bucket log-linear histogram of `u64` samples.
///
/// 16 linear sub-buckets per power of two bound the relative width of
/// every bucket by 1/16, which bounds midpoint quantile error by
/// [`MAX_QUANTILE_RELATIVE_ERROR`]. Recording is three relaxed atomic
/// RMWs; reading is [`LogLinear::snapshot`].
#[derive(Debug)]
pub struct LogLinear {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Default for LogLinear {
    fn default() -> Self {
        Self::new()
    }
}

impl LogLinear {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..LOG_LINEAR_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current state (non-empty buckets only).
    #[must_use]
    pub fn snapshot(&self) -> QuantileSnapshot {
        let mut buckets = Vec::new();
        for (index, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((index as u16, n));
            }
        }
        QuantileSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time (or per-window delta) copy of a [`LogLinear`].
///
/// Mergeable and diffable: `a.diff(b)` then summing the deltas back
/// with [`QuantileSnapshot::merge`] reconstructs `a` exactly, so
/// whole-ring quantiles equal whole-stream quantiles over the same
/// samples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuantileSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// `(bucket_index, count)` for each non-empty bucket, ascending.
    pub buckets: Vec<(u16, u64)>,
}

impl QuantileSnapshot {
    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The sum of two snapshots (bucket-wise).
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        let mut map: BTreeMap<u16, u64> = self.buckets.iter().copied().collect();
        for &(index, n) in &other.buckets {
            *map.entry(index).or_insert(0) += n;
        }
        Self {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            buckets: map.into_iter().collect(),
        }
    }

    /// The change since `baseline` (saturating, like
    /// [`Snapshot::diff`]).
    #[must_use]
    pub fn diff(&self, baseline: &Self) -> Self {
        let prior: BTreeMap<u16, u64> = baseline.buckets.iter().copied().collect();
        let mut buckets = Vec::new();
        for &(index, n) in &self.buckets {
            let delta = n.saturating_sub(prior.get(&index).copied().unwrap_or(0));
            if delta > 0 {
                buckets.push((index, delta));
            }
        }
        Self {
            count: self.count.saturating_sub(baseline.count),
            sum: self.sum.saturating_sub(baseline.sum),
            buckets,
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as a bucket-midpoint estimate,
    /// within [`MAX_QUANTILE_RELATIVE_ERROR`] of the exact
    /// sorted-sample quantile. Returns 0 for an empty snapshot.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Nearest-rank definition: the ⌈q·n⌉-th smallest sample.
        let rank = (q * self.count as f64)
            .ceil()
            .max(1.0)
            .min(self.count as f64) as u64;
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_midpoint(index as usize);
            }
        }
        // Unreachable when count matches the buckets; fall back to the
        // largest non-empty bucket.
        self.buckets
            .last()
            .map_or(0.0, |&(index, _)| bucket_midpoint(index as usize))
    }
}

/// Named [`LogLinear`] histograms (the quantile registry). Separate
/// from the main probe registry so recording stays ungated and the
/// per-window diff loop touches only quantile-bearing metrics.
static QUANTS: LazyLock<Mutex<BTreeMap<&'static str, &'static LogLinear>>> =
    LazyLock::new(|| Mutex::new(BTreeMap::new()));

/// The named quantile histogram, created on first use. Hot call sites
/// should cache the returned reference in a `OnceLock`.
#[must_use]
pub fn quantiles(name: &'static str) -> &'static LogLinear {
    let mut map = QUANTS.lock().unwrap_or_else(PoisonError::into_inner);
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(LogLinear::new())))
}

/// Records one sample into the named quantile histogram (registry
/// lookup per call — fine off the hot path).
pub fn record(name: &'static str, value: u64) {
    quantiles(name).record(value);
}

fn quant_snapshots() -> BTreeMap<&'static str, QuantileSnapshot> {
    let map = QUANTS.lock().unwrap_or_else(PoisonError::into_inner);
    map.iter()
        .map(|(&name, ll)| (name, ll.snapshot()))
        .collect()
}

/// One sampled interval: what changed between two consecutive samples.
#[derive(Debug, Clone)]
pub struct Window {
    /// Monotone window sequence number (process-wide).
    pub seq: u64,
    /// Wall-clock sample time (unix milliseconds).
    pub unix_ms: u64,
    /// Measured interval length (used for rate computation, so
    /// scheduler jitter never skews rates).
    pub duration: Duration,
    /// Counter/gauge/histogram deltas since the previous sample
    /// (gauges keep their sampled value — they are levels, not flows).
    pub delta: Snapshot,
    /// Per-metric quantile-histogram deltas for this interval.
    pub quantiles: BTreeMap<&'static str, QuantileSnapshot>,
}

/// Aggregator state: previous sample baselines plus the window ring.
struct AggState {
    prev: Snapshot,
    prev_quant: BTreeMap<&'static str, QuantileSnapshot>,
    last: Option<Instant>,
    ring: VecDeque<Window>,
    seq: u64,
    slots: usize,
    window: Duration,
}

static AGG: LazyLock<Mutex<AggState>> = LazyLock::new(|| {
    Mutex::new(AggState {
        prev: Snapshot::default(),
        prev_quant: BTreeMap::new(),
        last: None,
        ring: VecDeque::new(),
        seq: 0,
        slots: slots_from_env(),
        window: Duration::from_millis(window_ms_from_env()),
    })
});

/// `SRAM_TELEMETRY_WINDOW` in ms, clamped to `[10, 600_000]`.
fn window_ms_from_env() -> u64 {
    std::env::var("SRAM_TELEMETRY_WINDOW")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or(DEFAULT_WINDOW_MS, |ms| ms.clamp(10, 600_000))
}

/// `SRAM_TELEMETRY_SLOTS`, clamped to `[4, 3600]`.
fn slots_from_env() -> usize {
    std::env::var("SRAM_TELEMETRY_SLOTS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(DEFAULT_SLOTS, |n| n.clamp(4, 3600))
}

/// Windows sampled, counted through the registry but **bypassing the
/// probe level gate** (same pattern as `probe.trace.dropped`): the
/// telemetry surface must be able to report on itself even with
/// probes off.
fn windows_counter() -> &'static Counter {
    static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
    HANDLE.get_or_init(|| crate::registry::counter("telemetry.windows.sampled"))
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Takes one sample synchronously: diffs the registry against the
/// previous sample and pushes a [`Window`]. The sampler thread calls
/// this on its interval; tests and experiments call it directly so
/// window contents never depend on wall-clock timing.
pub fn force_sample() {
    let now = Instant::now();
    let snap = snapshot();
    let quant = quant_snapshots();
    let mut agg = AGG.lock().unwrap_or_else(PoisonError::into_inner);
    let duration = agg.last.map_or(agg.window, |last| now.duration_since(last));
    let delta = snap.diff(&agg.prev);
    let mut qdelta = BTreeMap::new();
    for (&name, current) in &quant {
        let d = agg
            .prev_quant
            .get(name)
            .map_or_else(|| current.clone(), |prev| current.diff(prev));
        if d.count > 0 {
            qdelta.insert(name, d);
        }
    }
    let window = Window {
        seq: agg.seq,
        unix_ms: unix_ms(),
        duration,
        delta,
        quantiles: qdelta,
    };
    agg.seq += 1;
    agg.prev = snap;
    agg.prev_quant = quant;
    agg.last = Some(now);
    agg.ring.push_back(window);
    while agg.ring.len() > agg.slots {
        agg.ring.pop_front();
    }
    drop(agg);
    windows_counter().inc();
}

/// Clears the ring and re-baselines the next window at the current
/// registry state. For tests and experiments that need a clean slate
/// in a shared process.
pub fn reset() {
    let snap = snapshot();
    let quant = quant_snapshots();
    let mut agg = AGG.lock().unwrap_or_else(PoisonError::into_inner);
    agg.prev = snap;
    agg.prev_quant = quant;
    agg.last = Some(Instant::now());
    agg.ring.clear();
}

/// A copy of the current window ring, oldest first.
#[must_use]
pub fn windows() -> Vec<Window> {
    let agg = AGG.lock().unwrap_or_else(PoisonError::into_inner);
    agg.ring.iter().cloned().collect()
}

/// Sampler lifecycle: refcounted so several owners (server under test,
/// experiment harness) can share one thread; the thread exits and is
/// joined when the count returns to zero.
struct Control {
    refcount: usize,
}

static CONTROL: LazyLock<(Mutex<Control>, Condvar)> =
    LazyLock::new(|| (Mutex::new(Control { refcount: 0 }), Condvar::new()));
static SAMPLER: Mutex<Option<std::thread::JoinHandle<()>>> = Mutex::new(None);

/// Starts (or joins) the background sampler thread. Re-reads
/// `SRAM_TELEMETRY_WINDOW` / `SRAM_TELEMETRY_SLOTS` when the refcount
/// rises from zero. Every `start` must be paired with a [`stop`].
pub fn start() {
    let (lock, _cvar) = &*CONTROL;
    let mut control = lock.lock().unwrap_or_else(PoisonError::into_inner);
    control.refcount += 1;
    if control.refcount > 1 {
        return;
    }
    let window = Duration::from_millis(window_ms_from_env());
    {
        let mut agg = AGG.lock().unwrap_or_else(PoisonError::into_inner);
        agg.window = window;
        agg.slots = slots_from_env();
        if agg.last.is_none() {
            // First-ever start: baseline at "now" so window 0 holds
            // activity during the run, not since process birth.
            agg.prev = snapshot();
            agg.prev_quant = quant_snapshots();
            agg.last = Some(Instant::now());
        }
    }
    drop(control);
    let handle = std::thread::spawn(move || sampler_loop(window));
    *SAMPLER.lock().unwrap_or_else(PoisonError::into_inner) = Some(handle);
}

/// Releases one [`start`]; when the refcount reaches zero the sampler
/// takes one final drain window, exits, and is joined.
pub fn stop() {
    let (lock, cvar) = &*CONTROL;
    let mut control = lock.lock().unwrap_or_else(PoisonError::into_inner);
    control.refcount = control.refcount.saturating_sub(1);
    let stopping = control.refcount == 0;
    drop(control);
    if !stopping {
        return;
    }
    cvar.notify_all();
    let handle = SAMPLER
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    if let Some(handle) = handle {
        let _ = handle.join();
    }
}

/// `true` while the sampler thread is live.
#[must_use]
pub fn is_running() -> bool {
    let (lock, _cvar) = &*CONTROL;
    lock.lock().unwrap_or_else(PoisonError::into_inner).refcount > 0
}

fn sampler_loop(window: Duration) {
    let (lock, cvar) = &*CONTROL;
    let mut control = lock.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        let (guard, _timeout) = cvar
            .wait_timeout(control, window)
            .unwrap_or_else(PoisonError::into_inner);
        control = guard;
        if control.refcount == 0 {
            break;
        }
        drop(control);
        force_sample();
        control = lock.lock().unwrap_or_else(PoisonError::into_inner);
    }
    drop(control);
    // Final drain window so short-lived runs still observe their tail.
    force_sample();
}

/// Per-counter rollup over the ring.
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterStat {
    /// Live cumulative total (since process start).
    pub total: u64,
    /// Sum of deltas across the ring.
    pub delta: u64,
    /// `delta / ring span` in events per second.
    pub rate: f64,
    /// Last window's delta over its own duration.
    pub last_rate: f64,
}

/// Per-metric quantile rollup over the ring.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantileSummary {
    /// Samples across the ring.
    pub count: u64,
    /// Sum of samples across the ring.
    pub sum: u64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

/// Everything the `metrics` surface exposes, computed once so the
/// Prometheus text form and any JSON rendering of the same `Export`
/// cannot drift from each other.
#[derive(Debug, Clone, Default)]
pub struct Export {
    /// Configured sampling interval (ms).
    pub window_ms: u64,
    /// Configured ring capacity.
    pub slots: usize,
    /// The ring itself, oldest first.
    pub windows: Vec<Window>,
    /// Total measured time covered by the ring, in seconds.
    pub span_s: f64,
    /// Counter rollups by name.
    pub counters: BTreeMap<&'static str, CounterStat>,
    /// Live gauge values by name.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Ring-merged quantile summaries by name.
    pub quantiles: BTreeMap<&'static str, QuantileSummary>,
    /// The raw ring-merged histograms the summaries were computed
    /// from. Exposed so a remote collector can serialize the sparse
    /// buckets, merge them across processes with
    /// [`QuantileSnapshot::merge`], and recompute cluster-wide
    /// quantiles within the same [`MAX_QUANTILE_RELATIVE_ERROR`]
    /// bound instead of averaging per-node percentiles.
    pub quantile_buckets: BTreeMap<&'static str, QuantileSnapshot>,
}

/// Builds an [`Export`] from the current ring plus live totals.
#[must_use]
pub fn export() -> Export {
    let snap = snapshot();
    let (ring, window, slots) = {
        let agg = AGG.lock().unwrap_or_else(PoisonError::into_inner);
        (
            agg.ring.iter().cloned().collect::<Vec<_>>(),
            agg.window,
            agg.slots,
        )
    };
    let span_s: f64 = ring.iter().map(|w| w.duration.as_secs_f64()).sum();
    let last = ring.last();

    let mut counters: BTreeMap<&'static str, CounterStat> = BTreeMap::new();
    for (&name, &total) in &snap.counters {
        counters.insert(
            name,
            CounterStat {
                total,
                ..CounterStat::default()
            },
        );
    }
    for w in &ring {
        for (&name, &d) in &w.delta.counters {
            counters.entry(name).or_default().delta += d;
        }
    }
    for stat in counters.values_mut() {
        if span_s > 0.0 {
            stat.rate = stat.delta as f64 / span_s;
        }
    }
    if let Some(last) = last {
        let secs = last.duration.as_secs_f64();
        if secs > 0.0 {
            for (&name, &d) in &last.delta.counters {
                if let Some(stat) = counters.get_mut(name) {
                    stat.last_rate = d as f64 / secs;
                }
            }
        }
    }

    let mut merged: BTreeMap<&'static str, QuantileSnapshot> = BTreeMap::new();
    for w in &ring {
        for (&name, q) in &w.quantiles {
            let slot = merged.entry(name).or_default();
            *slot = slot.merge(q);
        }
    }
    let quantiles = merged
        .iter()
        .map(|(&name, q)| {
            (
                name,
                QuantileSummary {
                    count: q.count,
                    sum: q.sum,
                    p50: q.quantile(0.50),
                    p90: q.quantile(0.90),
                    p99: q.quantile(0.99),
                },
            )
        })
        .collect();

    Export {
        window_ms: window.as_millis() as u64,
        slots,
        windows: ring,
        span_s,
        counters,
        gauges: snap.gauges.clone(),
        quantiles,
        quantile_buckets: merged,
    }
}

/// Maps a dotted probe name to a Prometheus-legal metric name
/// (`serve.request.total` → `sram_serve_request_total`).
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("sram_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

impl Export {
    /// Renders the Prometheus text exposition format (v0.0.4):
    /// counters as `_total` plus a `:rate` gauge over the ring, gauges
    /// verbatim, and quantile metrics as summaries with
    /// `quantile="0.5|0.9|0.99"` labels. Rendered from the same data
    /// as any JSON form of `self`, by construction.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# sram-edp telemetry: {} windows of {} ms (span {:.3}s)",
            self.windows.len(),
            self.window_ms,
            self.span_s
        );
        for (name, stat) in &self.counters {
            let p = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {p} counter");
            let _ = writeln!(out, "{p} {}", stat.total);
            let _ = writeln!(out, "# TYPE {p}_rate gauge");
            let _ = writeln!(out, "{p}_rate {}", fmt_f64(stat.rate));
        }
        for (name, value) in &self.gauges {
            let p = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {p} gauge");
            let _ = writeln!(out, "{p} {}", fmt_f64(*value));
        }
        for (name, q) in &self.quantiles {
            let p = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {p} summary");
            let _ = writeln!(out, "{p}{{quantile=\"0.5\"}} {}", fmt_f64(q.p50));
            let _ = writeln!(out, "{p}{{quantile=\"0.9\"}} {}", fmt_f64(q.p90));
            let _ = writeln!(out, "{p}{{quantile=\"0.99\"}} {}", fmt_f64(q.p99));
            let _ = writeln!(out, "{p}_sum {}", q.sum);
            let _ = writeln!(out, "{p}_count {}", q.count);
        }
        out
    }
}

/// Prometheus number formatting: finite values in shortest-roundtrip
/// scientific notation, non-finite as `NaN`/`+Inf`/`-Inf`.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else {
        format!("{v:e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_contiguous_and_monotone() {
        // Exact below 32 (16 exact + first octave of width-1 buckets).
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize, "v={v}");
        }
        // Monotone across an increasing sample of the full range.
        let mut prev = 0usize;
        for shift in 0..64u32 {
            for offset in [0u64, 1, 7] {
                let v = (1u64 << shift).saturating_add(offset.saturating_mul(1u64 << shift) / 8);
                let b = bucket_index(v);
                assert!(b >= prev, "index not monotone at {v}");
                prev = b;
            }
        }
        assert_eq!(bucket_index(u64::MAX), LOG_LINEAR_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_roundtrip() {
        for index in 0..LOG_LINEAR_BUCKETS {
            let (lo, hi) = bucket_bounds(index);
            assert!(lo <= hi, "index {index}");
            assert_eq!(bucket_index(lo), index, "lo of {index}");
            assert_eq!(bucket_index(hi), index, "hi of {index}");
            if index > 0 {
                let (_, prev_hi) = bucket_bounds(index - 1);
                assert_eq!(lo, prev_hi + 1, "gap before index {index}");
            }
        }
    }

    /// Deterministic xorshift generator for the property tests.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    #[test]
    fn quantiles_stay_within_the_relative_error_bound() {
        // Satellite: p50/p90/p99 vs exact sorted-sample quantiles
        // across several seeds and sample shapes.
        for seed in [3u64, 17, 0xDEAD_BEEF, 0x00DA_C201] {
            let mut rng = Rng(seed | 1);
            let ll = LogLinear::new();
            let mut samples = Vec::new();
            for i in 0..4000u64 {
                // Mixed distribution: small exact values, a latency-like
                // log-uniform body, and a heavy tail.
                let v = match i % 4 {
                    0 => rng.next() % 16,
                    1 => 100 + rng.next() % 10_000,
                    2 => 1_000_000 + rng.next() % 50_000_000,
                    _ => rng.next() % (1 << (20 + (rng.next() % 30))),
                };
                samples.push(v);
                ll.record(v);
            }
            samples.sort_unstable();
            let snap = ll.snapshot();
            assert_eq!(snap.count, samples.len() as u64);
            for q in [0.5, 0.9, 0.99] {
                let exact = exact_quantile(&samples, q) as f64;
                let est = snap.quantile(q);
                let err = if exact == 0.0 {
                    est
                } else {
                    (est - exact).abs() / exact
                };
                assert!(
                    err <= MAX_QUANTILE_RELATIVE_ERROR,
                    "seed {seed} q{q}: est {est} vs exact {exact} (err {err})"
                );
            }
        }
    }

    #[test]
    fn merged_window_quantiles_equal_whole_stream_quantiles() {
        // Satellite: recording in chunks, snapshotting deltas per
        // chunk, and merging the deltas must reproduce the one-shot
        // histogram bit-for-bit — so quantiles match exactly, not just
        // within bound.
        let mut rng = Rng(0x5EED_CAFE);
        let whole = LogLinear::new();
        let windowed = LogLinear::new();
        let mut merged = QuantileSnapshot::default();
        let mut prev = QuantileSnapshot::default();
        for _chunk in 0..8 {
            for _ in 0..500 {
                let v = rng.next() % 1_000_000;
                whole.record(v);
                windowed.record(v);
            }
            let now = windowed.snapshot();
            merged = merged.merge(&now.diff(&prev));
            prev = now;
        }
        let whole = whole.snapshot();
        assert_eq!(merged, whole, "merge(diffs) must reconstruct the stream");
        for q in [0.5, 0.9, 0.99] {
            assert!((merged.quantile(q) - whole.quantile(q)).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn diff_saturates_and_drops_empty_buckets() {
        let a = QuantileSnapshot {
            count: 5,
            sum: 50,
            buckets: vec![(1, 2), (3, 3)],
        };
        let b = QuantileSnapshot {
            count: 9,
            sum: 90,
            buckets: vec![(1, 2), (3, 5), (4, 2)],
        };
        let d = b.diff(&a);
        assert_eq!(d.count, 4);
        assert_eq!(d.sum, 40);
        assert_eq!(d.buckets, vec![(3, 2), (4, 2)]);
        let reversed = a.diff(&b);
        assert_eq!(reversed.count, 0);
        assert!(reversed.buckets.is_empty());
    }

    #[test]
    fn force_sample_windows_carry_deltas_and_rates() {
        let c = crate::registry::counter("telemetry.test.force_sample");
        reset();
        c.add(5);
        record("telemetry.test.force_latency", 1000);
        record("telemetry.test.force_latency", 2000);
        force_sample();
        let ring = windows();
        let w = ring.last().expect("one window");
        assert_eq!(w.delta.counters["telemetry.test.force_sample"], 5);
        let q = &w.quantiles["telemetry.test.force_latency"];
        assert_eq!(q.count, 2);
        assert_eq!(q.sum, 3000);

        c.add(1);
        force_sample();
        let ring = windows();
        let w = ring.last().expect("two windows");
        assert_eq!(w.delta.counters["telemetry.test.force_sample"], 1);
        assert!(
            !w.quantiles.contains_key("telemetry.test.force_latency"),
            "idle quantile metrics drop out of the window"
        );

        let ex = export();
        let stat = &ex.counters["telemetry.test.force_sample"];
        assert!(stat.total >= 6);
        assert!(stat.delta >= 6, "ring sums deltas: {stat:?}");
        let qs = &ex.quantiles["telemetry.test.force_latency"];
        assert_eq!(qs.count, 2);
        assert!(qs.p50 >= 1000.0 * (1.0 - MAX_QUANTILE_RELATIVE_ERROR));
    }

    #[test]
    fn ring_is_bounded_by_slots() {
        reset();
        let cap = {
            let agg = AGG.lock().unwrap_or_else(PoisonError::into_inner);
            agg.slots
        };
        for _ in 0..cap + 10 {
            force_sample();
        }
        assert!(windows().len() <= cap);
    }

    #[test]
    fn sampler_thread_starts_and_joins() {
        start();
        assert!(is_running());
        // Nested start/stop keeps the thread alive.
        start();
        stop();
        assert!(is_running());
        let before = windows().len();
        stop();
        assert!(!is_running());
        // The drain sample on shutdown guarantees ring growth even if
        // the interval never elapsed.
        assert!(windows().len() >= before.min(1));
    }

    #[test]
    fn env_clamps() {
        // Defaults when unset (the test runner does not set these).
        assert!(window_ms_from_env() >= 10);
        assert!(slots_from_env() >= 4);
    }

    #[test]
    fn prometheus_rendering_is_parseable() {
        let mut ex = Export::default();
        ex.counters.insert(
            "serve.request.total",
            CounterStat {
                total: 42,
                delta: 10,
                rate: 2.5,
                last_rate: 3.0,
            },
        );
        ex.gauges.insert("serve.queue.depth", 3.0);
        ex.quantiles.insert(
            "serve.request.latency_ns",
            QuantileSummary {
                count: 10,
                sum: 1000,
                p50: 95.0,
                p90: 180.0,
                p99: 200.0,
            },
        );
        let text = ex.to_prometheus();
        assert!(text.contains("sram_serve_request_total 42"), "{text}");
        assert!(
            text.contains("sram_serve_request_latency_ns{quantile=\"0.5\"} 9.5e1"),
            "{text}"
        );
        assert!(
            text.contains("sram_serve_request_latency_ns_count 10"),
            "{text}"
        );
        assert!(text.contains("sram_serve_queue_depth 3e0"), "{text}");
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().expect("value");
            assert!(
                value.parse::<f64>().is_ok() || value == "NaN" || value.ends_with("Inf"),
                "unparseable value in {line}"
            );
            assert!(parts.next().is_some(), "no name in {line}");
        }
    }
}
