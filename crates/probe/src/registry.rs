//! The global metric registry.
//!
//! Metrics are created on first use and live for the remainder of the
//! process (`Box::leak`), so handles are `&'static` and the hot path
//! never touches the registry lock — only registration and snapshots
//! do.

use std::collections::BTreeMap;
use std::sync::{LazyLock, Mutex};

use crate::metrics::{Counter, Gauge, Histogram};

#[derive(Debug, Clone, Copy)]
pub(crate) enum Handle {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Handle {
    fn kind(self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

static REGISTRY: LazyLock<Mutex<BTreeMap<&'static str, Handle>>> =
    LazyLock::new(|| Mutex::new(BTreeMap::new()));

fn register(name: &'static str, make: impl FnOnce() -> Handle, want: &'static str) -> Handle {
    let mut registry = REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let handle = *registry.entry(name).or_insert_with(make);
    assert!(
        handle.kind() == want,
        "probe metric {name:?} already registered as a {}, requested as a {want}",
        handle.kind(),
    );
    handle
}

/// The counter registered under `name`, created on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn counter(name: &'static str) -> &'static Counter {
    match register(
        name,
        || Handle::Counter(Box::leak(Box::new(Counter::new(name)))),
        "counter",
    ) {
        Handle::Counter(c) => c,
        // sram-lint: allow(no-panic) register() asserts the kind matches `want` one line up
        _ => unreachable!("register checked the kind"),
    }
}

/// The gauge registered under `name`, created on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn gauge(name: &'static str) -> &'static Gauge {
    match register(
        name,
        || Handle::Gauge(Box::leak(Box::new(Gauge::new(name)))),
        "gauge",
    ) {
        Handle::Gauge(g) => g,
        // sram-lint: allow(no-panic) register() asserts the kind matches `want` one line up
        _ => unreachable!("register checked the kind"),
    }
}

/// The histogram registered under `name`, created on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn histogram(name: &'static str) -> &'static Histogram {
    match register(
        name,
        || Handle::Histogram(Box::leak(Box::new(Histogram::new(name)))),
        "histogram",
    ) {
        Handle::Histogram(h) => h,
        // sram-lint: allow(no-panic) register() asserts the kind matches `want` one line up
        _ => unreachable!("register checked the kind"),
    }
}

/// Zeroes every registered metric in place (names stay registered, and
/// cached `&'static` handles at call sites stay valid).
pub fn reset() {
    let registry = REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for handle in registry.values() {
        match handle {
            Handle::Counter(c) => c.reset(),
            Handle::Gauge(g) => g.reset(),
            Handle::Histogram(h) => h.reset(),
        }
    }
}

/// Runs `f` over every registered metric, in name order.
pub(crate) fn for_each(mut f: impl FnMut(&'static str, Handle)) {
    let registry = REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for (name, handle) in registry.iter() {
        f(name, *handle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `reset` zeroes *every* metric, so tests in this module must not
    /// interleave with each other.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        // The should_panic test poisons the lock by design.
        SERIAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn same_name_returns_same_handle() {
        let _guard = serial();
        let a = counter("registry.same");
        let b = counter("registry.same");
        let before = a.get();
        a.inc();
        assert_eq!(b.get(), before + 1);
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let _guard = serial();
        let _ = counter("registry.mismatch");
        let _ = gauge("registry.mismatch");
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let _guard = serial();
        let c = counter("registry.reset");
        let h = histogram("registry.reset.hist");
        c.add(7);
        h.record(42);
        reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        // The old handle still works post-reset.
        c.inc();
        assert_eq!(counter("registry.reset").get(), 1);
    }
}
