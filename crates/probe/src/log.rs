//! Structured JSON-lines event logging.
//!
//! Off by default. `SRAM_LOG=path` opens the sink at first use (or
//! [`set_path`] at runtime); `SRAM_LOG_LEVEL=debug|info|warn|error`
//! sets the floor (default `info`). One event is one line of JSON:
//!
//! ```text
//! {"ts_ms":1754610000123,"level":"warn","event":"serve.slow_query","latency_ms":812,...}
//! ```
//!
//! The writer is a mutex-guarded `BufWriter` flushed per event —
//! events are for rare, operator-relevant moments (slow queries,
//! degraded health, lifecycle), not per-request chatter; counters and
//! the telemetry ring carry the high-frequency story. When no sink is
//! configured [`enabled`] is one relaxed atomic load, so call sites
//! can guard field construction cheaply.
//!
//! Write successes and failures are counted in `log.events.written` /
//! `log.events.dropped` through the registry but bypassing the probe
//! level gate (the `probe.trace.dropped` pattern): a misconfigured log
//! path must be diagnosable with probes off.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, Once, OnceLock, PoisonError};
use std::time::SystemTime;

use crate::metrics::Counter;

/// Event severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Diagnostic detail.
    Debug = 0,
    /// Normal operational events.
    Info = 1,
    /// Unexpected but handled conditions.
    Warn = 2,
    /// Failures.
    Error = 3,
}

impl LogLevel {
    /// The wire name (`"debug"`, `"info"`, `"warn"`, `"error"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" | "0" => Some(LogLevel::Debug),
            "info" | "1" => Some(LogLevel::Info),
            "warn" | "warning" | "2" => Some(LogLevel::Warn),
            "error" | "3" => Some(LogLevel::Error),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => LogLevel::Debug,
            1 => LogLevel::Info,
            2 => LogLevel::Warn,
            _ => LogLevel::Error,
        }
    }
}

/// One typed field value. `Raw` embeds pre-rendered JSON verbatim
/// (used for span trees that already exist as JSON text).
#[derive(Debug, Clone)]
pub enum LogValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite renders as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (escaped).
    Str(String),
    /// Pre-rendered JSON, embedded verbatim. The caller is
    /// responsible for it being valid JSON.
    Raw(String),
}

struct Sink {
    writer: std::io::BufWriter<std::fs::File>,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);
static ACTIVE: AtomicBool = AtomicBool::new(false);
static MIN_LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);
static INIT: Once = Once::new();

fn written_counter() -> &'static Counter {
    static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
    HANDLE.get_or_init(|| crate::registry::counter("log.events.written"))
}

fn dropped_counter() -> &'static Counter {
    static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
    HANDLE.get_or_init(|| crate::registry::counter("log.events.dropped"))
}

/// Reads `SRAM_LOG` / `SRAM_LOG_LEVEL` once. Called lazily by
/// [`enabled`] and [`log_event`]; call it directly to force the env
/// read at a known point.
pub fn init_from_env() {
    INIT.call_once(|| {
        if let Ok(level) = std::env::var("SRAM_LOG_LEVEL") {
            if let Some(level) = LogLevel::parse(&level) {
                MIN_LEVEL.store(level as u8, Ordering::Relaxed);
            }
        }
        if let Ok(path) = std::env::var("SRAM_LOG") {
            let path = path.trim();
            if !path.is_empty() {
                let _ = open(Path::new(path));
            }
        }
    });
}

fn open(path: &Path) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    *sink = Some(Sink {
        writer: std::io::BufWriter::new(file),
    });
    ACTIVE.store(true, Ordering::Relaxed);
    Ok(())
}

/// Opens (append) or closes the log sink at runtime, overriding
/// `SRAM_LOG`.
///
/// # Errors
///
/// Returns the I/O error when the path cannot be opened; the previous
/// sink (if any) is left in place in that case.
pub fn set_path(path: Option<&Path>) -> std::io::Result<()> {
    INIT.call_once(|| {});
    match path {
        Some(path) => open(path),
        None => {
            let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(mut s) = sink.take() {
                let _ = s.writer.flush();
            }
            ACTIVE.store(false, Ordering::Relaxed);
            Ok(())
        }
    }
}

/// Sets the minimum level that reaches the sink.
pub fn set_min_level(level: LogLevel) {
    MIN_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current minimum level.
#[must_use]
pub fn min_level() -> LogLevel {
    LogLevel::from_u8(MIN_LEVEL.load(Ordering::Relaxed))
}

/// `true` when an event at `level` would be written — one atomic load
/// on the fast (unconfigured) path.
#[must_use]
pub fn enabled(level: LogLevel) -> bool {
    init_from_env();
    ACTIVE.load(Ordering::Relaxed) && level >= min_level()
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn render_line(level: LogLevel, event: &str, fields: &[(&str, LogValue)]) -> String {
    let ts_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let mut line = String::with_capacity(96);
    let _ = write!(line, "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",", level.name());
    line.push_str("\"event\":\"");
    escape_into(&mut line, event);
    line.push('"');
    for (key, value) in fields {
        line.push_str(",\"");
        escape_into(&mut line, key);
        line.push_str("\":");
        match value {
            LogValue::U64(v) => {
                let _ = write!(line, "{v}");
            }
            LogValue::I64(v) => {
                let _ = write!(line, "{v}");
            }
            LogValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(line, "{v:e}");
                } else {
                    line.push_str("null");
                }
            }
            LogValue::Bool(v) => {
                let _ = write!(line, "{v}");
            }
            LogValue::Str(s) => {
                line.push('"');
                escape_into(&mut line, s);
                line.push('"');
            }
            LogValue::Raw(json) => line.push_str(json),
        }
    }
    line.push_str("}\n");
    line
}

/// Writes one structured event if a sink is configured and `level`
/// clears the floor. Never blocks request progress on log I/O errors:
/// failures increment `log.events.dropped` and the event is lost.
pub fn log_event(level: LogLevel, event: &str, fields: &[(&str, LogValue)]) {
    if !enabled(level) {
        return;
    }
    let line = render_line(level, event, fields);
    let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(s) = sink.as_mut() else {
        return;
    };
    let ok = s.writer.write_all(line.as_bytes()).is_ok() && s.writer.flush().is_ok();
    drop(sink);
    if ok {
        written_counter().inc();
    } else {
        dropped_counter().inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Debug < LogLevel::Info);
        assert!(LogLevel::Warn < LogLevel::Error);
        assert_eq!(LogLevel::parse("WARN"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("bogus"), None);
        assert_eq!(LogLevel::from_u8(9), LogLevel::Error);
        assert_eq!(LogLevel::Info.name(), "info");
    }

    #[test]
    fn render_line_is_json_per_field_kind() {
        let line = render_line(
            LogLevel::Warn,
            "doc.event\"quoted",
            &[
                ("u", LogValue::U64(7)),
                ("i", LogValue::I64(-3)),
                ("f", LogValue::F64(1.5)),
                ("nan", LogValue::F64(f64::NAN)),
                ("b", LogValue::Bool(true)),
                ("s", LogValue::Str("a\nb".into())),
                ("raw", LogValue::Raw("{\"x\":1}".into())),
            ],
        );
        assert!(line.ends_with("}\n"), "{line}");
        assert!(line.contains("\"level\":\"warn\""), "{line}");
        assert!(line.contains("\"event\":\"doc.event\\\"quoted\""), "{line}");
        assert!(line.contains("\"u\":7"), "{line}");
        assert!(line.contains("\"i\":-3"), "{line}");
        assert!(line.contains("\"f\":1.5e0"), "{line}");
        assert!(line.contains("\"nan\":null"), "{line}");
        assert!(line.contains("\"b\":true"), "{line}");
        assert!(line.contains("\"s\":\"a\\nb\""), "{line}");
        assert!(line.contains("\"raw\":{\"x\":1}"), "{line}");
        assert!(line.contains("\"ts_ms\":"), "{line}");
    }

    #[test]
    fn sink_roundtrip_and_level_floor() {
        let dir = std::env::temp_dir().join(format!(
            "sram_log_test_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::SystemTime::UNIX_EPOCH)
                .map_or(0, |d| d.as_nanos())
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");

        set_path(Some(&path)).expect("open sink");
        set_min_level(LogLevel::Info);
        assert!(enabled(LogLevel::Info));
        assert!(!enabled(LogLevel::Debug));

        log_event(LogLevel::Debug, "doc.below_floor", &[]);
        log_event(LogLevel::Info, "doc.kept", &[("n", LogValue::U64(1))]);
        set_path(None).expect("close sink");
        assert!(!enabled(LogLevel::Error));

        let text = std::fs::read_to_string(&path).expect("log file");
        assert!(!text.contains("doc.below_floor"), "{text}");
        assert!(text.contains("\"event\":\"doc.kept\",\"n\":1"), "{text}");
        // Each line parses as a balanced JSON object.
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
