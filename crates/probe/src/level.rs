//! Verbosity control: `SRAM_PROBE` environment variable plus runtime
//! override.

use std::sync::atomic::{AtomicU8, Ordering};

/// Sentinel meaning "not yet initialized from the environment".
const UNINIT: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

/// Instrumentation verbosity. Ordered: `Off < Summary < Detail`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No recording; every probe macro is a branch-and-skip.
    Off = 0,
    /// Counters, gauges, and call-granularity spans.
    Summary = 1,
    /// Adds high-frequency probes (per-iteration counters, per-solve
    /// histograms).
    Detail = 2,
}

impl Level {
    fn from_u8(raw: u8) -> Self {
        match raw {
            0 => Level::Off,
            1 => Level::Summary,
            _ => Level::Detail,
        }
    }
}

fn init_from_env() -> u8 {
    let raw = match std::env::var("SRAM_PROBE") {
        Ok(value) => match value.trim() {
            "1" => Level::Summary as u8,
            "2" => Level::Detail as u8,
            _ => Level::Off as u8,
        },
        Err(_) => Level::Off as u8,
    };
    // A concurrent set_level may have run while we read the
    // environment; it wins.
    match LEVEL.compare_exchange(UNINIT, raw, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => raw,
        Err(current) => current,
    }
}

/// The current verbosity level (initialized from `SRAM_PROBE` on first
/// use; see [`set_level`]).
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw == UNINIT {
        Level::from_u8(init_from_env())
    } else {
        Level::from_u8(raw)
    }
}

/// Overrides the verbosity at runtime, superseding `SRAM_PROBE`.
///
/// Used by consumers that must collect metrics regardless of the
/// environment (e.g. `reproduce --probe-json`).
pub fn set_level(new: Level) {
    LEVEL.store(new as u8, Ordering::Relaxed);
}

/// `true` when the current level is at least `min` — the fast path
/// every probe macro checks first.
#[inline]
pub fn enabled(min: Level) -> bool {
    level() >= min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Off < Level::Summary);
        assert!(Level::Summary < Level::Detail);
    }

    #[test]
    fn set_level_round_trips() {
        // Single test mutating the global level; others don't read it.
        set_level(Level::Detail);
        assert_eq!(level(), Level::Detail);
        assert!(enabled(Level::Summary));
        set_level(Level::Summary);
        assert!(enabled(Level::Summary));
        assert!(!enabled(Level::Detail));
        set_level(Level::Off);
        assert!(!enabled(Level::Summary));
    }
}
