//! Point-in-time copies of the registry: diffing, table rendering, and
//! hand-rolled JSON export.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::BUCKETS;
use crate::registry::{self, Handle};

/// A copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// `(bucket_index, count)` for each non-empty bucket, ascending.
    /// Bucket `b ≥ 1` covers samples in `[2^(b-1), 2^b)`; bucket 0
    /// holds zeros.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
}

/// Copies the current state of every registered metric.
#[must_use]
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    registry::for_each(|name, handle| match handle {
        Handle::Counter(c) => {
            snap.counters.insert(name, c.get());
        }
        Handle::Gauge(g) => {
            snap.gauges.insert(name, g.get());
        }
        Handle::Histogram(h) => {
            let mut buckets = Vec::new();
            for index in 0..BUCKETS {
                let count = h.bucket(index);
                if count > 0 {
                    buckets.push((index as u32, count));
                }
            }
            snap.histograms.insert(
                name,
                HistogramSnapshot {
                    count: h.count(),
                    sum: h.sum(),
                    buckets,
                },
            );
        }
    });
    snap
}

impl Snapshot {
    /// `true` when no metric has recorded anything (all counters and
    /// histogram counts zero, no gauges set — gauges count as activity
    /// only when non-zero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0)
            && self.gauges.values().all(|&v| v == 0.0)
            && self.histograms.values().all(|h| h.count == 0)
    }

    /// The change since `baseline`: counters and histograms subtract
    /// (saturating — a [`crate::reset`] between snapshots reads as
    /// zero, not underflow); gauges keep their current value. Metrics
    /// that only exist in `baseline` are dropped.
    #[must_use]
    pub fn diff(&self, baseline: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (&name, &value) in &self.counters {
            let before = baseline.counters.get(name).copied().unwrap_or(0);
            out.counters.insert(name, value.saturating_sub(before));
        }
        for (&name, &value) in &self.gauges {
            out.gauges.insert(name, value);
        }
        for (&name, hist) in &self.histograms {
            let before = baseline.histograms.get(name);
            let mut buckets = Vec::new();
            for &(index, count) in &hist.buckets {
                let prior = before
                    .and_then(|b| b.buckets.iter().find(|&&(i, _)| i == index))
                    .map_or(0, |&(_, c)| c);
                let delta = count.saturating_sub(prior);
                if delta > 0 {
                    buckets.push((index, delta));
                }
            }
            out.histograms.insert(
                name,
                HistogramSnapshot {
                    count: hist.count.saturating_sub(before.map_or(0, |b| b.count)),
                    sum: hist.sum.saturating_sub(before.map_or(0, |b| b.sum)),
                    buckets,
                },
            );
        }
        out
    }

    /// Renders an aligned plain-text table of all metrics, skipping
    /// those that recorded nothing. Histograms whose name ends in
    /// `_ns` (the span convention) show mean/total as humanized
    /// durations.
    #[must_use]
    pub fn render_table(&self) -> String {
        let name_width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|n| n.len())
            .max()
            .unwrap_or(0)
            .max(20);
        let mut out = String::new();

        let counters: Vec<_> = self.counters.iter().filter(|(_, &v)| v > 0).collect();
        if !counters.is_empty() {
            let _ = writeln!(out, "  {:<name_width$}  {:>14}", "counter", "value");
            for (name, value) in counters {
                let _ = writeln!(out, "  {name:<name_width$}  {value:>14}");
            }
        }

        let gauges: Vec<_> = self.gauges.iter().filter(|(_, &v)| v != 0.0).collect();
        if !gauges.is_empty() {
            let _ = writeln!(out, "  {:<name_width$}  {:>14}", "gauge", "value");
            for (name, value) in gauges {
                let _ = writeln!(out, "  {name:<name_width$}  {value:>14.6e}");
            }
        }

        let histograms: Vec<_> = self
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .collect();
        if !histograms.is_empty() {
            let _ = writeln!(
                out,
                "  {:<name_width$}  {:>14}  {:>12}  {:>12}",
                "histogram", "count", "mean", "total"
            );
            for (name, hist) in histograms {
                let (mean, total) = if name.ends_with("_ns") {
                    (format_nanos(hist.mean()), format_nanos(hist.sum as f64))
                } else {
                    (format!("{:.1}", hist.mean()), hist.sum.to_string())
                };
                let _ = writeln!(
                    out,
                    "  {name:<name_width$}  {:>14}  {mean:>12}  {total:>12}",
                    hist.count
                );
            }
        }

        if out.is_empty() {
            out.push_str("  (no probe data recorded)\n");
        }
        out
    }

    /// Serializes the snapshot as pretty-printed JSON (two-space
    /// indent, keys in name order — byte-stable for identical data).
    /// Non-finite gauge values serialize as `null`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(out, "  \"counters\": {{");
        write_entries(&mut out, self.counters.iter(), |out, value| {
            let _ = write!(out, "{value}");
        });
        out.push_str("},\n");

        let _ = write!(out, "  \"gauges\": {{");
        write_entries(&mut out, self.gauges.iter(), |out, value| {
            write_json_f64(out, *value);
        });
        out.push_str("},\n");

        let _ = write!(out, "  \"histograms\": {{");
        write_entries(&mut out, self.histograms.iter(), |out, hist| {
            let _ = write!(
                out,
                "{{\"count\": {}, \"sum\": {}, \"buckets\": [",
                hist.count, hist.sum
            );
            for (i, (bucket, count)) in hist.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"bucket\": {bucket}, \"count\": {count}}}");
            }
            out.push_str("]}");
        });
        out.push_str("}\n}\n");
        out
    }
}

/// Writes `"name": <value>` entries with two-space-indented lines and
/// a trailing newline-plus-indent closing brace, or nothing for an
/// empty map (so the caller's `{}` stays on one line).
fn write_entries<'s, V: 's>(
    out: &mut String,
    entries: impl ExactSizeIterator<Item = (&'s &'static str, &'s V)>,
    mut write_value: impl FnMut(&mut String, &V),
) {
    let n = entries.len();
    for (i, (name, value)) in entries.enumerate() {
        out.push_str("\n    ");
        write_json_string(out, name);
        out.push_str(": ");
        write_value(out, value);
        if i + 1 < n {
            out.push(',');
        } else {
            out.push_str("\n  ");
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        // Shortest-roundtrip scientific notation ("1.5e0", "-3.25e-21")
        // is a valid JSON number and stays compact at any magnitude.
        let _ = write!(out, "{value:e}");
    } else {
        out.push_str("null");
    }
}

/// Formats a nanosecond quantity with an appropriate unit (shared with
/// the trace module's flame summary).
pub(crate) fn format_nanos(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("a.count", 3);
        snap.gauges.insert("b.gauge", 1.5);
        snap.histograms.insert(
            "c.hist_ns",
            HistogramSnapshot {
                count: 2,
                sum: 3000,
                buckets: vec![(11, 2)],
            },
        );
        snap
    }

    #[test]
    fn diff_subtracts_counts_keeps_gauges() {
        let newer = sample();
        let mut older = sample();
        older.counters.insert("a.count", 1);
        older.gauges.insert("b.gauge", 9.0);
        older.histograms.get_mut("c.hist_ns").unwrap().count = 1;
        older.histograms.get_mut("c.hist_ns").unwrap().sum = 1000;
        older.histograms.get_mut("c.hist_ns").unwrap().buckets = vec![(11, 1)];

        let delta = newer.diff(&older);
        assert_eq!(delta.counters["a.count"], 2);
        assert_eq!(delta.gauges["b.gauge"], 1.5);
        assert_eq!(delta.histograms["c.hist_ns"].count, 1);
        assert_eq!(delta.histograms["c.hist_ns"].sum, 2000);
        assert_eq!(delta.histograms["c.hist_ns"].buckets, vec![(11, 1)]);
    }

    #[test]
    fn diff_drops_metrics_present_only_in_the_baseline() {
        // A metric that existed before but not now (possible when the
        // baseline came from another process via JSON, or after a
        // registry divergence) must be dropped, not resurrected at
        // zero — `diff` documents "metrics that only exist in
        // `baseline` are dropped".
        let newer = sample();
        let mut older = sample();
        older.counters.insert("baseline.only_counter", 9);
        older.gauges.insert("baseline.only_gauge", 4.5);
        older.histograms.insert(
            "baseline.only_hist",
            HistogramSnapshot {
                count: 3,
                sum: 30,
                buckets: vec![(5, 3)],
            },
        );

        let delta = newer.diff(&older);
        assert!(!delta.counters.contains_key("baseline.only_counter"));
        assert!(!delta.gauges.contains_key("baseline.only_gauge"));
        assert!(!delta.histograms.contains_key("baseline.only_hist"));
        // The shared metrics still diff normally alongside the drops.
        assert_eq!(delta.counters["a.count"], 0);
        assert_eq!(delta.histograms["c.hist_ns"].count, 0);
    }

    #[test]
    fn diff_against_reset_saturates() {
        let mut older = sample();
        older.counters.insert("a.count", 100);
        let delta = sample().diff(&older);
        assert_eq!(delta.counters["a.count"], 0);
    }

    #[test]
    fn empty_detection() {
        assert!(Snapshot::default().is_empty());
        assert!(!sample().is_empty());
        let mut zeroed = Snapshot::default();
        zeroed.counters.insert("z", 0);
        assert!(zeroed.is_empty());
    }

    #[test]
    fn table_renders_all_sections() {
        let table = sample().render_table();
        assert!(table.contains("a.count"), "{table}");
        assert!(table.contains("b.gauge"), "{table}");
        assert!(table.contains("c.hist_ns"), "{table}");
        assert!(table.contains("1.5us"), "{table}"); // mean of 3000ns/2
        assert!(Snapshot::default().render_table().contains("no probe data"));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let json = sample().to_json();
        assert_eq!(json, sample().to_json());
        assert!(json.contains("\"a.count\": 3"), "{json}");
        assert!(json.contains("\"b.gauge\": 1.5e0"), "{json}");
        assert!(json.contains("{\"bucket\": 11, \"count\": 2}"), "{json}");

        let mut snap = Snapshot::default();
        snap.gauges.insert("weird\"name", f64::NAN);
        snap.gauges.insert("whole", 2.0);
        let json = snap.to_json();
        assert!(json.contains("\"weird\\\"name\": null"), "{json}");
        assert!(json.contains("\"whole\": 2e0"), "{json}");
    }

    #[test]
    fn format_nanos_scales() {
        assert_eq!(format_nanos(12.0), "12ns");
        assert_eq!(format_nanos(1500.0), "1.5us");
        assert_eq!(format_nanos(2.5e6), "2.5ms");
        assert_eq!(format_nanos(3.21e9), "3.21s");
    }
}
