//! The three metric primitives and the RAII timing guard.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of log2 buckets: one per possible bit length of a `u64`,
/// plus bucket 0 for the value zero.
pub(crate) const BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The registered name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins `f64` value (stored as raw bits in an atomic).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
}

impl Gauge {
    pub(crate) fn new(name: &'static str) -> Self {
        Self {
            name,
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The registered name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.set(0.0);
    }
}

/// A log2-bucketed histogram of `u64` samples.
///
/// A sample lands in bucket `b = bit_length(sample)` (zero in bucket
/// 0), i.e. bucket `b ≥ 1` covers `[2^(b-1), 2^b)`. 65 buckets cover
/// the full `u64` range, so recording never clips. The total count and
/// sum are tracked exactly; the bucket layout trades per-sample
/// precision for lock-free fixed-size storage.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    pub(crate) fn new(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// The registered name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Index of the bucket a value lands in.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub(crate) fn bucket(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }

    /// Starts a timing span; the returned guard records the elapsed
    /// nanoseconds into this histogram when dropped.
    pub fn start_span(&'static self) -> Span {
        Span {
            inner: Some((self, Instant::now())),
        }
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// RAII timing guard: records nanoseconds elapsed since creation into
/// its histogram on drop. The disabled variant (what `probe_span!`
/// yields below the active level) does nothing.
#[derive(Debug)]
#[must_use = "binding a span to `_` drops it immediately; use `let _span = ...`"]
pub struct Span {
    inner: Option<(&'static Histogram, Instant)>,
}

impl Span {
    /// A no-op guard. `const`: constructing it cannot read the clock,
    /// take a lock, or register anything — the guarantee the disabled
    /// branch of `probe_span!` relies on (see `tests/disabled_level.rs`).
    pub const fn disabled() -> Self {
        Self { inner: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((histogram, start)) = self.inner.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            histogram.record(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new("t.counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::new("t.gauge");
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        g.set(1.25e-9);
        assert_eq!(g.get(), 1.25e-9);
    }

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_index_boundaries_at_every_power_of_two() {
        // Bucket b ≥ 1 covers [2^(b-1), 2^b): each power of two opens
        // a new bucket, and the value just past it stays in that
        // bucket. Exhaustive over every representable boundary.
        assert_eq!(Histogram::bucket_index(1), 1, "2^0 opens bucket 1");
        for k in 1..64u32 {
            let pow = 1u64 << k;
            assert_eq!(
                Histogram::bucket_index(pow - 1),
                k as usize,
                "2^{k} - 1 closes bucket {k}"
            );
            assert_eq!(
                Histogram::bucket_index(pow),
                (k + 1) as usize,
                "2^{k} opens bucket {}",
                k + 1
            );
            assert_eq!(
                Histogram::bucket_index(pow + 1),
                (k + 1) as usize,
                "2^{k} + 1 stays in bucket {}",
                k + 1
            );
        }
        // The top of the range: u64::MAX lands in the last bucket, so
        // recording can never index out of bounds.
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_count_sum_buckets() {
        let h = Histogram::new("t.hist");
        for v in [0u64, 1, 3, 1000, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 2004);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.bucket(10), 2);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.bucket(10), 0);
    }

    #[test]
    fn span_records_on_drop() {
        // Leak one histogram to get the 'static lifetime spans need.
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new("t.span")));
        {
            let _span = h.start_span();
            std::hint::black_box(0);
        }
        assert_eq!(h.count(), 1);
        drop(Span::disabled()); // must not panic or record anywhere
        assert_eq!(h.count(), 1);
    }
}
