//! Hierarchical trace capture: per-thread bounded ring buffers of
//! begin/end events with span IDs and parent links.
//!
//! Where the rest of `sram-probe` aggregates (counters, histograms),
//! this module records *structure*: which span ran inside which, on
//! which thread, for how long. The design constraints, in order:
//!
//! 1. **Lock-free hot path.** Emitting an event is a handful of relaxed
//!    atomic stores into a thread-owned ring buffer slot guarded by a
//!    per-slot sequence word (a seqlock). No mutex, no allocation, no
//!    syscall. Only the registration slow paths (first event on a
//!    thread, first use of a span name) take a lock.
//! 2. **Fixed byte budget.** Each thread owns one ring of
//!    [`slot capacity`](ring_slots) fixed-size slots. When the ring
//!    wraps, the oldest event is overwritten and counted in
//!    `probe.trace.dropped` — capture keeps the most recent window,
//!    which is what a live server wants.
//! 3. **Safe Rust.** The workspace forbids `unsafe`, so the seqlock is
//!    built from individually atomic `u64` words: a torn read cannot be
//!    undefined behavior, only a detectably inconsistent slot, which
//!    the reader discards.
//!
//! Tracing is **off by default** and independent of the metric
//! [`crate::Level`]: the `SRAM_TRACE` environment variable (`1`)
//! enables it at startup, [`set_tracing`] flips it at runtime, and
//! [`force`] enables it for the lifetime of a guard (used by
//! `sram-serve`'s per-request `"trace": true` flag). When disabled,
//! [`trace_span!`](crate::trace_span) is one relaxed atomic load and a
//! branch.
//!
//! Captured events export three ways: [`chrome_trace_json`] (loadable
//! in `chrome://tracing` or <https://ui.perfetto.dev>),
//! [`flame_summary`] (top-N self-time text table), and [`span_tree`]
//! (one request's subtree, which `sram-serve` inlines into responses).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::snapshot::format_nanos;

/// Maximum `(key, value)` argument pairs one event can carry.
pub const MAX_ARGS: usize = 4;

/// Payload words per slot: meta, id, parent, t, dur, 2×arg-keys,
/// 4×arg-values.
const PAYLOAD_WORDS: usize = 11;

/// Slot size in words (payload plus the seqlock word).
const SLOT_WORDS: usize = PAYLOAD_WORDS + 1;

/// Default ring capacity in slots per thread (× 96 bytes per slot).
const DEFAULT_SLOTS: usize = 8192;

/// Bounds on the `SRAM_TRACE_SLOTS` override.
const MIN_SLOTS: usize = 256;
const MAX_SLOTS: usize = 1 << 20;

/// Retries before a capture gives up on a slot being rewritten under it.
const READ_RETRIES: usize = 4;

/// Event phase, Chrome trace-event vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"ph":"B"`).
    Begin,
    /// Span end (`"ph":"E"`).
    End,
    /// Complete event with an explicit duration (`"ph":"X"`) — used
    /// for retroactively recorded intervals like queue waits that may
    /// overlap the emitting thread's own span stack.
    Complete,
}

impl Phase {
    fn from_code(code: u64) -> Self {
        match code {
            0 => Phase::Begin,
            1 => Phase::End,
            _ => Phase::Complete,
        }
    }

    fn code(self) -> u64 {
        match self {
            Phase::Begin => 0,
            Phase::End => 1,
            Phase::Complete => 2,
        }
    }
}

// ---------------------------------------------------------------------
// Enable state
// ---------------------------------------------------------------------

/// Sentinel meaning "not yet initialized from the environment".
const STATE_UNINIT: u32 = u32::MAX;

/// Bit 0: base enable (`SRAM_TRACE` / [`set_tracing`]); bits 1…: the
/// count of live [`ForceGuard`]s, shifted left by one. A single word so
/// the disabled fast path is one relaxed load.
static STATE: AtomicU32 = AtomicU32::new(STATE_UNINIT);

fn init_state() -> u32 {
    let base = match std::env::var("SRAM_TRACE") {
        Ok(value) if value.trim() == "1" => 1,
        _ => 0,
    };
    // A concurrent set_tracing/force may have initialized first; it wins.
    match STATE.compare_exchange(STATE_UNINIT, base, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => base,
        Err(current) => current,
    }
}

fn state() -> u32 {
    let s = STATE.load(Ordering::Relaxed);
    if s == STATE_UNINIT {
        init_state()
    } else {
        s
    }
}

/// `true` when trace events are being recorded — the fast path every
/// [`trace_span!`](crate::trace_span) checks first.
#[inline]
pub fn tracing_enabled() -> bool {
    state() != 0
}

/// Enables or disables tracing at runtime, superseding `SRAM_TRACE`.
/// Does not affect live [`force`] guards.
pub fn set_tracing(on: bool) {
    let _ = state();
    let _ = STATE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
        Some(if on { s | 1 } else { s & !1 })
    });
}

/// Keeps tracing enabled while alive, regardless of the base setting.
/// Guards nest (a counter, not a flag).
#[derive(Debug)]
#[must_use = "tracing stays forced only while the guard is alive"]
pub struct ForceGuard(());

/// Force-enables tracing for the lifetime of the returned guard.
/// `sram-serve` uses this to honor a single request's `"trace": true`
/// without flipping the global switch.
pub fn force() -> ForceGuard {
    let _ = state();
    STATE.fetch_add(2, Ordering::Relaxed);
    ForceGuard(())
}

impl Drop for ForceGuard {
    fn drop(&mut self) {
        STATE.fetch_sub(2, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Per-root sampling
// ---------------------------------------------------------------------

/// Default seed for [`sample`] when `SRAM_TRACE_SAMPLE_SEED` is unset
/// — fixed so two runs of the same workload sample the same roots.
pub const DEFAULT_SAMPLE_SEED: u64 = 0x5EED_7E1E;

/// Sentinel: sampling config not yet read from the environment. The
/// bit pattern is a specific NaN no clamped rate can produce.
const SAMPLE_UNINIT: u64 = u64::MAX;

static SAMPLE_RATE_BITS: AtomicU64 = AtomicU64::new(SAMPLE_UNINIT);
static SAMPLE_SEED: AtomicU64 = AtomicU64::new(DEFAULT_SAMPLE_SEED);

fn sample_rate() -> f64 {
    let bits = SAMPLE_RATE_BITS.load(Ordering::Relaxed);
    if bits != SAMPLE_UNINIT {
        return f64::from_bits(bits);
    }
    let rate = std::env::var("SRAM_TRACE_SAMPLE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map_or(1.0, |r| {
            if r.is_finite() {
                r.clamp(0.0, 1.0)
            } else {
                1.0
            }
        });
    let seed = std::env::var("SRAM_TRACE_SAMPLE_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_SAMPLE_SEED);
    SAMPLE_SEED.store(seed, Ordering::Relaxed);
    SAMPLE_RATE_BITS.store(rate.to_bits(), Ordering::Relaxed);
    rate
}

/// Overrides the sampling rate (clamped to `[0, 1]`) and seed at
/// runtime, superseding `SRAM_TRACE_SAMPLE` / `SRAM_TRACE_SAMPLE_SEED`.
pub fn set_sampling(rate: f64, seed: u64) {
    let rate = if rate.is_finite() {
        rate.clamp(0.0, 1.0)
    } else {
        1.0
    };
    SAMPLE_SEED.store(seed, Ordering::Relaxed);
    SAMPLE_RATE_BITS.store(rate.to_bits(), Ordering::Relaxed);
}

/// The effective `(rate, seed)` sampling configuration.
#[must_use]
pub fn sampling() -> (f64, u64) {
    let rate = sample_rate();
    (rate, SAMPLE_SEED.load(Ordering::Relaxed))
}

/// SplitMix64 — the same stateless-stream construction `sram-faults`
/// uses for per-point PRNGs: hashing `seed ^ key` makes the decision
/// for a given root a pure function of the two, independent of thread
/// interleaving or call order.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Probabilistically force-enables tracing for one root (a request, a
/// search, any unit with a stable `key`): returns a [`ForceGuard`]
/// for a deterministic, seeded fraction `rate` of keys and `None` for
/// the rest. At rate 1 every root traces (the pre-sampling behavior);
/// at rate 0 none do; in between a loaded node keeps tracing a
/// representative sample without ring pressure, and the sampled
/// subset is identical across runs with the same seed.
#[must_use]
pub fn sample(key: u64) -> Option<ForceGuard> {
    let rate = sample_rate();
    if rate >= 1.0 {
        return Some(force());
    }
    if rate <= 0.0 {
        return None;
    }
    let hash = splitmix64(SAMPLE_SEED.load(Ordering::Relaxed) ^ key);
    // Top 53 bits as a uniform fraction in [0, 1).
    let fraction = (hash >> 11) as f64 / (1u64 << 53) as f64;
    (fraction < rate).then(force)
}

// ---------------------------------------------------------------------
// Cross-process trace context
// ---------------------------------------------------------------------

/// Domain separator mixed into [`trace_id`] so trace ids never collide
/// with the [`sample`] hash stream for the same key.
const TRACE_ID_SALT: u64 = 0x7_1D5A_17ED_5EED;

/// A deterministic trace id for a root `key`: the same splitmix64
/// stream construction as [`sample`], salted so the id stream and the
/// sampling decision stream are independent. Never returns 0 (0 is
/// the "no span" sentinel throughout this module).
#[must_use]
pub fn trace_id(key: u64) -> u64 {
    let id = splitmix64(SAMPLE_SEED.load(Ordering::Relaxed) ^ TRACE_ID_SALT ^ key);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Propagated trace context: what a router sends along with a
/// forwarded request so the receiving node's span tree nests under the
/// caller's root instead of starting a disconnected fragment.
///
/// The wire form ([`TraceCtx::encode`]) is a W3C-`traceparent`-shaped
/// string, `00-<16 hex trace id>-<16 hex parent span>-<01|00>`, where
/// the final flag byte carries the sampling decision: the *sender*
/// samples (via [`sample`]), and a `00` flag tells the receiver to
/// skip tracing entirely — one seeded decision governs the whole
/// cross-process tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The distributed trace this request belongs to.
    pub trace_id: u64,
    /// The sender-side span the receiver's root should parent under.
    pub parent_span: u64,
    /// The sender's sampling decision; `false` short-circuits all
    /// receiver-side recording.
    pub sampled: bool,
}

impl TraceCtx {
    /// Renders the wire form: `00-{trace_id:016x}-{parent:016x}-{01|00}`.
    #[must_use]
    pub fn encode(&self) -> String {
        format!(
            "00-{:016x}-{:016x}-{}",
            self.trace_id,
            self.parent_span,
            if self.sampled { "01" } else { "00" }
        )
    }

    /// Parses the wire form. Returns `None` for anything malformed: a
    /// wrong version, field count, field width, non-hex digits, or an
    /// unknown flag byte.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('-');
        let (version, trace, parent, flags) =
            (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
        if parts.next().is_some() || version != "00" {
            return None;
        }
        if trace.len() != 16 || parent.len() != 16 {
            return None;
        }
        let trace_id = u64::from_str_radix(trace, 16).ok()?;
        let parent_span = u64::from_str_radix(parent, 16).ok()?;
        let sampled = match flags {
            "01" => true,
            "00" => false,
            _ => return None,
        };
        Some(Self {
            trace_id,
            parent_span,
            sampled,
        })
    }
}

// ---------------------------------------------------------------------
// Clock, span ids, name interning
// ---------------------------------------------------------------------

static ANCHOR: LazyLock<Instant> = LazyLock::new(Instant::now);

/// Nanoseconds since the process's trace epoch (first use).
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(ANCHOR.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Span ids are process-global and never reused; 0 means "no parent".
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

#[derive(Default)]
struct NameTable {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

static NAMES: LazyLock<Mutex<NameTable>> = LazyLock::new(|| Mutex::new(NameTable::default()));

/// Interns a span or argument name, returning its stable numeric id.
/// Call sites cache the id (the [`trace_span!`](crate::trace_span)
/// macro does so in a per-site `OnceLock`), so the intern lock is a
/// once-per-name cost.
#[must_use]
pub fn intern(name: &'static str) -> u32 {
    let mut table = NAMES.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(&id) = table.by_name.get(name) {
        return id;
    }
    let id = u32::try_from(table.names.len()).unwrap_or(u32::MAX);
    if id != u32::MAX {
        table.names.push(name);
        table.by_name.insert(name, id);
    }
    id
}

fn name_snapshot() -> Vec<&'static str> {
    NAMES
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .names
        .clone()
}

// ---------------------------------------------------------------------
// Ring buffers
// ---------------------------------------------------------------------

/// Ring capacity in slots per thread: `SRAM_TRACE_SLOTS` rounded down
/// to a power of two and clamped to `[256, 1 Mi]`; default 8192
/// (768 KiB per thread).
#[must_use]
pub fn ring_slots() -> usize {
    static SLOTS: LazyLock<usize> = LazyLock::new(|| {
        let requested = std::env::var("SRAM_TRACE_SLOTS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_SLOTS);
        let clamped = requested.clamp(MIN_SLOTS, MAX_SLOTS);
        // Power of two so the wrap mask is a single AND.
        if clamped.is_power_of_two() {
            clamped
        } else {
            (clamped / 2 + 1).next_power_of_two()
        }
    });
    *SLOTS
}

/// One thread's event ring. The owning thread is the only writer; any
/// thread may read during [`capture`]. Each slot is a seqlock: the
/// sequence word holds `2 × event_index + 1` while the write is in
/// flight and `2 × event_index + 2` once complete, so a reader can both
/// detect torn slots and recover the per-thread emission order.
struct RingBuffer {
    tid: u32,
    capacity: usize,
    /// Monotonic count of events ever written to this ring.
    head: AtomicU64,
    /// Event indices below this are logically cleared.
    floor: AtomicU64,
    slots: Box<[AtomicU64]>,
}

impl RingBuffer {
    fn new(tid: u32, capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(capacity * SLOT_WORDS);
        slots.resize_with(capacity * SLOT_WORDS, || AtomicU64::new(0));
        Self {
            tid,
            capacity,
            head: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Writer-side push; owner thread only.
    fn push(&self, payload: &[u64; PAYLOAD_WORDS]) {
        let head = self.head.load(Ordering::Relaxed);
        let base = (head as usize & (self.capacity - 1)) * SLOT_WORDS;
        self.slots[base].store(head * 2 + 1, Ordering::Release);
        for (offset, &word) in payload.iter().enumerate() {
            self.slots[base + 1 + offset].store(word, Ordering::Release);
        }
        self.slots[base].store(head * 2 + 2, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
        if head >= self.capacity as u64 {
            note_dropped();
        }
    }

    /// Reader-side decode of every consistent, uncleared slot.
    fn read_into(&self, names: &[&'static str], out: &mut Vec<TraceEvent>) {
        let floor = self.floor.load(Ordering::Acquire);
        let mut payload = [0u64; PAYLOAD_WORDS];
        for slot in 0..self.capacity {
            let base = slot * SLOT_WORDS;
            for _ in 0..READ_RETRIES {
                let before = self.slots[base].load(Ordering::Acquire);
                if before == 0 || before % 2 == 1 {
                    // Empty, or a write is in flight right now; a torn
                    // event is worth less than a stalled capture.
                    break;
                }
                for (offset, word) in payload.iter_mut().enumerate() {
                    *word = self.slots[base + 1 + offset].load(Ordering::Acquire);
                }
                let after = self.slots[base].load(Ordering::Acquire);
                if before != after {
                    continue; // overwritten mid-read; retry
                }
                let index = before / 2 - 1;
                if index >= floor {
                    out.push(decode(self.tid, index, &payload, names));
                }
                break;
            }
        }
    }
}

static BUFFERS: LazyLock<Mutex<Vec<Arc<RingBuffer>>>> = LazyLock::new(|| Mutex::new(Vec::new()));

/// Rings whose owning thread has exited, available for reuse so a
/// server accepting many short-lived connections does not grow the
/// buffer set without bound.
static POOL: LazyLock<Mutex<Vec<Arc<RingBuffer>>>> = LazyLock::new(|| Mutex::new(Vec::new()));

fn dropped_counter() -> &'static crate::Counter {
    static HANDLE: OnceLock<&'static crate::Counter> = OnceLock::new();
    HANDLE.get_or_init(|| crate::counter("probe.trace.dropped"))
}

static DROPPED: AtomicU64 = AtomicU64::new(0);

fn note_dropped() {
    DROPPED.fetch_add(1, Ordering::Relaxed);
    // Mirrored into the metric registry (bypassing the level gate —
    // a drop must be visible whenever it happens).
    dropped_counter().inc();
}

/// Events overwritten before any capture saw them, process lifetime
/// total (also exported as the `probe.trace.dropped` counter).
#[must_use]
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

struct LocalTrace {
    buf: Arc<RingBuffer>,
    /// Open spans on this thread, innermost last.
    stack: Vec<u64>,
    /// Cross-thread parents adopted via [`adopt_parent`].
    adopted: Vec<u64>,
}

impl LocalTrace {
    fn new() -> Self {
        let pooled = POOL.lock().unwrap_or_else(PoisonError::into_inner).pop();
        let buf = pooled.unwrap_or_else(|| {
            let mut buffers = BUFFERS.lock().unwrap_or_else(PoisonError::into_inner);
            let ring = Arc::new(RingBuffer::new(
                u32::try_from(buffers.len()).unwrap_or(u32::MAX),
                ring_slots(),
            ));
            buffers.push(Arc::clone(&ring));
            ring
        });
        Self {
            buf,
            stack: Vec::new(),
            adopted: Vec::new(),
        }
    }
}

impl Drop for LocalTrace {
    fn drop(&mut self) {
        // Return the ring for reuse; its events stay readable (the Arc
        // also lives in BUFFERS) until another thread recycles it.
        POOL.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&self.buf));
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalTrace>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut LocalTrace) -> R) -> Option<R> {
    LOCAL
        .try_with(|cell| {
            let mut slot = cell.borrow_mut();
            f(slot.get_or_insert_with(LocalTrace::new))
        })
        .ok()
}

#[allow(clippy::too_many_arguments)]
fn emit(
    local: &mut LocalTrace,
    phase: Phase,
    name_id: u32,
    id: u64,
    parent: u64,
    t_ns: u64,
    dur_ns: u64,
    args: &[(u32, i64)],
) {
    let argc = args.len().min(MAX_ARGS);
    let mut payload = [0u64; PAYLOAD_WORDS];
    payload[0] = u64::from(name_id) | (phase.code() << 32) | ((argc as u64) << 40);
    payload[1] = id;
    payload[2] = parent;
    payload[3] = t_ns;
    payload[4] = dur_ns;
    for (i, &(key, value)) in args.iter().take(argc).enumerate() {
        payload[5 + i / 2] |= u64::from(key) << (32 * (i % 2));
        payload[7 + i] = value as u64;
    }
    local.buf.push(&payload);
}

fn decode(
    tid: u32,
    index: u64,
    payload: &[u64; PAYLOAD_WORDS],
    names: &[&'static str],
) -> TraceEvent {
    let resolve = |id: u32| names.get(id as usize).copied().unwrap_or("<unknown>");
    let meta = payload[0];
    let name_id = (meta & 0xffff_ffff) as u32;
    let phase = Phase::from_code((meta >> 32) & 0xff);
    let argc = ((meta >> 40) & 0xff) as usize;
    let mut args = Vec::with_capacity(argc.min(MAX_ARGS));
    for i in 0..argc.min(MAX_ARGS) {
        let key = ((payload[5 + i / 2] >> (32 * (i % 2))) & 0xffff_ffff) as u32;
        args.push((resolve(key), payload[7 + i] as i64));
    }
    TraceEvent {
        name: resolve(name_id),
        phase,
        id: payload[1],
        parent: payload[2],
        tid,
        seq: index,
        t_ns: payload[3],
        dur_ns: payload[4],
        args,
    }
}

// ---------------------------------------------------------------------
// Span guards and explicit emission
// ---------------------------------------------------------------------

/// RAII trace span: emits a begin event on creation and an end event
/// (carrying any [`args`](TraceSpan::arg)) on drop. Created by the
/// [`trace_span!`](crate::trace_span) macro; bind it to a named
/// variable, not `_`, or it ends immediately.
#[derive(Debug)]
#[must_use = "binding a trace span to `_` drops it immediately; use `let _span = ...`"]
pub struct TraceSpan {
    id: u64,
    name_id: u32,
    args: [(u32, i64); MAX_ARGS],
    argc: u8,
    live: bool,
}

impl TraceSpan {
    /// A no-op guard (what disabled call sites get).
    pub const fn disabled() -> Self {
        Self {
            id: 0,
            name_id: 0,
            args: [(0, 0); MAX_ARGS],
            argc: 0,
            live: false,
        }
    }

    /// Begins a span for an interned name now. Returns a disabled guard
    /// when tracing is off.
    pub fn begin(name_id: u32) -> Self {
        Self::begin_at(name_id, now_ns())
    }

    /// Begins a span with an explicit (earlier) start timestamp — used
    /// when the decision to trace is made after the work started, e.g.
    /// a request parsed before its `"trace": true` flag was visible.
    pub fn begin_at(name_id: u32, t_ns: u64) -> Self {
        if !tracing_enabled() {
            return Self::disabled();
        }
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let emitted = with_local(|local| {
            let parent = local
                .stack
                .last()
                .copied()
                .or_else(|| local.adopted.last().copied())
                .unwrap_or(0);
            emit(local, Phase::Begin, name_id, id, parent, t_ns, 0, &[]);
            local.stack.push(id);
        });
        if emitted.is_none() {
            return Self::disabled();
        }
        Self {
            id,
            name_id,
            args: [(0, 0); MAX_ARGS],
            argc: 0,
            live: true,
        }
    }

    /// Whether this guard records anything.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.live
    }

    /// This span's id (0 when disabled) — the parent handle other
    /// threads adopt via [`adopt_parent`] or [`emit_complete`].
    #[must_use]
    pub fn id(&self) -> u64 {
        if self.live {
            self.id
        } else {
            0
        }
    }

    /// Attaches a `(key, value)` argument, recorded on the end event.
    /// At most [`MAX_ARGS`] stick; later ones are silently ignored.
    pub fn arg(&mut self, key: &'static str, value: i64) {
        if self.live && usize::from(self.argc) < MAX_ARGS {
            self.args[usize::from(self.argc)] = (intern(key), value);
            self.argc += 1;
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let end = now_ns();
        let (id, name_id) = (self.id, self.name_id);
        let args = &self.args[..usize::from(self.argc)];
        let _ = with_local(|local| {
            // Spans normally end innermost-first; tolerate out-of-order
            // drops rather than corrupting the stack.
            if local.stack.last() == Some(&id) {
                local.stack.pop();
            } else {
                local.stack.retain(|&open| open != id);
            }
            emit(local, Phase::End, name_id, id, 0, end, 0, args);
        });
    }
}

/// Begins a span by name at an explicit start time (rare-path
/// convenience that interns on every call; hot paths use the
/// [`trace_span!`](crate::trace_span) macro's cached id).
pub fn span_at(name: &'static str, t_ns: u64) -> TraceSpan {
    if !tracing_enabled() {
        return TraceSpan::disabled();
    }
    TraceSpan::begin_at(intern(name), t_ns)
}

/// Emits one complete (`"X"`) event for an interval measured
/// elsewhere, parented to `parent` (0 for none). Used for intervals
/// that cannot be RAII spans — e.g. a queue wait whose start was
/// stamped by the enqueuing thread — and rendered on a side lane so an
/// overlap with the emitting thread's own spans cannot break begin/end
/// nesting.
pub fn emit_complete(
    name: &'static str,
    parent: u64,
    start_ns: u64,
    end_ns: u64,
    args: &[(&'static str, i64)],
) {
    if !tracing_enabled() {
        return;
    }
    let name_id = intern(name);
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let mut encoded = [(0u32, 0i64); MAX_ARGS];
    let argc = args.len().min(MAX_ARGS);
    for (slot, &(key, value)) in encoded.iter_mut().zip(args.iter().take(argc)) {
        *slot = (intern(key), value);
    }
    let _ = with_local(|local| {
        emit(
            local,
            Phase::Complete,
            name_id,
            id,
            parent,
            start_ns,
            end_ns.saturating_sub(start_ns),
            &encoded[..argc],
        );
    });
}

/// Makes `parent` the default parent for spans this thread opens while
/// the guard lives (only when the thread's own span stack is empty).
/// This is how a worker thread nests its work under a request's root
/// span that lives on the connection thread.
#[derive(Debug)]
#[must_use = "the adopted parent applies only while the guard is alive"]
pub struct AdoptGuard {
    id: u64,
    active: bool,
}

/// Adopts a cross-thread parent span id for the current thread.
pub fn adopt_parent(id: u64) -> AdoptGuard {
    let active = id != 0 && with_local(|local| local.adopted.push(id)).is_some();
    AdoptGuard { id, active }
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let id = self.id;
        let _ = with_local(|local| {
            if local.adopted.last() == Some(&id) {
                local.adopted.pop();
            } else {
                local.adopted.retain(|&open| open != id);
            }
        });
    }
}

// ---------------------------------------------------------------------
// Capture and export
// ---------------------------------------------------------------------

/// One decoded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (interned).
    pub name: &'static str,
    /// Begin, end, or complete.
    pub phase: Phase,
    /// Span id; begin/end pairs share it.
    pub id: u64,
    /// Parent span id (0 = root). Set on begin and complete events.
    pub parent: u64,
    /// Ring index of the emitting thread.
    pub tid: u32,
    /// Per-thread emission sequence number.
    pub seq: u64,
    /// Event time (begin time for complete events), ns since the trace
    /// epoch.
    pub t_ns: u64,
    /// Duration for complete events; 0 for begin/end.
    pub dur_ns: u64,
    /// `(key, value)` arguments (end and complete events).
    pub args: Vec<(&'static str, i64)>,
}

/// Copies every live event out of every thread's ring, ordered by
/// timestamp (per-thread emission order breaks ties). The most recent
/// `ring_slots()` events per thread survive; older ones were
/// overwritten and counted in [`dropped`].
#[must_use]
pub fn capture() -> Vec<TraceEvent> {
    let buffers: Vec<Arc<RingBuffer>> = BUFFERS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let names = name_snapshot();
    let mut events = Vec::new();
    for buffer in &buffers {
        buffer.read_into(&names, &mut events);
    }
    events.sort_by_key(|e| (e.t_ns, e.tid, e.seq));
    events
}

/// Logically clears every ring (events already written become
/// invisible to [`capture`]; the byte budget is untouched). The
/// [`dropped`] total is cumulative and not reset.
pub fn clear() {
    let buffers: Vec<Arc<RingBuffer>> = BUFFERS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    for buffer in &buffers {
        buffer
            .floor
            .store(buffer.head.load(Ordering::Acquire), Ordering::Release);
    }
}

/// Complete events render on a separate Chrome lane (`tid + 1000`) so
/// their overlap with the thread's own stack stays legal.
const COMPLETE_LANE_OFFSET: u32 = 1000;

/// Renders events as Chrome trace-event JSON — an object with a
/// `"traceEvents"` array — loadable in `chrome://tracing` and Perfetto.
/// Timestamps are microseconds (`ts`/`dur`), as the format requires.
/// All events share `pid` 1; multi-process captures go through
/// [`chrome_trace_json_labeled`], which gives each source its own lane.
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    chrome_trace_json_labeled(&[(1, "sram", events)])
}

/// Renders several event sources (e.g. a router and each cluster node)
/// into one Chrome trace. Each `(pid, label, events)` source renders
/// under its own `pid`, announced with a `process_name` metadata (`M`)
/// event so viewers show the label instead of a bare number — without
/// this, merged node+router captures all land on `pid` 1 and draw on
/// top of each other.
#[must_use]
pub fn chrome_trace_json_labeled(sources: &[(u32, &str, &[TraceEvent])]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (pid, label, events) in sources {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(label),
        );
        for event in *events {
            out.push(',');
            let (ph, tid) = match event.phase {
                Phase::Begin => ("B", event.tid),
                Phase::End => ("E", event.tid),
                Phase::Complete => ("X", event.tid + COMPLETE_LANE_OFFSET),
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"sram\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{:.3}",
                escape(event.name),
                event.t_ns as f64 / 1e3,
            );
            if event.phase == Phase::Complete {
                let _ = write!(out, ",\"dur\":{:.3}", event.dur_ns as f64 / 1e3);
            }
            let mut wrote_args = false;
            if event.id != 0 {
                let _ = write!(out, ",\"args\":{{\"span\":{}", event.id);
                wrote_args = true;
                if event.parent != 0 {
                    let _ = write!(out, ",\"parent\":{}", event.parent);
                }
            }
            for (key, value) in &event.args {
                if !wrote_args {
                    out.push_str(",\"args\":{");
                    wrote_args = true;
                    let _ = write!(out, "\"{}\":{value}", escape(key));
                } else {
                    let _ = write!(out, ",\"{}\":{value}", escape(key));
                }
            }
            if wrote_args {
                out.push('}');
            }
            out.push('}');
        }
    }
    out.push_str("]}");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One reconstructed span interval.
#[derive(Debug, Clone)]
struct Interval {
    name: &'static str,
    parent: u64,
    start_ns: u64,
    end_ns: u64,
    args: Vec<(&'static str, i64)>,
}

/// Pairs begin/end events (and adopts complete events) into intervals
/// keyed by span id. Unmatched begins (span still open at capture) are
/// closed at the latest timestamp seen.
fn intervals(events: &[TraceEvent]) -> HashMap<u64, Interval> {
    let horizon = events
        .iter()
        .map(|e| e.t_ns.saturating_add(e.dur_ns))
        .max()
        .unwrap_or(0);
    let mut spans: HashMap<u64, Interval> = HashMap::new();
    for event in events {
        match event.phase {
            Phase::Begin => {
                spans.insert(
                    event.id,
                    Interval {
                        name: event.name,
                        parent: event.parent,
                        start_ns: event.t_ns,
                        end_ns: horizon,
                        args: Vec::new(),
                    },
                );
            }
            Phase::End => {
                if let Some(interval) = spans.get_mut(&event.id) {
                    interval.end_ns = event.t_ns;
                    interval.args = event.args.clone();
                }
                // An end whose begin was overwritten is unusable: we
                // know neither its start nor its parent.
            }
            Phase::Complete => {
                spans.insert(
                    event.id,
                    Interval {
                        name: event.name,
                        parent: event.parent,
                        start_ns: event.t_ns,
                        end_ns: event.t_ns.saturating_add(event.dur_ns),
                        args: event.args.clone(),
                    },
                );
            }
        }
    }
    spans
}

/// Renders a top-N self-time table by span name. Self time is a span's
/// duration minus its direct children's durations, summed over every
/// occurrence of the name — the classic flame-graph aggregation,
/// without leaving the terminal.
#[must_use]
pub fn flame_summary(events: &[TraceEvent], top_n: usize) -> String {
    let spans = intervals(events);
    // Direct-child time per parent span id.
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for interval in spans.values() {
        if interval.parent != 0 {
            *child_ns.entry(interval.parent).or_insert(0) +=
                interval.end_ns.saturating_sub(interval.start_ns);
        }
    }
    // Aggregate by name: (count, total, self).
    let mut by_name: HashMap<&'static str, (u64, u64, u64)> = HashMap::new();
    for (id, interval) in &spans {
        let total = interval.end_ns.saturating_sub(interval.start_ns);
        let own = total.saturating_sub(child_ns.get(id).copied().unwrap_or(0));
        let entry = by_name.entry(interval.name).or_insert((0, 0, 0));
        entry.0 += 1;
        entry.1 += total;
        entry.2 += own;
    }
    let mut rows: Vec<(&'static str, (u64, u64, u64))> = by_name.into_iter().collect();
    rows.sort_by(|a, b| b.1 .2.cmp(&a.1 .2).then(a.0.cmp(b.0)));
    rows.truncate(top_n.max(1));

    if rows.is_empty() {
        return String::from("  (no trace events captured)\n");
    }
    let name_width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0).max(16);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<name_width$}  {:>8}  {:>10}  {:>10}",
        "span", "count", "total", "self"
    );
    for (name, (count, total, own)) in rows {
        let _ = writeln!(
            out,
            "  {name:<name_width$}  {count:>8}  {:>10}  {:>10}",
            format_nanos(total as f64),
            format_nanos(own as f64),
        );
    }
    out
}

/// One node of a reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name.
    pub name: &'static str,
    /// Start, ns since the trace epoch.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Arguments recorded on the span's end (or complete) event.
    pub args: Vec<(&'static str, i64)>,
    /// Child spans, by start time.
    pub children: Vec<SpanNode>,
}

/// Tree depth guard: a parent cycle (possible only from a torn or
/// recycled slot) must not recurse forever.
const MAX_TREE_DEPTH: usize = 64;

/// Reconstructs the span tree rooted at span id `root` from captured
/// events — how a traced `sram-serve` request gets its own trace
/// inlined into the response. Returns `None` when the root's begin
/// event was already overwritten.
#[must_use]
pub fn span_tree(events: &[TraceEvent], root: u64) -> Option<SpanNode> {
    let spans = intervals(events);
    let mut children: HashMap<u64, Vec<u64>> = HashMap::new();
    for (&id, interval) in &spans {
        if interval.parent != 0 {
            children.entry(interval.parent).or_default().push(id);
        }
    }
    build_node(root, &spans, &children, 0)
}

fn build_node(
    id: u64,
    spans: &HashMap<u64, Interval>,
    children: &HashMap<u64, Vec<u64>>,
    depth: usize,
) -> Option<SpanNode> {
    if depth >= MAX_TREE_DEPTH {
        return None;
    }
    let interval = spans.get(&id)?;
    let mut kids: Vec<SpanNode> = children
        .get(&id)
        .map(|ids| {
            ids.iter()
                .filter_map(|&child| build_node(child, spans, children, depth + 1))
                .collect()
        })
        .unwrap_or_default();
    kids.sort_by_key(|k| k.start_ns);
    Some(SpanNode {
        name: interval.name,
        start_ns: interval.start_ns,
        dur_ns: interval.end_ns.saturating_sub(interval.start_ns),
        args: interval.args.clone(),
        children: kids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace tests share the global enable state and rings; serialize
    /// them (other modules' tests never touch tracing).
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A tiny Chrome-trace well-formedness check: every `B` has a
    /// matching later `E` with the same tid, LIFO-nested per tid.
    fn assert_chrome_well_formed(events: &[TraceEvent]) {
        let mut stacks: HashMap<u32, Vec<u64>> = HashMap::new();
        for event in events {
            match event.phase {
                Phase::Begin => stacks.entry(event.tid).or_default().push(event.id),
                Phase::End => {
                    let top = stacks.entry(event.tid).or_default().pop();
                    assert_eq!(top, Some(event.id), "E must close the innermost B");
                }
                Phase::Complete => {}
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
        }
    }

    #[test]
    fn disabled_span_is_inert() {
        let _guard = serial();
        assert!(!TraceSpan::disabled().is_recording());
        assert_eq!(TraceSpan::disabled().id(), 0);
        let mut span = TraceSpan::disabled();
        span.arg("ignored", 1);
        drop(span); // must not emit or touch the ring
    }

    #[test]
    fn spans_nest_and_capture_decodes() {
        let _guard = serial();
        let force = force();
        let (outer_id, inner_id) = {
            let outer = crate::trace_span!("test.outer_a");
            let inner = {
                let mut inner = crate::trace_span!("test.inner_a");
                inner.arg("examined", 42);
                inner.arg("feasible", 7);
                inner.id()
            };
            (outer.id(), inner)
        };
        let events = capture();
        drop(force);

        let begin = events
            .iter()
            .find(|e| e.id == inner_id && e.phase == Phase::Begin)
            .expect("inner begin");
        assert_eq!(begin.name, "test.inner_a");
        assert_eq!(begin.parent, outer_id, "parent link is the open outer span");
        let end = events
            .iter()
            .find(|e| e.id == inner_id && e.phase == Phase::End)
            .expect("inner end");
        assert_eq!(end.args, vec![("examined", 42), ("feasible", 7)]);
        let ours: Vec<TraceEvent> = events
            .iter()
            .filter(|e| e.id == inner_id || e.id == outer_id)
            .cloned()
            .collect();
        assert_chrome_well_formed(&ours);
    }

    #[test]
    fn trace_span_macro_is_disabled_without_force() {
        let _guard = serial();
        // Base state may have been initialized from the env by another
        // test; pin it off explicitly.
        set_tracing(false);
        let span = crate::trace_span!("test.should_not_record");
        assert!(!span.is_recording());
        drop(span);
        assert!(
            !capture().iter().any(|e| e.name == "test.should_not_record"),
            "disabled span must not emit"
        );
    }

    #[test]
    fn set_tracing_round_trips() {
        let _guard = serial();
        set_tracing(true);
        assert!(tracing_enabled());
        let span = crate::trace_span!("test.enabled_by_set");
        assert!(span.is_recording());
        drop(span);
        set_tracing(false);
        assert!(!tracing_enabled());
        // A force guard overrides the base state and nests.
        let f1 = force();
        let f2 = force();
        assert!(tracing_enabled());
        drop(f1);
        assert!(tracing_enabled());
        drop(f2);
        assert!(!tracing_enabled());
    }

    #[test]
    fn sampling_is_deterministic_and_proportional() {
        let _guard = serial();
        set_tracing(false);

        // Rate 1 always traces, rate 0 never does.
        set_sampling(1.0, DEFAULT_SAMPLE_SEED);
        assert!(sample(42).is_some());
        set_sampling(0.0, DEFAULT_SAMPLE_SEED);
        assert!(sample(42).is_none());

        // At rate r the sampled fraction of keys approaches r, and the
        // guard actually forces tracing while held.
        let n = 10_000u64;
        set_sampling(0.25, 7);
        let mut first: Vec<bool> = Vec::with_capacity(n as usize);
        let mut hits = 0u64;
        for key in 0..n {
            let guard = sample(key);
            if guard.is_some() {
                hits += 1;
                assert!(tracing_enabled(), "guard must force tracing");
            }
            first.push(guard.is_some());
        }
        assert!(!tracing_enabled(), "all guards dropped");
        let fraction = hits as f64 / n as f64;
        assert!(
            (fraction - 0.25).abs() < 0.02,
            "sampled fraction {fraction} far from rate 0.25"
        );

        // Same seed → identical subset; different seed → different one.
        let second: Vec<bool> = (0..n).map(|key| sample(key).is_some()).collect();
        assert_eq!(first, second, "same seed must sample the same roots");
        set_sampling(0.25, 8);
        let reseeded: Vec<bool> = (0..n).map(|key| sample(key).is_some()).collect();
        assert_ne!(first, reseeded, "a new seed must pick a new subset");

        set_sampling(1.0, DEFAULT_SAMPLE_SEED);
    }

    #[test]
    fn emit_complete_records_an_x_event() {
        let _guard = serial();
        let force = force();
        let root = span_at("test.root_x", now_ns());
        let root_id = root.id();
        emit_complete("test.queue_wait_x", root_id, 100, 350, &[("batch", 3)]);
        drop(root);
        let events = capture();
        drop(force);
        let x = events
            .iter()
            .find(|e| e.name == "test.queue_wait_x")
            .expect("complete event");
        assert_eq!(x.phase, Phase::Complete);
        assert_eq!(x.parent, root_id);
        assert_eq!((x.t_ns, x.dur_ns), (100, 250));
        assert_eq!(x.args, vec![("batch", 3)]);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _guard = serial();
        let before_drops = dropped();
        let ring = RingBuffer::new(9999, MIN_SLOTS);
        let payload = [7u64; PAYLOAD_WORDS];
        for _ in 0..(MIN_SLOTS + 10) {
            ring.push(&payload);
        }
        assert_eq!(dropped() - before_drops, 10, "overwrites are counted");
        assert!(
            dropped_counter().get() >= 10,
            "mirrored into probe.trace.dropped"
        );
        let mut out = Vec::new();
        ring.read_into(&[], &mut out);
        assert_eq!(out.len(), MIN_SLOTS, "ring keeps the newest window");
        let min_seq = out.iter().map(|e| e.seq).min().unwrap();
        assert_eq!(min_seq, 10, "the 10 oldest events were overwritten");
    }

    #[test]
    fn clear_hides_prior_events() {
        let _guard = serial();
        let force = force();
        let marker = {
            let span = crate::trace_span!("test.cleared_away");
            span.id()
        };
        clear();
        assert!(
            !capture().iter().any(|e| e.id == marker),
            "cleared events must not be captured"
        );
        let kept = {
            let span = crate::trace_span!("test.kept_after_clear");
            span.id()
        };
        assert!(capture().iter().any(|e| e.id == kept));
        drop(force);
    }

    #[test]
    fn chrome_export_is_valid_and_nested() {
        let _guard = serial();
        let force = force();
        clear();
        {
            let _outer = crate::trace_span!("test.chrome_outer");
            let _inner = crate::trace_span!("test.chrome_inner");
        }
        let events: Vec<TraceEvent> = capture()
            .into_iter()
            .filter(|e| e.name.starts_with("test.chrome_"))
            .collect();
        drop(force);
        assert_chrome_well_formed(&events);
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        assert!(json.contains("\"ph\":\"E\""), "{json}");
        assert!(json.contains("\"name\":\"test.chrome_inner\""), "{json}");
        // Balanced braces/brackets — cheap structural validity check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn flame_summary_attributes_self_time() {
        let _guard = serial();
        let force = force();
        clear();
        {
            let _outer = crate::trace_span!("test.flame_outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let inner = crate::trace_span!("test.flame_inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
            drop(inner);
        }
        let events: Vec<TraceEvent> = capture()
            .into_iter()
            .filter(|e| e.name.starts_with("test.flame_"))
            .collect();
        drop(force);
        let summary = flame_summary(&events, 10);
        assert!(summary.contains("test.flame_outer"), "{summary}");
        assert!(summary.contains("test.flame_inner"), "{summary}");
        let spans = intervals(&events);
        let outer = spans
            .values()
            .find(|s| s.name == "test.flame_outer")
            .unwrap();
        let inner = spans
            .values()
            .find(|s| s.name == "test.flame_inner")
            .unwrap();
        let outer_total = outer.end_ns - outer.start_ns;
        let inner_total = inner.end_ns - inner.start_ns;
        assert!(
            outer_total > inner_total,
            "outer contains inner: {outer_total} vs {inner_total}"
        );
    }

    #[test]
    fn span_tree_reconstructs_request_shape() {
        let _guard = serial();
        let force = force();
        let root_id = {
            let root = span_at("test.tree_root", now_ns());
            let id = root.id();
            emit_complete("test.tree_parse", id, now_ns(), now_ns() + 10, &[]);
            {
                let mut child = crate::trace_span!("test.tree_exec");
                child.arg("capacity", 4096);
            }
            id
        };
        let events = capture();
        drop(force);
        let tree = span_tree(&events, root_id).expect("root present");
        assert_eq!(tree.name, "test.tree_root");
        let child_names: Vec<&str> = tree.children.iter().map(|c| c.name).collect();
        assert!(child_names.contains(&"test.tree_parse"), "{child_names:?}");
        assert!(child_names.contains(&"test.tree_exec"), "{child_names:?}");
        let exec = tree
            .children
            .iter()
            .find(|c| c.name == "test.tree_exec")
            .unwrap();
        assert_eq!(exec.args, vec![("capacity", 4096)]);
        // An id nobody emitted has no tree.
        assert!(span_tree(&events, u64::MAX).is_none());
    }

    #[test]
    fn cross_thread_adoption_parents_worker_spans() {
        let _guard = serial();
        let force = force();
        let root = span_at("test.adopt_root", now_ns());
        let root_id = root.id();
        let worker_span = std::thread::spawn(move || {
            let _adopt = adopt_parent(root_id);
            let span = crate::trace_span!("test.adopt_child");
            span.id()
        })
        .join()
        .unwrap();
        drop(root);
        let events = capture();
        drop(force);
        let begin = events
            .iter()
            .find(|e| e.id == worker_span && e.phase == Phase::Begin)
            .expect("worker begin");
        assert_eq!(begin.parent, root_id, "worker span parents to adopted root");
        let tree = span_tree(&events, root_id).unwrap();
        assert!(tree.children.iter().any(|c| c.name == "test.adopt_child"));
    }

    #[test]
    fn intern_is_stable() {
        let a = intern("test.intern_name");
        let b = intern("test.intern_name");
        assert_eq!(a, b);
        assert_ne!(a, intern("test.intern_other"));
    }

    #[test]
    fn ring_slots_is_a_power_of_two_in_bounds() {
        let slots = ring_slots();
        assert!(slots.is_power_of_two());
        assert!((MIN_SLOTS..=MAX_SLOTS).contains(&slots));
    }

    #[test]
    fn trace_ctx_round_trips_through_the_wire_form() {
        for ctx in [
            TraceCtx {
                trace_id: 0xdead_beef_cafe_0001,
                parent_span: 42,
                sampled: true,
            },
            TraceCtx {
                trace_id: 1,
                parent_span: u64::MAX,
                sampled: false,
            },
        ] {
            let wire = ctx.encode();
            assert_eq!(TraceCtx::parse(&wire), Some(ctx), "{wire}");
        }
        let wire = TraceCtx {
            trace_id: 0xabc,
            parent_span: 7,
            sampled: true,
        }
        .encode();
        assert_eq!(wire, "00-0000000000000abc-0000000000000007-01");
    }

    #[test]
    fn trace_ctx_rejects_malformed_input() {
        for bad in [
            "",
            "00-0000000000000abc-0000000000000007", // missing flags
            "01-0000000000000abc-0000000000000007-01", // wrong version
            "00-0000000000000abc-0000000000000007-02", // unknown flag
            "00-0000000000000abc-0000000000000007-01-00", // extra field
            "00-abc-0000000000000007-01",           // short trace id
            "00-0000000000000abc-00000000000000zz-01", // non-hex
        ] {
            assert_eq!(TraceCtx::parse(bad), None, "{bad}");
        }
    }

    #[test]
    fn trace_id_is_deterministic_and_nonzero() {
        let _guard = serial();
        let (rate, seed) = sampling();
        set_sampling(rate, DEFAULT_SAMPLE_SEED);
        let a = trace_id(7);
        assert_eq!(a, trace_id(7), "same key, same seed → same id");
        assert_ne!(a, trace_id(8));
        assert_ne!(a, 0);
        // Distinct from the sampling hash stream for the same key.
        assert_ne!(a, splitmix64(DEFAULT_SAMPLE_SEED ^ 7));
        set_sampling(rate, seed);
    }

    #[test]
    fn labeled_chrome_export_gives_each_source_its_own_pid() {
        let _guard = serial();
        let force = force();
        clear();
        {
            let _span = crate::trace_span!("test.labeled_export");
        }
        let events: Vec<TraceEvent> = capture()
            .into_iter()
            .filter(|e| e.name == "test.labeled_export")
            .collect();
        drop(force);
        let json = chrome_trace_json_labeled(&[(1, "router", &events), (2, "node-0", &events)]);
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("\"args\":{\"name\":\"router\"}"), "{json}");
        assert!(json.contains("\"args\":{\"name\":\"node-0\"}"), "{json}");
        assert!(json.contains("\"pid\":2"), "{json}");
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count(), "{json}");
        // The single-source path still pins everything to pid 1.
        let solo = chrome_trace_json(&events);
        assert!(!solo.contains("\"pid\":2"), "{solo}");
    }
}
