//! Workspace-wide instrumentation: named counters, gauges, and timing
//! spans feeding log2-bucketed histograms, behind a global registry.
//!
//! The crate is std-only (atomics, [`std::time::Instant`], one mutex on
//! the registration slow path) so every layer of the workspace can
//! depend on it without pulling in an ecosystem.
//!
//! # Verbosity levels
//!
//! Instrumentation is **off by default**. The `SRAM_PROBE` environment
//! variable selects the level at startup, and [`set_level`] overrides
//! it at runtime (used by `reproduce --probe-json`, which must collect
//! metrics even when the variable is unset):
//!
//! | `SRAM_PROBE` | [`Level`] | effect |
//! | --- | --- | --- |
//! | unset / `0` | [`Level::Off`] | every probe macro is a branch-and-skip |
//! | `1` | [`Level::Summary`] | counters, gauges, and call-granularity spans |
//! | `2` | [`Level::Detail`] | adds high-frequency probes (per-iteration counters, per-solve histograms) |
//!
//! # Recording
//!
//! Call sites use the `probe_*` macros, which cache their registry
//! handle in a per-site `OnceLock` so the steady-state cost is one
//! relaxed atomic load (the level check) plus, when enabled, one
//! relaxed RMW:
//!
//! ```
//! use sram_probe::{probe_add, probe_inc, probe_span};
//!
//! sram_probe::set_level(sram_probe::Level::Summary);
//! probe_inc!("doc.calls");
//! probe_add!("doc.items", 3);
//! {
//!     let _span = probe_span!("doc.work_time");
//!     // ... timed region ...
//! }
//! let snap = sram_probe::snapshot();
//! assert_eq!(snap.counters["doc.calls"], 1);
//! assert_eq!(snap.counters["doc.items"], 3);
//! assert_eq!(snap.histograms["doc.work_time"].count, 1);
//! # sram_probe::set_level(sram_probe::Level::Off);
//! ```
//!
//! # Reading
//!
//! [`snapshot`] copies the registry into a plain [`Snapshot`], which
//! can be [diffed](Snapshot::diff) against an earlier snapshot,
//! [rendered](Snapshot::render_table) as an aligned table, or
//! [exported](Snapshot::to_json) as JSON (hand-rolled serializer —
//! this workspace links no serialization ecosystem). [`reset`] zeroes
//! every registered metric in place.
//!
//! # Tracing
//!
//! Aggregates say *how much*; the [`trace`] module says *where*:
//! hierarchical begin/end events in per-thread ring buffers, captured
//! on demand and exported as Chrome trace JSON, a text flame summary,
//! or a per-request span tree. Tracing has its own switch
//! (`SRAM_TRACE`, [`trace::set_tracing`], [`trace::force`]) so it can
//! run with metrics off and vice versa. [`trace_span!`] composes with
//! [`probe_span!`]: the former records structure, the latter feeds the
//! duration histogram. Under load, [`trace::sample`] force-enables
//! tracing for a seeded, deterministic fraction of roots
//! (`SRAM_TRACE_SAMPLE`) so a busy server keeps representative traces
//! without ring pressure.
//!
//! # Telemetry and logging
//!
//! The [`telemetry`] module turns point-in-time snapshots into a
//! windowed time series: a background sampler stores per-interval
//! deltas in a bounded ring (`SRAM_TELEMETRY_WINDOW` /
//! `SRAM_TELEMETRY_SLOTS`), with streaming p50/p90/p99 quantiles from
//! a mergeable log-linear histogram and a Prometheus-style text
//! exposition. The [`log`] module writes structured JSON-lines events
//! (`SRAM_LOG=path`, leveled) for rare operator-relevant moments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod level;
pub mod log;
mod metrics;
mod registry;
mod snapshot;
pub mod telemetry;
pub mod trace;

pub use level::{enabled, level, set_level, Level};
pub use metrics::{Counter, Gauge, Histogram, Span};
pub use registry::{counter, gauge, histogram, reset};
pub use snapshot::{snapshot, HistogramSnapshot, Snapshot};

/// Increments a named counter by one.
///
/// `probe_inc!("name")` records at [`Level::Summary`];
/// `probe_inc!(detail "name")` only at [`Level::Detail`].
#[macro_export]
macro_rules! probe_inc {
    (detail $name:expr) => {
        $crate::probe_add!(detail $name, 1u64)
    };
    ($name:expr) => {
        $crate::probe_add!($name, 1u64)
    };
}

/// Adds an amount to a named counter.
///
/// `probe_add!("name", n)` records at [`Level::Summary`];
/// `probe_add!(detail "name", n)` only at [`Level::Detail`].
#[macro_export]
macro_rules! probe_add {
    (detail $name:expr, $n:expr) => {{
        if $crate::enabled($crate::Level::Detail) {
            static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            HANDLE.get_or_init(|| $crate::counter($name)).add($n as u64);
        }
    }};
    ($name:expr, $n:expr) => {{
        if $crate::enabled($crate::Level::Summary) {
            static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            HANDLE.get_or_init(|| $crate::counter($name)).add($n as u64);
        }
    }};
}

/// Sets a named gauge to an `f64` value (last write wins).
#[macro_export]
macro_rules! probe_gauge {
    ($name:expr, $value:expr) => {{
        if $crate::enabled($crate::Level::Summary) {
            static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> =
                ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::gauge($name))
                .set($value as f64);
        }
    }};
}

/// Records a value into a named log2-bucketed histogram.
///
/// `probe_record!("name", v)` records at [`Level::Summary`];
/// `probe_record!(detail "name", v)` only at [`Level::Detail`].
#[macro_export]
macro_rules! probe_record {
    (detail $name:expr, $value:expr) => {{
        if $crate::enabled($crate::Level::Detail) {
            static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::histogram($name))
                .record($value as u64);
        }
    }};
    ($name:expr, $value:expr) => {{
        if $crate::enabled($crate::Level::Summary) {
            static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::histogram($name))
                .record($value as u64);
        }
    }};
}

/// Opens a hierarchical trace span (see [`trace`]): emits a begin
/// event now and an end event when the returned
/// [`trace::TraceSpan`] guard drops, parented to the innermost open
/// span on this thread (or an [`trace::adopt_parent`] adoption). Bind
/// the guard to a named variable, not `_`, or it ends immediately.
///
/// Arguments attach to the end event via
/// [`TraceSpan::arg`](trace::TraceSpan::arg):
///
/// ```
/// let _force = sram_probe::trace::force();
/// let mut span = sram_probe::trace_span!("doc.slice");
/// span.arg("examined", 128);
/// ```
///
/// When tracing is disabled the expansion is one relaxed atomic load
/// and a branch — no clock read, no ring-buffer touch. The span name
/// is interned once per call site (cached in a `OnceLock`).
#[macro_export]
macro_rules! trace_span {
    ($name:expr) => {{
        if $crate::trace::tracing_enabled() {
            static NAME: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::trace::TraceSpan::begin(*NAME.get_or_init(|| $crate::trace::intern($name)))
        } else {
            $crate::trace::TraceSpan::disabled()
        }
    }};
}

/// Starts a timing span feeding the named histogram (in nanoseconds);
/// the returned [`Span`] guard records on drop. Bind it to a named
/// variable (`let _span = ...`), not `_`, or it drops immediately.
///
/// Below the active level the expansion is a branch yielding
/// [`Span::disabled`], which never touches the registry or the clock —
/// near-zero work, tested in `tests/disabled_level.rs`.
///
/// `probe_span!("name")` times at [`Level::Summary`];
/// `probe_span!(detail "name")` only at [`Level::Detail`].
#[macro_export]
macro_rules! probe_span {
    (detail $name:expr) => {{
        if $crate::enabled($crate::Level::Detail) {
            static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            HANDLE.get_or_init(|| $crate::histogram($name)).start_span()
        } else {
            $crate::Span::disabled()
        }
    }};
    ($name:expr) => {{
        if $crate::enabled($crate::Level::Summary) {
            static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            HANDLE.get_or_init(|| $crate::histogram($name)).start_span()
        } else {
            $crate::Span::disabled()
        }
    }};
}
