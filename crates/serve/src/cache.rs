//! Sharded, content-addressed result cache with byte-budget LRU
//! eviction.
//!
//! Keys are the FNV-1a hash of a query's *canonical* rendering
//! ([`crate::Query::canonical`]), so two wire lines that differ only in
//! field order address the same entry. A 64-bit hash can collide, so
//! every entry also stores its canonical string and a lookup whose
//! canonical differs is a miss, never a wrong answer.
//!
//! The cache is split into shards, each behind its own mutex, so
//! concurrent workers rarely contend. Each shard enforces its slice of
//! the byte budget by evicting least-recently-used entries; recency is
//! a monotonic tick stamped on every hit.
//!
//! Counters are kept twice on purpose: struct-level atomics (exact,
//! queryable in unit tests regardless of probe state) and `sram-probe`
//! mirrors (`serve.cache.*`) for operational visibility.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::json::Json;

/// Cache sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of independently locked shards (rounded up to ≥ 1).
    pub shards: usize,
    /// Total byte budget across all shards (split evenly).
    pub byte_budget: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            byte_budget: 4 * 1024 * 1024,
        }
    }
}

/// A point-in-time copy of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups that returned a cached value.
    pub hits: u64,
    /// Lookups that found nothing (or a hash collision).
    pub misses: u64,
    /// Entries removed to respect the byte budget.
    pub evictions: u64,
    /// Entries stored (including overwrites).
    pub insertions: u64,
    /// Bytes currently resident.
    pub bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

struct Entry {
    canonical: String,
    value: Arc<Json>,
    size: usize,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    bytes: usize,
}

/// The sharded content-addressed cache.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    budget_per_shard: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    bytes: AtomicU64,
}

impl ResultCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let n = config.shards.max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            budget_per_shard: (config.byte_budget / n).max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // The FNV output is well mixed; low bits pick the shard.
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Looks up a result. `canonical` disambiguates hash collisions: a
    /// resident entry whose canonical string differs is a miss.
    pub fn get(&self, key: u64, canonical: &str) -> Option<Arc<Json>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let hit = match shard.entries.get_mut(&key) {
            Some(entry) if entry.canonical == canonical => {
                entry.last_used = tick;
                Some(Arc::clone(&entry.value))
            }
            _ => None,
        };
        drop(shard);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            sram_probe::probe_inc!("serve.cache.hits");
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            sram_probe::probe_inc!("serve.cache.misses");
        }
        hit
    }

    /// Stores a result, then evicts least-recently-used entries until
    /// the shard is back under its byte budget. An oversized value can
    /// evict everything including itself — the cache never holds more
    /// than its budget.
    pub fn insert(&self, key: u64, canonical: &str, value: Arc<Json>) {
        let size = canonical.len() + value.render().len() + ENTRY_OVERHEAD;
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);

        if let Some(old) = shard.entries.remove(&key) {
            shard.bytes -= old.size;
            self.bytes.fetch_sub(old.size as u64, Ordering::Relaxed);
        }
        shard.entries.insert(
            key,
            Entry {
                canonical: canonical.to_string(),
                value,
                size,
                last_used: tick,
            },
        );
        shard.bytes += size;
        self.bytes.fetch_add(size as u64, Ordering::Relaxed);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        sram_probe::probe_inc!("serve.cache.insertions");

        let mut evicted = 0u64;
        while shard.bytes > self.budget_per_shard && !shard.entries.is_empty() {
            let lru_key = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(lru_key) = lru_key else { break };
            if let Some(victim) = shard.entries.remove(&lru_key) {
                shard.bytes -= victim.size;
                self.bytes.fetch_sub(victim.size as u64, Ordering::Relaxed);
                evicted += 1;
            }
        }
        drop(shard);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            sram_probe::probe_add!("serve.cache.evictions", evicted);
        }
        sram_probe::probe_gauge!("serve.cache.bytes", self.bytes.load(Ordering::Relaxed));
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }

    /// Entries currently resident across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entries
                    .len()
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every resident entry as
    /// `(canonical query, cached result)` pairs, ordered by canonical
    /// string so persistence output is deterministic. Shards are locked
    /// one at a time, so the copy is per-shard consistent but not a
    /// global atomic snapshot — fine for spill-on-shutdown, where the
    /// workers have already drained.
    #[must_use]
    pub fn export(&self) -> Vec<(String, Arc<Json>)> {
        let mut out: Vec<(String, Arc<Json>)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for entry in shard.entries.values() {
                out.push((entry.canonical.clone(), Arc::clone(&entry.value)));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Fixed per-entry accounting overhead (hash-map slot, `Arc`, recency
/// bookkeeping) added to the measured payload size.
const ENTRY_OVERHEAD: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    fn val(s: &str) -> Arc<Json> {
        Arc::new(Json::Str(s.to_string()))
    }

    /// Single-shard cache so eviction order is fully deterministic.
    fn small_cache(byte_budget: usize) -> ResultCache {
        ResultCache::new(CacheConfig {
            shards: 1,
            byte_budget,
        })
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = small_cache(1 << 20);
        assert!(cache.get(1, "q1").is_none());
        cache.insert(1, "q1", val("r1"));
        let got = cache.get(1, "q1").expect("hit");
        assert_eq!(got.as_str(), Some("r1"));
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions), (1, 1, 1));
    }

    #[test]
    fn hash_collision_is_a_miss_not_a_wrong_answer() {
        let cache = small_cache(1 << 20);
        cache.insert(42, "query-a", val("a"));
        assert!(cache.get(42, "query-b").is_none());
        assert_eq!(cache.get(42, "query-a").unwrap().as_str(), Some("a"));
    }

    #[test]
    fn lru_eviction_respects_recency() {
        // Budget fits two entries; touching the older one makes the
        // other the victim.
        let entry_size = 2 + 5 + ENTRY_OVERHEAD; // canonical "qN" + rendered "\"rNN\""
        let cache = small_cache(2 * entry_size);
        cache.insert(1, "q1", val("r11"));
        cache.insert(2, "q2", val("r22"));
        assert_eq!(cache.len(), 2);
        cache.get(1, "q1").expect("q1 resident");
        cache.insert(3, "q3", val("r33"));
        assert!(cache.get(2, "q2").is_none(), "LRU entry evicted");
        assert!(cache.get(1, "q1").is_some(), "recently used survives");
        assert!(cache.get(3, "q3").is_some(), "new entry resident");
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn overwrite_replaces_without_leaking_bytes() {
        let cache = small_cache(1 << 20);
        cache.insert(7, "q", val("short"));
        let before = cache.counters().bytes;
        cache.insert(7, "q", val("a considerably longer payload"));
        let after = cache.counters().bytes;
        assert_eq!(cache.len(), 1);
        assert!(after > before);
        cache.insert(7, "q", val("short"));
        assert_eq!(cache.counters().bytes, before);
    }

    #[test]
    fn export_returns_all_entries_sorted_by_canonical() {
        let cache = small_cache(1 << 20);
        cache.insert(2, "q-b", val("b"));
        cache.insert(1, "q-a", val("a"));
        let entries = cache.export();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "q-a");
        assert_eq!(entries[1].0, "q-b");
        assert_eq!(entries[1].1.as_str(), Some("b"));
    }

    #[test]
    fn oversized_value_does_not_stick() {
        let cache = small_cache(8);
        cache.insert(1, "q1", val("way too large for an 8-byte budget"));
        assert!(cache.is_empty());
        assert_eq!(cache.counters().bytes, 0);
        assert!(cache.counters().evictions >= 1);
    }
}
