//! The query engine: the in-process API behind both the TCP server and
//! the `serve-bench` experiment.
//!
//! Three layers stack here:
//!
//! 1. **Result cache** ([`crate::ResultCache`]) — a repeated query is
//!    answered without touching the framework at all.
//! 2. **LUT store** — cell characterizations keyed by
//!    `(flavor, method)`. The store's mutex is held *across* a build,
//!    so a technology is characterized exactly once no matter how many
//!    batches race for it (the invariant `serve-bench` asserts).
//! 3. **Executors** — cache-missing queries run against the shared
//!    [`CellCharacterization`] through the framework's injectable-LUT
//!    entry points ([`CoOptimizationFramework::optimize_with_cell`]),
//!    which borrow `&self` and therefore fan out across worker threads.
//!
//! [`Engine::handle_batch`] is the batching scheduler: cache hits are
//! answered immediately, the misses are grouped by
//! [`crate::Query::char_key`], each group's characterization runs once,
//! and duplicate queries inside a batch are deduplicated by canonical
//! key so the search itself also runs once.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use sram_faults::CancelToken;

use crate::cache::{CacheConfig, CacheCounters, ResultCache};
use crate::error::{wire_status, ServeError};
use crate::json::Json;
use crate::query::{fnv1a64, Query, Request};
use sram_array::{ArrayModel, ArrayOrganization, Capacity};
use sram_cell::{CellCharacterization, MarginStats, YieldAnalysis};
use sram_coopt::{
    CoOptimizationFramework, CooptError, Method, OptimalDesign, ParetoFront, ParetoPoint,
    YieldConstraint,
};
use sram_device::VtFlavor;
use sram_units::Voltage;

/// The sigma multiplier reported by yield-check responses (the paper's
/// headline constraint is `μ − 3σ ≥ 0`).
const YIELD_K: f64 = 3.0;

/// Total characterization attempts per LUT build (one initial try plus
/// up to two retries) when the failure is transient.
const RETRY_ATTEMPTS: u32 = 3;

/// Base backoff before the first retry; doubles per attempt (1 ms,
/// 2 ms). Deterministic — no jitter — so fault-plan replays take the
/// same path.
const RETRY_BASE_BACKOFF: Duration = Duration::from_millis(1);

/// Queue fill fraction above which `health` degrades — the router
/// should start hedging before the queue rejects with `busy`.
const QUEUE_PRESSURE_DEGRADED: f64 = 0.8;

/// Long-window (whole ring) SLO burn above which `health` degrades:
/// burning faster than 1× means the error budget will not last.
const BURN_DEGRADED_LONG: f64 = 1.0;

/// Short-window (newest window) SLO burn above which `health` is
/// unhealthy — an active fire, not a slow leak.
const BURN_UNHEALTHY_SHORT: f64 = 10.0;

/// The query engine: framework + LUT store + result cache.
pub struct Engine {
    framework: CoOptimizationFramework,
    cache: ResultCache,
    luts: Mutex<HashMap<(VtFlavor, Method), Arc<CellCharacterization>>>,
    characterizations: AtomicU64,
    coalesced: AtomicU64,
    cross_coalesced: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    health_revision: AtomicU64,
    started: Instant,
}

impl Engine {
    /// Wraps a framework with a result cache of the given size.
    #[must_use]
    pub fn new(framework: CoOptimizationFramework, cache: CacheConfig) -> Self {
        Self {
            framework,
            cache: ResultCache::new(cache),
            luts: Mutex::new(HashMap::new()),
            characterizations: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            cross_coalesced: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            health_revision: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// The wrapped framework.
    #[must_use]
    pub fn framework(&self) -> &CoOptimizationFramework {
        &self.framework
    }

    /// Result-cache counters.
    #[must_use]
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Cell characterization passes performed so far.
    #[must_use]
    pub fn characterizations(&self) -> u64 {
        self.characterizations.load(Ordering::Relaxed)
    }

    /// Queries that shared a characterization pass with an earlier
    /// member of their own batch instead of paying for one.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Cache-missing queries that reused a LUT characterized by an
    /// *earlier batch* — the cross-batch analogue of
    /// [`Engine::coalesced`].
    #[must_use]
    pub fn cross_coalesced(&self) -> u64 {
        self.cross_coalesced.load(Ordering::Relaxed)
    }

    /// Requests handled (hits, misses, and errors).
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests that produced an error response.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Returns the shared characterization for a technology, building
    /// it at most once. The returned flag is `true` when this call
    /// performed the build.
    ///
    /// The store lock is deliberately held across the build: two
    /// batches racing for the same `(flavor, method)` must not both pay
    /// for the LUT pass. Distinct technologies briefly serialize behind
    /// the build; there are only four `(flavor, method)` pairs, so the
    /// window closes after warm-up.
    fn lut(
        &self,
        key: (VtFlavor, Method),
    ) -> Result<(Arc<CellCharacterization>, bool), ServeError> {
        let mut store = self.luts.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(cell) = store.get(&key) {
            return Ok((Arc::clone(cell), false));
        }
        let _span = sram_probe::probe_span!("serve.batch.characterize_ns");
        let _trace = sram_probe::trace_span!("serve.characterize");
        let cell = Arc::new(self.characterize_with_retry(key)?);
        store.insert(key, Arc::clone(&cell));
        self.characterizations.fetch_add(1, Ordering::Relaxed);
        sram_probe::probe_inc!("serve.batch.characterizations");
        Ok((cell, true))
    }

    /// Characterizes with bounded retry: transient failures (injected
    /// NaN measurements, non-convergent SPICE sweeps) get up to
    /// [`RETRY_ATTEMPTS`] tries with a deterministic doubling backoff;
    /// anything fatal propagates immediately.
    fn characterize_with_retry(
        &self,
        key: (VtFlavor, Method),
    ) -> Result<CellCharacterization, ServeError> {
        let mut attempt: u32 = 0;
        loop {
            match self.framework.characterize_cell(key.0, key.1) {
                Ok(cell) => {
                    if attempt > 0 {
                        sram_probe::probe_inc!("serve.retry.recovered");
                    }
                    return Ok(cell);
                }
                Err(e) => {
                    let err = ServeError::from(e);
                    if attempt + 1 >= RETRY_ATTEMPTS || !err.is_retryable() {
                        return Err(err);
                    }
                    attempt += 1;
                    sram_probe::probe_inc!("serve.retry.attempts");
                    std::thread::sleep(RETRY_BASE_BACKOFF * 2u32.pow(attempt - 1));
                }
            }
        }
    }

    /// Handles one request (a batch of one). When the request's
    /// `trace` flag is set, tracing is forced on for its duration and
    /// the response carries the request's span tree under `"trace"`.
    #[must_use]
    pub fn handle(&self, request: &Request) -> Json {
        if !request.trace {
            return self.handle_one(request);
        }
        let _force = sram_probe::trace::force();
        let root = sram_probe::trace::span_at("serve.request", sram_probe::trace::now_ns());
        let root_id = root.id();
        let mut response = self.handle_one(request);
        drop(root);
        let events = sram_probe::trace::capture();
        if let Some(tree) = sram_probe::trace::span_tree(&events, root_id) {
            if let Json::Obj(pairs) = &mut response {
                pairs.push(("trace".into(), trace_json(&tree)));
            }
        }
        response
    }

    fn handle_one(&self, request: &Request) -> Json {
        self.handle_batch(std::slice::from_ref(request))
            .pop()
            .unwrap_or_else(|| {
                error_response(None, &ServeError::InvalidQuery("empty batch".into()))
            })
    }

    /// Handles a batch with no deadlines or shutdown awareness — every
    /// request runs under a never-cancelled token. See
    /// [`Engine::handle_batch_cancel`].
    #[must_use]
    pub fn handle_batch(&self, requests: &[Request]) -> Vec<Json> {
        self.handle_batch_cancel(requests, &[])
    }

    /// Handles a batch: answers cache hits immediately, groups the
    /// misses by technology so each group shares one characterization
    /// pass, deduplicates identical queries, and returns responses in
    /// request order.
    ///
    /// `tokens` pairs with `requests` by index (missing entries act as
    /// never-cancelled). A token that fires mid-execution turns into a
    /// typed `deadline_exceeded` / `shutting_down` error envelope for
    /// its request. Deduplicated queries run under the most permissive
    /// member token, so one client's tight deadline cannot starve a
    /// duplicate that asked for longer.
    #[must_use]
    pub fn handle_batch_cancel(&self, requests: &[Request], tokens: &[CancelToken]) -> Vec<Json> {
        sram_probe::probe_record!("serve.batch.size", requests.len() as u64);
        self.requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        sram_probe::probe_add!("serve.request.total", requests.len() as u64);

        let mut responses: Vec<Option<Json>> = vec![None; requests.len()];

        // Pass 1: introspection queries (always live, never cached),
        // then the result cache.
        let mut misses: Vec<usize> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            let direct = match req.query {
                Query::Stats => Some(self.stats_json()),
                Query::Metrics => Some(self.metrics_json()),
                Query::Health => Some(self.health_json()),
                _ => None,
            };
            if let Some(result) = direct {
                responses[i] = Some(ok_response(req.id.as_deref(), false, &result));
                continue;
            }
            let canonical = req.query.canonical();
            match self.cache.get(req.query.key(), &canonical) {
                Some(result) => responses[i] = Some(ok_response(req.id.as_deref(), true, &result)),
                None => misses.push(i),
            }
        }

        // Pass 2: group misses by technology; one LUT pass per group.
        let mut groups: Vec<((VtFlavor, Method), Vec<usize>)> = Vec::new();
        for &i in &misses {
            let Some(key) = requests[i].query.char_key() else {
                continue;
            };
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            }
        }

        for (key, members) in groups {
            let (cell, built) = match self.lut(key) {
                Ok(pair) => pair,
                Err(err) => {
                    // Characterization failed: every member of the
                    // group fails the same way.
                    for &i in &members {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        sram_probe::probe_inc!("serve.request.errors");
                        responses[i] = Some(error_response(requests[i].id.as_deref(), &err));
                    }
                    continue;
                }
            };
            // Batch-local accounting: every group member beyond the
            // first rode along on a characterization it didn't pay for.
            let shared = members.len() as u64 - 1;
            if shared > 0 {
                self.coalesced.fetch_add(shared, Ordering::Relaxed);
                sram_probe::probe_add!("serve.batch.coalesced", shared);
            }
            // Cross-batch accounting: the whole group reused a LUT an
            // *earlier* batch paid to characterize.
            if !built {
                let reused = members.len() as u64;
                self.cross_coalesced.fetch_add(reused, Ordering::Relaxed);
                sram_probe::probe_add!("serve.batch.cross_coalesced", reused);
            }

            // Deduplicate identical queries inside the group: the
            // search runs once, every duplicate shares the result.
            let mut unique: Vec<(String, Vec<usize>)> = Vec::new();
            for &i in &members {
                let canonical = requests[i].query.canonical();
                match unique.iter_mut().find(|(c, _)| *c == canonical) {
                    Some((_, idxs)) => idxs.push(i),
                    None => unique.push((canonical, vec![i])),
                }
            }

            for (canonical, idxs) in unique {
                let first = idxs[0];
                let cancel = most_permissive_token(tokens, &idxs);
                match self.execute(&requests[first].query, &cell, &cancel) {
                    Ok(result) => {
                        let result = Arc::new(result);
                        self.cache.insert(
                            requests[first].query.key(),
                            &canonical,
                            Arc::clone(&result),
                        );
                        for &i in &idxs {
                            responses[i] =
                                Some(ok_response(requests[i].id.as_deref(), false, &result));
                        }
                    }
                    Err(err) => {
                        for &i in &idxs {
                            self.errors.fetch_add(1, Ordering::Relaxed);
                            sram_probe::probe_inc!("serve.request.errors");
                            responses[i] = Some(error_response(requests[i].id.as_deref(), &err));
                        }
                    }
                }
            }
        }

        responses
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    error_response(None, &ServeError::InvalidQuery("request lost".into()))
                })
            })
            .collect()
    }

    /// Executes one cache-missing query against a resolved
    /// characterization, honoring `cancel` at each query's natural
    /// cooperation points (search slices, Monte Carlo samples, Pareto
    /// sweep rows).
    fn execute(
        &self,
        query: &Query,
        cell: &CellCharacterization,
        cancel: &CancelToken,
    ) -> Result<Json, ServeError> {
        let _span = sram_probe::probe_span!("serve.request.exec_ns");
        let _trace = sram_probe::trace_span!("serve.execute");
        match *query {
            Query::Optimize {
                capacity_bytes,
                flavor,
                method,
                objective,
            } => {
                let design = self.framework.optimize_with_cell_cancel(
                    cell,
                    Capacity::from_bytes(capacity_bytes as usize),
                    flavor,
                    method,
                    objective.objective(),
                    cancel,
                )?;
                Ok(design_json(&design))
            }
            Query::EvaluatePoint {
                capacity_bytes,
                flavor: _,
                method,
                rows,
                vssc_mv,
                n_pre,
                n_wr,
            } => {
                let vssc = Voltage::from_millivolts(vssc_mv as f64);
                if method == Method::M1 && vssc_mv != 0 {
                    return Err(ServeError::InvalidQuery(
                        "method m1 has no negative-Gnd rail; vssc_mv must be 0".into(),
                    ));
                }
                let bits = Capacity::from_bytes(capacity_bytes as usize).bits();
                if !bits.is_multiple_of(rows as usize) || bits / rows as usize > u32::MAX as usize {
                    return Err(ServeError::InvalidQuery(format!(
                        "capacity of {bits} bits does not divide into {rows} rows"
                    )));
                }
                let cols = (bits / rows as usize) as u32;
                let org = ArrayOrganization::new(rows, cols, self.framework.word_bits())
                    .map_err(|e| ServeError::InvalidQuery(e.to_string()))?;
                let constraint = YieldConstraint::MinMargin {
                    delta: self.framework.delta(),
                };
                let feasible = constraint.check_snapshot(cell, vssc);
                let metrics = ArrayModel::new(
                    org,
                    cell,
                    self.framework.periphery(),
                    self.framework.params(),
                )
                .with_precharge_fins(n_pre)
                .with_write_fins(n_wr)
                .with_vssc(vssc)
                .evaluate()
                .map_err(CooptError::Array)?;
                Ok(Json::Obj(vec![
                    ("feasible".into(), Json::Bool(feasible)),
                    (
                        "read_delay_s".into(),
                        Json::Num(metrics.read_delay.seconds()),
                    ),
                    (
                        "write_delay_s".into(),
                        Json::Num(metrics.write_delay.seconds()),
                    ),
                    ("delay_s".into(), Json::Num(metrics.delay.seconds())),
                    ("energy_j".into(), Json::Num(metrics.energy.joules())),
                    ("edp_js".into(), Json::Num(metrics.edp().joule_seconds())),
                ]))
            }
            Query::ParetoFront {
                capacity_bytes,
                flavor: _,
                method,
            } => {
                let front = self.pareto_front(cell, capacity_bytes, method, cancel)?;
                let points: Vec<Json> = front
                    .sorted_by_delay()
                    .into_iter()
                    .map(|p| {
                        let (rows, n_pre, n_wr, vssc_mv) = p.tag;
                        Json::Obj(vec![
                            ("energy_j".into(), Json::Num(p.energy.joules())),
                            ("delay_s".into(), Json::Num(p.delay.seconds())),
                            ("rows".into(), Json::Num(f64::from(rows))),
                            ("n_pre".into(), Json::Num(f64::from(n_pre))),
                            ("n_wr".into(), Json::Num(f64::from(n_wr))),
                            ("vssc_mv".into(), Json::Num(f64::from(vssc_mv))),
                        ])
                    })
                    .collect();
                Ok(Json::Obj(vec![
                    ("front_size".into(), Json::Num(points.len() as f64)),
                    ("points".into(), Json::Arr(points)),
                ]))
            }
            Query::YieldCheck {
                capacity_bytes,
                flavor,
                method,
                samples,
            } => {
                let design = self.framework.optimize_with_cell_cancel(
                    cell,
                    Capacity::from_bytes(capacity_bytes as usize),
                    flavor,
                    method,
                    crate::query::ObjectiveKind::Edp.objective(),
                    cancel,
                )?;
                let analysis = self.framework.verify_statistical_yield_cancel(
                    &design,
                    samples as usize,
                    cancel,
                )?;
                Ok(Json::Obj(vec![
                    ("design".into(), design_json(&design)),
                    ("yield".into(), yield_json(&analysis)),
                ]))
            }
            // Introspection ops never reach the executor (answered in
            // pass 1, skipped by the grouping); keep the match total.
            Query::Stats => Ok(self.stats_json()),
            Query::Metrics => Ok(self.metrics_json()),
            Query::Health => Ok(self.health_json()),
        }
    }

    /// Live server statistics: uptime, engine counters, cache
    /// occupancy, queue depth, and the full probe snapshot.
    #[must_use]
    pub fn stats_json(&self) -> Json {
        let cache = self.cache.counters();
        let queue_depth = sram_probe::gauge("serve.queue.depth").get();
        Json::Obj(vec![
            (
                "uptime_s".into(),
                Json::Num(self.started.elapsed().as_secs_f64()),
            ),
            ("requests".into(), Json::Num(self.requests() as f64)),
            ("errors".into(), Json::Num(self.errors() as f64)),
            (
                "characterizations".into(),
                Json::Num(self.characterizations() as f64),
            ),
            ("coalesced".into(), Json::Num(self.coalesced() as f64)),
            (
                "cross_coalesced".into(),
                Json::Num(self.cross_coalesced() as f64),
            ),
            ("queue_depth".into(), Json::Num(queue_depth)),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("entries".into(), Json::Num(cache.entries as f64)),
                    ("bytes".into(), Json::Num(cache.bytes as f64)),
                    ("hits".into(), Json::Num(cache.hits as f64)),
                    ("misses".into(), Json::Num(cache.misses as f64)),
                    ("insertions".into(), Json::Num(cache.insertions as f64)),
                    ("evictions".into(), Json::Num(cache.evictions as f64)),
                ]),
            ),
            (
                "trace_dropped".into(),
                Json::Num(sram_probe::trace::dropped() as f64),
            ),
            ("probe".into(), snapshot_json(&sram_probe::snapshot())),
        ])
    }

    /// Windowed telemetry for the `metrics` op: the Prometheus text
    /// exposition under `"text"` plus a JSON rendering of the same
    /// [`sram_probe::telemetry::Export`], so the two forms cannot
    /// drift — `reproduce telemetry-soak` hard-fails if they do.
    #[must_use]
    pub fn metrics_json(&self) -> Json {
        let export = sram_probe::telemetry::export();
        let counters: Vec<(String, Json)> = export
            .counters
            .iter()
            .map(|(name, stat)| {
                (
                    (*name).to_string(),
                    Json::Obj(vec![
                        ("total".into(), Json::Num(stat.total as f64)),
                        ("delta".into(), Json::Num(stat.delta as f64)),
                        ("rate".into(), Json::Num(stat.rate)),
                        ("last_rate".into(), Json::Num(stat.last_rate)),
                    ]),
                )
            })
            .collect();
        let gauges: Vec<(String, Json)> = export
            .gauges
            .iter()
            .map(|(name, value)| ((*name).to_string(), Json::Num(*value)))
            .collect();
        let quantiles: Vec<(String, Json)> = export
            .quantiles
            .iter()
            .map(|(name, q)| {
                // The sparse bucket array rides along with the summary
                // so a federation collector can rebuild the histogram
                // and merge it across nodes losslessly, instead of
                // averaging per-node percentiles.
                let buckets = export
                    .quantile_buckets
                    .get(name)
                    .map(|snap| {
                        snap.buckets
                            .iter()
                            .map(|&(idx, count)| {
                                Json::Arr(vec![Json::Num(f64::from(idx)), Json::Num(count as f64)])
                            })
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default();
                (
                    (*name).to_string(),
                    Json::Obj(vec![
                        ("count".into(), Json::Num(q.count as f64)),
                        ("sum".into(), Json::Num(q.sum as f64)),
                        ("p50".into(), Json::Num(q.p50)),
                        ("p90".into(), Json::Num(q.p90)),
                        ("p99".into(), Json::Num(q.p99)),
                        ("buckets".into(), Json::Arr(buckets)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("window_ms".into(), Json::Num(export.window_ms as f64)),
            ("slots".into(), Json::Num(export.slots as f64)),
            ("windows".into(), Json::Num(export.windows.len() as f64)),
            ("span_s".into(), Json::Num(export.span_s)),
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("quantiles".into(), Json::Obj(quantiles)),
            ("text".into(), Json::Str(export.to_prometheus())),
        ])
    }

    /// Health verdict for the `health` op: `ok|degraded|unhealthy`
    /// plus the reasons, computed from worker liveness (panic/respawn
    /// counters), queue pressure, windowed expiry/reject rates, and
    /// per-op SLO burn ([`crate::slo`]). This is the contract a
    /// cluster router polls to decide hedging, draining, or failover.
    ///
    /// Each reply carries a monotonic `revision` counter (and mirrors
    /// it to the ungated `serve.health.revision` gauge) so a poller
    /// that interleaves snapshots across reconnects can cheaply detect
    /// a stale or out-of-order reply: a revision at or below the last
    /// one seen from this process is old news and should be skipped.
    #[must_use]
    pub fn health_json(&self) -> Json {
        let revision = self.health_revision.fetch_add(1, Ordering::Relaxed) + 1;
        // Ungated direct handle: health must report with probes off.
        sram_probe::gauge("serve.health.revision").set(revision as f64);
        let export = sram_probe::telemetry::export();
        let has_ring = !export.windows.is_empty();
        // Windowed delta when the ring has data; lifetime total as the
        // cold-start fallback so faults are never invisible.
        let recent = |name: &'static str| {
            if has_ring {
                export.counters.get(name).map_or(0, |s| s.delta)
            } else {
                sram_probe::counter(name).get()
            }
        };
        let rate = |name: &str| export.counters.get(name).map_or(0.0, |s| s.rate);

        let panics = sram_probe::counter("serve.worker.panics").get();
        let respawns = sram_probe::counter("serve.worker.respawns").get();
        let depth = sram_probe::gauge("serve.queue.depth").get();
        let capacity = sram_probe::gauge("serve.queue.capacity").get();
        let cache = self.cache.counters();
        let slo = crate::slo::statuses(&export);

        let mut degraded: Vec<String> = Vec::new();
        let mut unhealthy: Vec<String> = Vec::new();
        if respawns < panics {
            unhealthy.push(format!(
                "worker down: {panics} panics but only {respawns} respawns"
            ));
        } else if recent("serve.worker.panics") > 0 {
            degraded.push(format!(
                "worker panics in window: {}",
                recent("serve.worker.panics")
            ));
        }
        if capacity > 0.0 && depth / capacity >= QUEUE_PRESSURE_DEGRADED {
            degraded.push(format!("queue pressure: {depth:.0}/{capacity:.0}"));
        }
        let rejected = recent("serve.request.rejected");
        if rejected > 0 {
            degraded.push(format!("busy rejections in window: {rejected}"));
        }
        let expired = recent("serve.request.expired");
        if expired > 0 {
            degraded.push(format!("deadline expiries in window: {expired}"));
        }
        for s in &slo {
            if s.burn_short > BURN_UNHEALTHY_SHORT {
                unhealthy.push(format!(
                    "{} SLO burning {:.1}x in the newest window",
                    s.op, s.burn_short
                ));
            } else if s.burn_long > BURN_DEGRADED_LONG {
                degraded.push(format!(
                    "{} SLO burning {:.1}x over the ring",
                    s.op, s.burn_long
                ));
            }
        }

        let verdict = if !unhealthy.is_empty() {
            "unhealthy"
        } else if !degraded.is_empty() {
            "degraded"
        } else {
            "ok"
        };
        let reasons: Vec<Json> = unhealthy
            .into_iter()
            .chain(degraded)
            .map(Json::Str)
            .collect();
        let slo_json: Vec<(String, Json)> = slo
            .iter()
            .map(|s| {
                (
                    s.op.to_string(),
                    Json::Obj(vec![
                        ("objective_ms".into(), Json::Num(s.objective_ms as f64)),
                        ("total".into(), Json::Num(s.total as f64)),
                        ("breach".into(), Json::Num(s.breach as f64)),
                        ("burn_long".into(), Json::Num(s.burn_long)),
                        ("burn_short".into(), Json::Num(s.burn_short)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("verdict".into(), Json::Str(verdict.into())),
            ("revision".into(), Json::Num(revision as f64)),
            ("reasons".into(), Json::Arr(reasons)),
            ("windows".into(), Json::Num(export.windows.len() as f64)),
            ("span_s".into(), Json::Num(export.span_s)),
            (
                "workers".into(),
                Json::Obj(vec![
                    ("panics".into(), Json::Num(panics as f64)),
                    ("respawns".into(), Json::Num(respawns as f64)),
                ]),
            ),
            (
                "queue".into(),
                Json::Obj(vec![
                    ("depth".into(), Json::Num(depth)),
                    ("capacity".into(), Json::Num(capacity)),
                ]),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("entries".into(), Json::Num(cache.entries as f64)),
                    ("bytes".into(), Json::Num(cache.bytes as f64)),
                ]),
            ),
            (
                "rates".into(),
                Json::Obj(vec![
                    (
                        "expired_per_s".into(),
                        Json::Num(rate("serve.request.expired")),
                    ),
                    (
                        "rejected_per_s".into(),
                        Json::Num(rate("serve.request.rejected")),
                    ),
                    (
                        "errors_per_s".into(),
                        Json::Num(rate("serve.request.errors")),
                    ),
                ]),
            ),
            ("slo".into(), Json::Obj(slo_json)),
        ])
    }

    /// Sweeps the feasible design space and keeps the non-dominated
    /// energy/delay points.
    fn pareto_front(
        &self,
        cell: &CellCharacterization,
        capacity_bytes: u64,
        method: Method,
        cancel: &CancelToken,
    ) -> Result<ParetoFront<(u32, u32, u32, i32)>, ServeError> {
        let space = match method {
            Method::M1 => self.framework.space().clone().without_negative_gnd(),
            Method::M2 => self.framework.space().clone(),
        };
        let constraint = YieldConstraint::MinMargin {
            delta: self.framework.delta(),
        };
        let capacity = Capacity::from_bytes(capacity_bytes as usize);
        let mut front = ParetoFront::new();
        for org in
            ArrayOrganization::enumerate(capacity, self.framework.word_bits(), space.rows_range())
        {
            // One cooperation point per organization — the sweep's
            // outer loop is the natural slice boundary.
            if let Some(reason) = cancel.cancelled() {
                return Err(CooptError::Cancelled(reason).into());
            }
            for &vssc in space.vssc_values() {
                if !constraint.check_snapshot(cell, vssc) {
                    continue;
                }
                for &n_pre in &space.npre_values() {
                    for &n_wr in &space.nwr_values() {
                        let metrics = ArrayModel::new(
                            org,
                            cell,
                            self.framework.periphery(),
                            self.framework.params(),
                        )
                        .with_precharge_fins(n_pre)
                        .with_write_fins(n_wr)
                        .with_vssc(vssc)
                        .evaluate()
                        .map_err(CooptError::Array)?;
                        front.offer(ParetoPoint {
                            energy: metrics.energy,
                            delay: metrics.delay,
                            tag: (org.rows(), n_pre, n_wr, metrics_vssc_mv(vssc)),
                        });
                    }
                }
            }
        }
        Ok(front)
    }

    /// Spills the result cache to `path`, one `{"q":…,"r":…}` JSON
    /// object per line, sorted by canonical query so the file is
    /// byte-stable for identical cache contents. Returns the number of
    /// entries written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_cache(&self, path: &Path) -> Result<usize, ServeError> {
        let entries = self.cache.export();
        let mut out = String::new();
        for (canonical, value) in &entries {
            let line = Json::Obj(vec![
                ("q".into(), Json::Str(canonical.clone())),
                ("r".into(), (**value).clone()),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        std::fs::write(path, out)?;
        sram_probe::probe_add!("serve.cache.persisted", entries.len() as u64);
        Ok(entries.len())
    }

    /// Warm-starts the result cache from a file written by
    /// [`Engine::save_cache`]. Corrupt or truncated lines are skipped
    /// (counted on `serve.cache.load_errors`), never fatal — a partial
    /// warm start beats an empty cache, and a wrong answer is impossible
    /// because entries are re-keyed from their stored canonical string.
    /// Returns the number of entries restored.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (an unreadable file, not a
    /// malformed one).
    pub fn load_cache(&self, path: &Path) -> Result<usize, ServeError> {
        let text = std::fs::read_to_string(path)?;
        let mut loaded = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let entry = match Json::parse(line) {
                Ok(v) => v,
                Err(_) => {
                    sram_probe::probe_inc!("serve.cache.load_errors");
                    continue;
                }
            };
            let (Some(canonical), Some(result)) =
                (entry.get("q").and_then(Json::as_str), entry.get("r"))
            else {
                sram_probe::probe_inc!("serve.cache.load_errors");
                continue;
            };
            self.cache.insert(
                fnv1a64(canonical.as_bytes()),
                canonical,
                Arc::new(result.clone()),
            );
            loaded += 1;
        }
        sram_probe::probe_add!("serve.cache.warmed", loaded as u64);
        Ok(loaded)
    }
}

/// The most permissive token among a dedup group's members: a member
/// with no deadline wins outright; otherwise the latest deadline does.
/// Indices missing from `tokens` count as never-cancelled.
fn most_permissive_token(tokens: &[CancelToken], idxs: &[usize]) -> CancelToken {
    let mut best: Option<CancelToken> = None;
    for &i in idxs {
        let token = tokens.get(i).cloned().unwrap_or_default();
        best = Some(match best {
            None => token,
            Some(held) => match (held.deadline(), token.deadline()) {
                (None, _) => held,
                (_, None) => token,
                (Some(a), Some(b)) => {
                    if b > a {
                        token
                    } else {
                        held
                    }
                }
            },
        });
    }
    best.unwrap_or_default()
}

/// Renders a probe snapshot as wire JSON: three objects keyed by
/// metric name. Histograms are summarized (count/sum/mean) rather than
/// bucket-expanded — the stats op is a health check, not an exporter.
fn snapshot_json(snap: &sram_probe::Snapshot) -> Json {
    let counters: Vec<(String, Json)> = snap
        .counters
        .iter()
        .map(|(name, value)| ((*name).to_string(), Json::Num(*value as f64)))
        .collect();
    let gauges: Vec<(String, Json)> = snap
        .gauges
        .iter()
        .map(|(name, value)| ((*name).to_string(), Json::Num(*value)))
        .collect();
    let histograms: Vec<(String, Json)> = snap
        .histograms
        .iter()
        .map(|(name, h)| {
            (
                (*name).to_string(),
                Json::Obj(vec![
                    ("count".into(), Json::Num(h.count as f64)),
                    ("sum".into(), Json::Num(h.sum as f64)),
                    ("mean".into(), Json::Num(h.mean())),
                ]),
            )
        })
        .collect();
    Json::Obj(vec![
        ("counters".into(), Json::Obj(counters)),
        ("gauges".into(), Json::Obj(gauges)),
        ("histograms".into(), Json::Obj(histograms)),
    ])
}

/// Renders a reconstructed span tree as wire JSON. Start times are
/// rebased to the root span so clients see offsets, not process epoch.
#[must_use]
pub(crate) fn trace_json(node: &sram_probe::trace::SpanNode) -> Json {
    trace_json_rebased(node, node.start_ns)
}

fn trace_json_rebased(node: &sram_probe::trace::SpanNode, epoch: u64) -> Json {
    let args: Vec<(String, Json)> = node
        .args
        .iter()
        .map(|&(key, value)| (key.to_string(), Json::Num(value as f64)))
        .collect();
    let children: Vec<Json> = node
        .children
        .iter()
        .map(|child| trace_json_rebased(child, epoch))
        .collect();
    Json::Obj(vec![
        ("name".into(), Json::Str(node.name.to_string())),
        (
            "start_ns".into(),
            Json::Num(node.start_ns.saturating_sub(epoch) as f64),
        ),
        ("dur_ns".into(), Json::Num(node.dur_ns as f64)),
        ("args".into(), Json::Obj(args)),
        ("children".into(), Json::Arr(children)),
    ])
}

fn metrics_vssc_mv(vssc: Voltage) -> i32 {
    // Millivolt grid values round exactly; the cast is for the tag only.
    vssc.millivolts().round() as i32
}

fn margin_json(stats: &MarginStats) -> Json {
    Json::Obj(vec![
        ("mean_mv".into(), Json::Num(stats.mean.millivolts())),
        ("sigma_mv".into(), Json::Num(stats.sigma.millivolts())),
        ("worst_mv".into(), Json::Num(stats.worst.millivolts())),
        ("samples".into(), Json::Num(stats.samples as f64)),
    ])
}

fn yield_json(analysis: &YieldAnalysis) -> Json {
    Json::Obj(vec![
        ("hsnm".into(), margin_json(&analysis.hsnm)),
        ("rsnm".into(), margin_json(&analysis.rsnm)),
        ("wm".into(), margin_json(&analysis.wm)),
        ("k".into(), Json::Num(YIELD_K)),
        ("passes".into(), Json::Bool(analysis.passes(YIELD_K))),
        (
            "worst_statistical_margin_mv".into(),
            Json::Num(analysis.worst_statistical_margin(YIELD_K).millivolts()),
        ),
    ])
}

/// Renders an [`OptimalDesign`] to its wire form.
#[must_use]
pub fn design_json(design: &OptimalDesign) -> Json {
    Json::Obj(vec![
        (
            "capacity_bytes".into(),
            Json::Num(design.capacity.bytes() as f64),
        ),
        ("label".into(), Json::Str(design.label())),
        (
            "rows".into(),
            Json::Num(f64::from(design.organization.rows())),
        ),
        (
            "cols".into(),
            Json::Num(f64::from(design.organization.cols())),
        ),
        ("n_pre".into(), Json::Num(f64::from(design.n_pre))),
        ("n_wr".into(), Json::Num(f64::from(design.n_wr))),
        ("vddc_mv".into(), Json::Num(design.vddc.millivolts())),
        ("vssc_mv".into(), Json::Num(design.vssc.millivolts())),
        ("vwl_mv".into(), Json::Num(design.vwl.millivolts())),
        ("delay_s".into(), Json::Num(design.delay().seconds())),
        ("energy_j".into(), Json::Num(design.energy().joules())),
        ("edp_js".into(), Json::Num(design.edp().joule_seconds())),
        (
            "stats".into(),
            Json::Obj(vec![
                ("examined".into(), Json::Num(design.stats.examined as f64)),
                ("feasible".into(), Json::Num(design.stats.feasible as f64)),
                ("evaluated".into(), Json::Num(design.stats.evaluated as f64)),
            ]),
        ),
    ])
}

/// Builds a success envelope: `{"id":…,"status":"ok","cached":…,"result":…}`.
#[must_use]
pub fn ok_response(id: Option<&str>, cached: bool, result: &Json) -> Json {
    let mut pairs: Vec<(String, Json)> = Vec::new();
    if let Some(id) = id {
        pairs.push(("id".into(), Json::Str(id.to_string())));
    }
    pairs.push(("status".into(), Json::Str("ok".into())));
    pairs.push(("cached".into(), Json::Bool(cached)));
    pairs.push(("result".into(), result.clone()));
    Json::Obj(pairs)
}

/// Builds an error envelope:
/// `{"id":…,"status":…,"error":…,"retryable":…}` where the status is
/// [`wire_status`] (`"busy"`, `"shutting_down"`, `"deadline_exceeded"`,
/// `"internal"`, `"error"`) and `retryable` tells the client whether
/// resending the same request can plausibly succeed.
#[must_use]
pub fn error_response(id: Option<&str>, error: &ServeError) -> Json {
    let mut pairs: Vec<(String, Json)> = Vec::new();
    if let Some(id) = id {
        pairs.push(("id".into(), Json::Str(id.to_string())));
    }
    pairs.push(("status".into(), Json::Str(wire_status(error).into())));
    pairs.push(("error".into(), Json::Str(error.to_string())));
    pairs.push(("retryable".into(), Json::Bool(error.is_retryable())));
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_coopt::DesignSpace;

    fn coarse_engine() -> Engine {
        Engine::new(
            CoOptimizationFramework::paper_mode().with_space(DesignSpace::coarse()),
            CacheConfig::default(),
        )
    }

    fn req(line: &str) -> Request {
        Request::from_line(line).unwrap()
    }

    #[test]
    fn repeated_query_is_served_from_cache_with_identical_result() {
        let engine = coarse_engine();
        let r = req(r#"{"op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2"}"#);
        let first = engine.handle(&r);
        let second = engine.handle(&r);
        assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            first.get("result").map(Json::render),
            second.get("result").map(Json::render),
            "cache must return the identical payload"
        );
        let c = engine.cache_counters();
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn batch_shares_one_characterization() {
        let engine = coarse_engine();
        let batch: Vec<Request> = [128u64, 256, 1024]
            .iter()
            .map(|b| {
                req(&format!(
                    r#"{{"op":"optimize","capacity_bytes":{b},"flavor":"hvt","method":"m2"}}"#
                ))
            })
            .collect();
        let responses = engine.handle_batch(&batch);
        assert_eq!(responses.len(), 3);
        for r in &responses {
            assert_eq!(r.get("status").and_then(Json::as_str), Some("ok"));
        }
        assert_eq!(engine.characterizations(), 1);
        assert_eq!(engine.coalesced(), 2);
    }

    #[test]
    fn duplicate_queries_in_a_batch_share_one_search() {
        let engine = coarse_engine();
        let line = r#"{"op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2"}"#;
        let batch = vec![req(line), req(line)];
        let responses = engine.handle_batch(&batch);
        assert_eq!(
            responses[0].get("result").map(Json::render),
            responses[1].get("result").map(Json::render)
        );
        // One search means one cache insertion.
        assert_eq!(engine.cache_counters().insertions, 1);
    }

    #[test]
    fn evaluate_point_reports_metrics_and_feasibility() {
        let engine = coarse_engine();
        let r = req(
            r#"{"op":"evaluate-point","capacity_bytes":1024,"flavor":"hvt","method":"m2","rows":64,"vssc_mv":-100,"n_pre":10,"n_wr":8}"#,
        );
        let resp = engine.handle(&r);
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        let result = resp.get("result").unwrap();
        assert!(result.get("delay_s").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(result.get("energy_j").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(result.get("feasible").and_then(Json::as_bool).is_some());
    }

    #[test]
    fn indivisible_capacity_is_an_error_envelope() {
        let engine = coarse_engine();
        let r = req(
            r#"{"op":"evaluate-point","capacity_bytes":100,"flavor":"hvt","method":"m2","rows":64,"vssc_mv":0,"n_pre":10,"n_wr":8}"#,
        );
        let resp = engine.handle(&r);
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(engine.errors(), 1);
    }

    #[test]
    fn pareto_front_is_nonempty_and_sorted() {
        let engine = coarse_engine();
        let r = req(r#"{"op":"pareto-front","capacity_bytes":1024,"flavor":"hvt","method":"m2"}"#);
        let resp = engine.handle(&r);
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        let result = resp.get("result").unwrap();
        let points = result.get("points").and_then(Json::as_array).unwrap();
        assert!(!points.is_empty());
        let delays: Vec<f64> = points
            .iter()
            .map(|p| p.get("delay_s").and_then(Json::as_f64).unwrap())
            .collect();
        assert!(delays.windows(2).all(|w| w[0] <= w[1]), "sorted by delay");
    }

    #[test]
    fn second_batch_reuses_the_first_batches_characterization() {
        let engine = coarse_engine();
        let first = engine.handle(&req(
            r#"{"op":"optimize","capacity_bytes":128,"flavor":"hvt","method":"m2"}"#,
        ));
        assert_eq!(first.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(engine.characterizations(), 1);
        assert_eq!(engine.cross_coalesced(), 0);
        // A later batch of *new* queries on the same technology pays
        // for no LUT pass — every member is cross-batch coalesced.
        let batch = vec![
            req(r#"{"op":"optimize","capacity_bytes":256,"flavor":"hvt","method":"m2"}"#),
            req(
                r#"{"op":"evaluate-point","capacity_bytes":1024,"flavor":"hvt","method":"m2","rows":64,"vssc_mv":0,"n_pre":10,"n_wr":8}"#,
            ),
        ];
        let responses = engine.handle_batch(&batch);
        for r in &responses {
            assert_eq!(r.get("status").and_then(Json::as_str), Some("ok"));
        }
        assert_eq!(engine.characterizations(), 1, "LUT built exactly once");
        assert_eq!(engine.cross_coalesced(), 2);
    }

    #[test]
    fn stats_query_reports_live_counters_and_is_never_cached() {
        let engine = coarse_engine();
        let _ = engine.handle(&req(
            r#"{"op":"optimize","capacity_bytes":128,"flavor":"hvt","method":"m2"}"#,
        ));
        for _ in 0..2 {
            let resp = engine.handle(&req(r#"{"op":"stats","id":"s"}"#));
            assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
            assert_eq!(resp.get("cached").and_then(Json::as_bool), Some(false));
            let result = resp.get("result").unwrap();
            assert!(result.get("uptime_s").and_then(Json::as_f64).unwrap() >= 0.0);
            assert!(result.get("requests").and_then(Json::as_f64).unwrap() >= 2.0);
            assert_eq!(
                result.get("characterizations").and_then(Json::as_f64),
                Some(1.0)
            );
            let cache = result.get("cache").unwrap();
            assert_eq!(cache.get("entries").and_then(Json::as_f64), Some(1.0));
            let probe = result.get("probe").unwrap();
            assert!(probe.get("counters").is_some());
        }
        // Stats answers never enter the result cache.
        assert_eq!(engine.cache_counters().entries, 1);
    }

    #[test]
    fn metrics_and_health_are_answered_live_and_never_cached() {
        let engine = coarse_engine();
        let m = engine.handle(&req(r#"{"op":"metrics","id":"m"}"#));
        assert_eq!(m.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(m.get("cached").and_then(Json::as_bool), Some(false));
        let result = m.get("result").unwrap();
        let text = result.get("text").and_then(Json::as_str).unwrap();
        assert!(text.starts_with("# sram-edp telemetry"), "{text}");
        assert!(result.get("counters").is_some());
        assert!(result.get("quantiles").is_some());
        assert!(result.get("window_ms").and_then(Json::as_f64).unwrap() > 0.0);

        let h = engine.handle(&req(r#"{"op":"health","id":"h"}"#));
        assert_eq!(h.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(h.get("cached").and_then(Json::as_bool), Some(false));
        let result = h.get("result").unwrap();
        let verdict = result.get("verdict").and_then(Json::as_str).unwrap();
        assert!(
            ["ok", "degraded", "unhealthy"].contains(&verdict),
            "{verdict}"
        );
        assert!(result.get("reasons").and_then(Json::as_array).is_some());
        let workers = result.get("workers").unwrap();
        assert!(workers.get("panics").and_then(Json::as_f64).is_some());
        assert!(result.get("queue").is_some());
        assert!(result.get("slo").is_some());
        // Neither op touched the result cache.
        assert_eq!(engine.cache_counters().entries, 0);
    }

    #[test]
    fn traced_request_inlines_its_span_tree() {
        let engine = coarse_engine();
        let resp = engine.handle(&req(
            r#"{"op":"optimize","capacity_bytes":128,"flavor":"lvt","method":"m1","trace":true}"#,
        ));
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        let tree = resp.get("trace").expect("traced response carries a tree");
        assert_eq!(
            tree.get("name").and_then(Json::as_str),
            Some("serve.request")
        );
        assert_eq!(tree.get("start_ns").and_then(Json::as_f64), Some(0.0));
        let children = tree.get("children").and_then(Json::as_array).unwrap();
        let names: Vec<&str> = children
            .iter()
            .filter_map(|c| c.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"serve.characterize"), "{names:?}");
        assert!(names.contains(&"serve.execute"), "{names:?}");
        // An untraced request carries no tree.
        let plain = engine.handle(&req(
            r#"{"op":"optimize","capacity_bytes":128,"flavor":"lvt","method":"m1"}"#,
        ));
        assert!(plain.get("trace").is_none());
    }

    #[test]
    fn id_is_echoed_in_both_envelopes() {
        let engine = coarse_engine();
        let ok = engine.handle(&req(
            r#"{"id":"a1","op":"evaluate-point","capacity_bytes":1024,"flavor":"hvt","method":"m2","rows":64,"vssc_mv":0,"n_pre":10,"n_wr":8}"#,
        ));
        assert_eq!(ok.get("id").and_then(Json::as_str), Some("a1"));
        let err = engine.handle(&req(
            r#"{"id":"a2","op":"evaluate-point","capacity_bytes":100,"flavor":"hvt","method":"m2","rows":64,"vssc_mv":0,"n_pre":10,"n_wr":8}"#,
        ));
        assert_eq!(err.get("id").and_then(Json::as_str), Some("a2"));
    }

    #[test]
    fn health_revision_is_strictly_monotonic() {
        let engine = coarse_engine();
        let first = engine.health_json();
        let second = engine.health_json();
        let r1 = first.get("revision").and_then(Json::as_u64).unwrap();
        let r2 = second.get("revision").and_then(Json::as_u64).unwrap();
        assert!(r2 > r1, "revision must advance on every health snapshot");
    }
}
