//! Per-query-type latency SLOs with multi-window error-budget burn
//! rates.
//!
//! Every op has a latency objective (default [`DEFAULT_SLO_MS`],
//! overridable globally via `SRAM_SLO_MS` or per op via
//! `SRAM_SLO_<OP>_MS`, e.g. `SRAM_SLO_EVALUATE_POINT_MS`). Each served
//! request increments `serve.slo.<op>.total` and, when its end-to-end
//! latency exceeds the objective, `serve.slo.<op>.breach`. Both
//! counters bypass the probe level gate (the `probe.trace.dropped`
//! pattern) because the `health` surface must work with probes off.
//!
//! Burn rate is the classic error-budget form: with a target success
//! ratio of [`TARGET_SUCCESS`], a budget of `1 − target` failures is
//! allowed, and `burn = breach_fraction / (1 − target)` says how many
//! times faster than sustainable the budget is being spent. Burn is
//! computed over two windows from the telemetry ring — the whole ring
//! (long) and the newest window (short) — so `health` can distinguish
//! a slow leak from an active fire.

use std::sync::OnceLock;

use sram_probe::telemetry::Export;
use sram_probe::Counter;

/// Default per-request latency objective in milliseconds.
pub const DEFAULT_SLO_MS: u64 = 250;

/// Target success ratio: 99% of requests inside the objective.
pub const TARGET_SUCCESS: f64 = 0.99;

/// One op's SLO wiring: wire name, env override, counter names.
struct OpSlo {
    op: &'static str,
    env: &'static str,
    total: &'static str,
    breach: &'static str,
}

/// Every wire op, in registry order. Counter names replace `-` with
/// `_` to stay inside the probe naming grammar.
const OPS: &[OpSlo] = &[
    OpSlo {
        op: "optimize",
        env: "SRAM_SLO_OPTIMIZE_MS",
        total: "serve.slo.optimize.total",
        breach: "serve.slo.optimize.breach",
    },
    OpSlo {
        op: "evaluate-point",
        env: "SRAM_SLO_EVALUATE_POINT_MS",
        total: "serve.slo.evaluate_point.total",
        breach: "serve.slo.evaluate_point.breach",
    },
    OpSlo {
        op: "pareto-front",
        env: "SRAM_SLO_PARETO_FRONT_MS",
        total: "serve.slo.pareto_front.total",
        breach: "serve.slo.pareto_front.breach",
    },
    OpSlo {
        op: "yield-check",
        env: "SRAM_SLO_YIELD_CHECK_MS",
        total: "serve.slo.yield_check.total",
        breach: "serve.slo.yield_check.breach",
    },
    OpSlo {
        op: "stats",
        env: "SRAM_SLO_STATS_MS",
        total: "serve.slo.stats.total",
        breach: "serve.slo.stats.breach",
    },
    OpSlo {
        op: "metrics",
        env: "SRAM_SLO_METRICS_MS",
        total: "serve.slo.metrics.total",
        breach: "serve.slo.metrics.breach",
    },
    OpSlo {
        op: "health",
        env: "SRAM_SLO_HEALTH_MS",
        total: "serve.slo.health.total",
        breach: "serve.slo.health.breach",
    },
];

struct Resolved {
    spec: &'static OpSlo,
    total: &'static Counter,
    breach: &'static Counter,
    objective_ms: u64,
}

fn parse_ms(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.trim().parse::<u64>().ok()
}

/// Counter handles and objectives, resolved once per process (env is
/// read at first use, like the telemetry window knobs).
fn resolved() -> &'static [Resolved] {
    static TABLE: OnceLock<Vec<Resolved>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let global = parse_ms("SRAM_SLO_MS");
        OPS.iter()
            .map(|spec| Resolved {
                spec,
                total: sram_probe::counter(spec.total),
                breach: sram_probe::counter(spec.breach),
                objective_ms: parse_ms(spec.env)
                    .or(global)
                    .unwrap_or(DEFAULT_SLO_MS)
                    .clamp(1, 3_600_000),
            })
            .collect()
    })
}

/// Records one served request against its op's objective. Unknown ops
/// (future protocol growth) are ignored rather than miscounted.
pub fn record(op: &str, latency_ns: u64) {
    for r in resolved() {
        if r.spec.op == op {
            r.total.inc();
            if latency_ns > r.objective_ms.saturating_mul(1_000_000) {
                r.breach.inc();
            }
            return;
        }
    }
}

/// `breach_fraction / (1 − target)` — how many times faster than
/// sustainable the error budget burns. Zero traffic burns nothing.
#[must_use]
pub fn burn_rate(breach: u64, total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    (breach as f64 / total as f64) / (1.0 - TARGET_SUCCESS)
}

/// One op's burn-rate status as surfaced by `health`.
#[derive(Debug, Clone, Copy)]
pub struct SloStatus {
    /// Wire op name.
    pub op: &'static str,
    /// Latency objective in milliseconds.
    pub objective_ms: u64,
    /// Requests observed over the long window (whole ring, or process
    /// lifetime when the ring is empty).
    pub total: u64,
    /// Objective breaches over the same window.
    pub breach: u64,
    /// Burn rate over the whole ring.
    pub burn_long: f64,
    /// Burn rate over the newest window only.
    pub burn_short: f64,
}

/// Burn-rate statuses for every op that has seen traffic, computed
/// from one telemetry [`Export`] (so `health` and `metrics` agree).
#[must_use]
pub fn statuses(export: &Export) -> Vec<SloStatus> {
    let ring_delta = |name: &str| export.counters.get(name).map_or(0, |s| s.delta);
    let last_delta = |name: &str| {
        export
            .windows
            .last()
            .and_then(|w| w.delta.counters.get(name).copied())
            .unwrap_or(0)
    };
    let has_ring = !export.windows.is_empty();
    resolved()
        .iter()
        .filter_map(|r| {
            let (total, breach) = if has_ring {
                (ring_delta(r.spec.total), ring_delta(r.spec.breach))
            } else {
                (r.total.get(), r.breach.get())
            };
            if total == 0 {
                return None;
            }
            let burn_long = burn_rate(breach, total);
            let burn_short = if has_ring {
                burn_rate(last_delta(r.spec.breach), last_delta(r.spec.total))
            } else {
                burn_long
            };
            Some(SloStatus {
                op: r.spec.op,
                objective_ms: r.objective_ms,
                total,
                breach,
                burn_long,
                burn_short,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_rate_scales_with_breach_fraction() {
        assert_eq!(burn_rate(0, 0), 0.0);
        assert_eq!(burn_rate(0, 100), 0.0);
        // Exactly on budget: 1% breaches at a 99% target burns at 1×.
        assert!((burn_rate(1, 100) - 1.0).abs() < 1e-9);
        // Everything breaching burns the budget 100× too fast.
        assert!((burn_rate(50, 50) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn op_table_is_well_formed() {
        for spec in OPS {
            assert!(spec.total.starts_with("serve.slo."), "{}", spec.total);
            assert!(spec.breach.starts_with("serve.slo."), "{}", spec.breach);
            assert!(!spec.total.contains('-'), "{}", spec.total);
            assert!(spec.env.starts_with("SRAM_SLO_"), "{}", spec.env);
        }
        // Names are unique across the table.
        let mut names: Vec<&str> = OPS.iter().flat_map(|s| [s.total, s.breach]).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OPS.len() * 2);
    }
}
