//! Typed queries: strict wire-to-[`Query`] parsing, canonical cache
//! keys, and the batching key.
//!
//! Every request line is an object with an `"op"` field naming one of
//! the query kinds, the kind's own fields, and four optional envelope
//! fields: `"id"` (echoed verbatim in the response), `"deadline_ms"`
//! (per-request budget), `"trace"` (when `true`, the response carries
//! the request's span tree inline), and `"trace_ctx"` (a propagated
//! [`TraceCtx`] in its `00-<trace id>-<parent span>-<flags>` wire form;
//! when present its sampling flag overrides local sampling and the
//! server re-roots its span tree under the remote parent). Unknown
//! fields are rejected — a misspelled parameter silently falling back
//! to a default is the worst failure mode a query service can have.
//!
//! Two queries that differ only in field order (or envelope fields)
//! must hit the same cache entry, so the cache key is derived from a
//! *canonical* rendering of the parsed query, never from the raw line.

use crate::error::ServeError;
use crate::json::Json;
use sram_coopt::{
    DelayOnly, EnergyDelayProduct, EnergyDelaySquared, EnergyOnly, Method, Objective,
};
use sram_device::VtFlavor;
use sram_probe::trace::TraceCtx;

/// Largest accepted capacity (64 MiB) — guards the exhaustive search
/// from absurd requests.
pub const MAX_CAPACITY_BYTES: u64 = 64 * 1024 * 1024;

/// Largest accepted Monte Carlo sample count.
pub const MAX_YIELD_SAMPLES: u64 = 100_000;

/// Largest accepted per-request deadline (one hour).
pub const MAX_DEADLINE_MS: u64 = 3_600_000;

/// The optimization objective a query may select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveKind {
    /// `E × D` — the paper's objective (wire: `"edp"`, the default).
    Edp,
    /// `E × D²` (wire: `"ed2p"`).
    Ed2p,
    /// Pure delay (wire: `"delay"`).
    Delay,
    /// Pure energy (wire: `"energy"`).
    Energy,
}

impl ObjectiveKind {
    /// The scoring object behind this kind.
    #[must_use]
    pub fn objective(self) -> &'static (dyn Objective + Sync) {
        match self {
            ObjectiveKind::Edp => &EnergyDelayProduct,
            ObjectiveKind::Ed2p => &EnergyDelaySquared,
            ObjectiveKind::Delay => &DelayOnly,
            ObjectiveKind::Energy => &EnergyOnly,
        }
    }

    /// The wire name.
    #[must_use]
    pub fn wire(self) -> &'static str {
        match self {
            ObjectiveKind::Edp => "edp",
            ObjectiveKind::Ed2p => "ed2p",
            ObjectiveKind::Delay => "delay",
            ObjectiveKind::Energy => "energy",
        }
    }

    fn parse(s: &str) -> Result<Self, ServeError> {
        match s {
            "edp" => Ok(ObjectiveKind::Edp),
            "ed2p" => Ok(ObjectiveKind::Ed2p),
            "delay" => Ok(ObjectiveKind::Delay),
            "energy" => Ok(ObjectiveKind::Energy),
            other => Err(ServeError::InvalidQuery(format!(
                "unknown objective {other:?} (expected edp|ed2p|delay|energy)"
            ))),
        }
    }
}

/// A validated query — the in-process API mirror of the wire protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Full co-optimization of one `(capacity, flavor, method)` under an
    /// objective — one Table-4 row.
    Optimize {
        /// Memory capacity in bytes.
        capacity_bytes: u64,
        /// Cell flavor.
        flavor: VtFlavor,
        /// Rail policy.
        method: Method,
        /// Objective to minimize.
        objective: ObjectiveKind,
    },
    /// Evaluate one explicit design point through the array model.
    EvaluatePoint {
        /// Memory capacity in bytes.
        capacity_bytes: u64,
        /// Cell flavor.
        flavor: VtFlavor,
        /// Rail policy.
        method: Method,
        /// Array rows `n_r` (columns follow from the capacity).
        rows: u32,
        /// Negative-Gnd level in millivolts (≤ 0 for an assist).
        vssc_mv: i64,
        /// Precharger fins `N_pre`.
        n_pre: u32,
        /// Write-buffer fins `N_wr`.
        n_wr: u32,
    },
    /// Energy/delay Pareto front over the feasible design space.
    ParetoFront {
        /// Memory capacity in bytes.
        capacity_bytes: u64,
        /// Cell flavor.
        flavor: VtFlavor,
        /// Rail policy.
        method: Method,
    },
    /// Optimize, then Monte Carlo-verify the winner against the
    /// statistical yield constraint.
    YieldCheck {
        /// Memory capacity in bytes.
        capacity_bytes: u64,
        /// Cell flavor.
        flavor: VtFlavor,
        /// Rail policy.
        method: Method,
        /// Monte Carlo sample count.
        samples: u64,
    },
    /// Live server statistics: probe snapshot, uptime, queue depth,
    /// cache occupancy. Answered directly by the engine (never cached,
    /// never characterized).
    Stats,
    /// Windowed telemetry: Prometheus-style text exposition plus a JSON
    /// form of the same export (rates, deltas, streaming quantiles).
    /// Answered directly by the engine (never cached, never
    /// characterized).
    Metrics,
    /// Health verdict (`ok|degraded|unhealthy`) with reasons: worker
    /// liveness/respawns, queue pressure, cache occupancy, windowed
    /// expiry/reject rates, and SLO burn rates. Answered directly by
    /// the engine (never cached, never characterized).
    Health,
}

/// A query plus its request envelope (client id, deadline, trace flag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen id, echoed verbatim in the response.
    pub id: Option<String>,
    /// Per-request deadline budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// When `true`, the server traces this request and inlines its span
    /// tree in the response under `"trace"`.
    pub trace: bool,
    /// Propagated trace context from an upstream caller (a router).
    /// When present, its sampling decision governs tracing (the local
    /// `trace` flag and sampler are bypassed) and the server's
    /// `serve.request` root adopts the context's parent span.
    pub trace_ctx: Option<TraceCtx>,
    /// The validated query.
    pub query: Query,
}

/// 64-bit FNV-1a — the content hash behind cache keys. Collisions are
/// tolerated by the cache (entries also store the canonical string),
/// so a small, dependency-free hash is enough.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn flavor_wire(flavor: VtFlavor) -> &'static str {
    match flavor {
        VtFlavor::Lvt => "lvt",
        VtFlavor::Hvt => "hvt",
    }
}

fn method_wire(method: Method) -> &'static str {
    match method {
        Method::M1 => "m1",
        Method::M2 => "m2",
    }
}

fn parse_flavor(s: &str) -> Result<VtFlavor, ServeError> {
    match s.to_ascii_lowercase().as_str() {
        "lvt" => Ok(VtFlavor::Lvt),
        "hvt" => Ok(VtFlavor::Hvt),
        other => Err(ServeError::InvalidQuery(format!(
            "unknown flavor {other:?} (expected lvt|hvt)"
        ))),
    }
}

fn parse_method(s: &str) -> Result<Method, ServeError> {
    match s.to_ascii_lowercase().as_str() {
        "m1" => Ok(Method::M1),
        "m2" => Ok(Method::M2),
        other => Err(ServeError::InvalidQuery(format!(
            "unknown method {other:?} (expected m1|m2)"
        ))),
    }
}

/// Typed field access over a request object with strictness helpers.
struct Fields<'a> {
    obj: &'a [(String, Json)],
}

impl<'a> Fields<'a> {
    fn get(&self, key: &str) -> Option<&'a Json> {
        self.obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str_field(&self, key: &str) -> Result<&'a str, ServeError> {
        self.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::InvalidQuery(format!("missing string field {key:?}")))
    }

    fn u64_field(&self, key: &str) -> Result<u64, ServeError> {
        self.get(key).and_then(Json::as_u64).ok_or_else(|| {
            ServeError::InvalidQuery(format!("missing non-negative integer field {key:?}"))
        })
    }

    fn u32_field(&self, key: &str) -> Result<u32, ServeError> {
        u32::try_from(self.u64_field(key)?)
            .map_err(|_| ServeError::InvalidQuery(format!("field {key:?} exceeds 32-bit range")))
    }

    fn i64_field(&self, key: &str) -> Result<i64, ServeError> {
        self.get(key)
            .and_then(Json::as_i64)
            .ok_or_else(|| ServeError::InvalidQuery(format!("missing integer field {key:?}")))
    }

    fn reject_unknown(&self, op_fields: &[&str]) -> Result<(), ServeError> {
        for (key, _) in self.obj {
            if !ENVELOPE.contains(&key.as_str()) && !op_fields.contains(&key.as_str()) {
                return Err(ServeError::InvalidQuery(format!("unknown field {key:?}")));
            }
        }
        Ok(())
    }
}

/// Envelope fields accepted on every op.
const ENVELOPE: [&str; 5] = ["op", "id", "deadline_ms", "trace", "trace_ctx"];

fn capacity_field(fields: &Fields<'_>) -> Result<u64, ServeError> {
    let bytes = fields.u64_field("capacity_bytes")?;
    if bytes == 0 || bytes > MAX_CAPACITY_BYTES {
        return Err(ServeError::InvalidQuery(format!(
            "capacity_bytes must be in 1..={MAX_CAPACITY_BYTES}, got {bytes}"
        )));
    }
    Ok(bytes)
}

impl Request {
    /// Parses and validates one request line.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] for malformed JSON,
    /// [`ServeError::InvalidQuery`] for well-formed JSON that is not a
    /// valid query (wrong shape, unknown op/field, out-of-range value).
    pub fn from_line(line: &str) -> Result<Self, ServeError> {
        let json = Json::parse(line).map_err(|e| ServeError::Protocol(e.to_string()))?;
        let obj = match &json {
            Json::Obj(pairs) => pairs.as_slice(),
            _ => return Err(ServeError::InvalidQuery("request must be an object".into())),
        };
        let fields = Fields { obj };

        let id = match fields.get("id") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| ServeError::InvalidQuery("id must be a string".into()))?
                    .to_string(),
            ),
        };
        let deadline_ms = match fields.get("deadline_ms") {
            None => None,
            Some(v) => {
                let ms = v.as_u64().ok_or_else(|| {
                    ServeError::InvalidQuery("deadline_ms must be a non-negative integer".into())
                })?;
                if ms == 0 || ms > MAX_DEADLINE_MS {
                    return Err(ServeError::InvalidQuery(format!(
                        "deadline_ms must be in 1..={MAX_DEADLINE_MS}, got {ms}"
                    )));
                }
                Some(ms)
            }
        };
        let trace = match fields.get("trace") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| ServeError::InvalidQuery("trace must be a boolean".into()))?,
        };
        let trace_ctx = match fields.get("trace_ctx") {
            None => None,
            Some(v) => {
                let s = v
                    .as_str()
                    .ok_or_else(|| ServeError::InvalidQuery("trace_ctx must be a string".into()))?;
                Some(TraceCtx::parse(s).ok_or_else(|| {
                    ServeError::InvalidQuery(format!(
                        "trace_ctx must be 00-<16 hex>-<16 hex>-<01|00>, got {s:?}"
                    ))
                })?)
            }
        };

        let op = fields.str_field("op")?;
        let query = match op {
            "optimize" => {
                fields.reject_unknown(&["capacity_bytes", "flavor", "method", "objective"])?;
                Query::Optimize {
                    capacity_bytes: capacity_field(&fields)?,
                    flavor: parse_flavor(fields.str_field("flavor")?)?,
                    method: parse_method(fields.str_field("method")?)?,
                    objective: match fields.get("objective") {
                        None => ObjectiveKind::Edp,
                        Some(v) => ObjectiveKind::parse(v.as_str().ok_or_else(|| {
                            ServeError::InvalidQuery("objective must be a string".into())
                        })?)?,
                    },
                }
            }
            "evaluate-point" => {
                fields.reject_unknown(&[
                    "capacity_bytes",
                    "flavor",
                    "method",
                    "rows",
                    "vssc_mv",
                    "n_pre",
                    "n_wr",
                ])?;
                let rows = fields.u32_field("rows")?;
                if rows == 0 || !rows.is_power_of_two() {
                    return Err(ServeError::InvalidQuery(format!(
                        "rows must be a positive power of two, got {rows}"
                    )));
                }
                let vssc_mv = fields.i64_field("vssc_mv")?;
                if !(-1000..=0).contains(&vssc_mv) {
                    return Err(ServeError::InvalidQuery(format!(
                        "vssc_mv must be in -1000..=0, got {vssc_mv}"
                    )));
                }
                let n_pre = fields.u32_field("n_pre")?;
                let n_wr = fields.u32_field("n_wr")?;
                if n_pre == 0 || n_wr == 0 || n_pre > 1000 || n_wr > 1000 {
                    return Err(ServeError::InvalidQuery(
                        "n_pre and n_wr must be in 1..=1000".into(),
                    ));
                }
                Query::EvaluatePoint {
                    capacity_bytes: capacity_field(&fields)?,
                    flavor: parse_flavor(fields.str_field("flavor")?)?,
                    method: parse_method(fields.str_field("method")?)?,
                    rows,
                    vssc_mv,
                    n_pre,
                    n_wr,
                }
            }
            "pareto-front" => {
                fields.reject_unknown(&["capacity_bytes", "flavor", "method"])?;
                Query::ParetoFront {
                    capacity_bytes: capacity_field(&fields)?,
                    flavor: parse_flavor(fields.str_field("flavor")?)?,
                    method: parse_method(fields.str_field("method")?)?,
                }
            }
            "yield-check" => {
                fields.reject_unknown(&["capacity_bytes", "flavor", "method", "samples"])?;
                let samples = fields.u64_field("samples")?;
                if samples == 0 || samples > MAX_YIELD_SAMPLES {
                    return Err(ServeError::InvalidQuery(format!(
                        "samples must be in 1..={MAX_YIELD_SAMPLES}, got {samples}"
                    )));
                }
                Query::YieldCheck {
                    capacity_bytes: capacity_field(&fields)?,
                    flavor: parse_flavor(fields.str_field("flavor")?)?,
                    method: parse_method(fields.str_field("method")?)?,
                    samples,
                }
            }
            "stats" => {
                fields.reject_unknown(&[])?;
                Query::Stats
            }
            "metrics" => {
                fields.reject_unknown(&[])?;
                Query::Metrics
            }
            "health" => {
                fields.reject_unknown(&[])?;
                Query::Health
            }
            other => {
                return Err(ServeError::InvalidQuery(format!(
                "unknown op {other:?} (expected optimize|evaluate-point|pareto-front|yield-check|stats|metrics|health)"
            )))
            }
        };

        Ok(Request {
            id,
            deadline_ms,
            trace,
            trace_ctx,
            query,
        })
    }

    /// Renders the request back to a wire line (client side).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        if let Some(id) = &self.id {
            pairs.push(("id".into(), Json::Str(id.clone())));
        }
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms".into(), Json::Num(ms as f64)));
        }
        if self.trace {
            pairs.push(("trace".into(), Json::Bool(true)));
        }
        if let Some(ctx) = &self.trace_ctx {
            pairs.push(("trace_ctx".into(), Json::Str(ctx.encode())));
        }
        let num = |v: f64| Json::Num(v);
        match &self.query {
            Query::Optimize {
                capacity_bytes,
                flavor,
                method,
                objective,
            } => {
                pairs.push(("op".into(), Json::Str("optimize".into())));
                pairs.push(("capacity_bytes".into(), num(*capacity_bytes as f64)));
                pairs.push(("flavor".into(), Json::Str(flavor_wire(*flavor).into())));
                pairs.push(("method".into(), Json::Str(method_wire(*method).into())));
                pairs.push(("objective".into(), Json::Str(objective.wire().into())));
            }
            Query::EvaluatePoint {
                capacity_bytes,
                flavor,
                method,
                rows,
                vssc_mv,
                n_pre,
                n_wr,
            } => {
                pairs.push(("op".into(), Json::Str("evaluate-point".into())));
                pairs.push(("capacity_bytes".into(), num(*capacity_bytes as f64)));
                pairs.push(("flavor".into(), Json::Str(flavor_wire(*flavor).into())));
                pairs.push(("method".into(), Json::Str(method_wire(*method).into())));
                pairs.push(("rows".into(), num(f64::from(*rows))));
                pairs.push(("vssc_mv".into(), num(*vssc_mv as f64)));
                pairs.push(("n_pre".into(), num(f64::from(*n_pre))));
                pairs.push(("n_wr".into(), num(f64::from(*n_wr))));
            }
            Query::ParetoFront {
                capacity_bytes,
                flavor,
                method,
            } => {
                pairs.push(("op".into(), Json::Str("pareto-front".into())));
                pairs.push(("capacity_bytes".into(), num(*capacity_bytes as f64)));
                pairs.push(("flavor".into(), Json::Str(flavor_wire(*flavor).into())));
                pairs.push(("method".into(), Json::Str(method_wire(*method).into())));
            }
            Query::YieldCheck {
                capacity_bytes,
                flavor,
                method,
                samples,
            } => {
                pairs.push(("op".into(), Json::Str("yield-check".into())));
                pairs.push(("capacity_bytes".into(), num(*capacity_bytes as f64)));
                pairs.push(("flavor".into(), Json::Str(flavor_wire(*flavor).into())));
                pairs.push(("method".into(), Json::Str(method_wire(*method).into())));
                pairs.push(("samples".into(), num(*samples as f64)));
            }
            Query::Stats => {
                pairs.push(("op".into(), Json::Str("stats".into())));
            }
            Query::Metrics => {
                pairs.push(("op".into(), Json::Str("metrics".into())));
            }
            Query::Health => {
                pairs.push(("op".into(), Json::Str("health".into())));
            }
        }
        Json::Obj(pairs)
    }
}

impl Query {
    /// The wire op name (`"optimize"`, `"stats"`, …) — the key SLO
    /// tracking groups latency objectives by.
    #[must_use]
    pub fn op(&self) -> &'static str {
        match self {
            Query::Optimize { .. } => "optimize",
            Query::EvaluatePoint { .. } => "evaluate-point",
            Query::ParetoFront { .. } => "pareto-front",
            Query::YieldCheck { .. } => "yield-check",
            Query::Stats => "stats",
            Query::Metrics => "metrics",
            Query::Health => "health",
        }
    }

    /// Canonical rendering — field-order-independent, envelope-free.
    /// Two wire lines describing the same query always canonicalize to
    /// the same string, which is the content the cache key hashes.
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            Query::Optimize {
                capacity_bytes,
                flavor,
                method,
                objective,
            } => format!(
                "optimize|cap={capacity_bytes}|flavor={}|method={}|obj={}",
                flavor_wire(*flavor),
                method_wire(*method),
                objective.wire()
            ),
            Query::EvaluatePoint {
                capacity_bytes,
                flavor,
                method,
                rows,
                vssc_mv,
                n_pre,
                n_wr,
            } => format!(
                "evaluate-point|cap={capacity_bytes}|flavor={}|method={}|rows={rows}|vssc={vssc_mv}|npre={n_pre}|nwr={n_wr}",
                flavor_wire(*flavor),
                method_wire(*method)
            ),
            Query::ParetoFront {
                capacity_bytes,
                flavor,
                method,
            } => format!(
                "pareto-front|cap={capacity_bytes}|flavor={}|method={}",
                flavor_wire(*flavor),
                method_wire(*method)
            ),
            Query::YieldCheck {
                capacity_bytes,
                flavor,
                method,
                samples,
            } => format!(
                "yield-check|cap={capacity_bytes}|flavor={}|method={}|samples={samples}",
                flavor_wire(*flavor),
                method_wire(*method)
            ),
            Query::Stats => "stats".to_string(),
            Query::Metrics => "metrics".to_string(),
            Query::Health => "health".to_string(),
        }
    }

    /// The content-addressed cache key: FNV-1a of [`Self::canonical`].
    #[must_use]
    pub fn key(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }

    /// The batching key: queries sharing a `(flavor, method)` pair can
    /// share one cell characterization pass. `None` for queries that
    /// need no characterization at all ([`Query::Stats`]).
    #[must_use]
    pub fn char_key(&self) -> Option<(VtFlavor, Method)> {
        match *self {
            Query::Optimize { flavor, method, .. }
            | Query::EvaluatePoint { flavor, method, .. }
            | Query::ParetoFront { flavor, method, .. }
            | Query::YieldCheck { flavor, method, .. } => Some((flavor, method)),
            Query::Stats | Query::Metrics | Query::Health => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimize_parses_with_default_objective() {
        let r = Request::from_line(
            r#"{"op":"optimize","capacity_bytes":4096,"flavor":"hvt","method":"m2"}"#,
        )
        .unwrap();
        assert_eq!(
            r.query,
            Query::Optimize {
                capacity_bytes: 4096,
                flavor: VtFlavor::Hvt,
                method: Method::M2,
                objective: ObjectiveKind::Edp,
            }
        );
        assert!(r.id.is_none());
        assert!(r.deadline_ms.is_none());
    }

    #[test]
    fn envelope_fields_round_trip() {
        let r = Request::from_line(
            r#"{"id":"q7","deadline_ms":250,"op":"optimize","capacity_bytes":128,"flavor":"lvt","method":"m1","objective":"delay"}"#,
        )
        .unwrap();
        assert_eq!(r.id.as_deref(), Some("q7"));
        assert_eq!(r.deadline_ms, Some(250));
        let rendered = r.to_json().render();
        let back = Request::from_line(&rendered).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn field_order_does_not_change_key() {
        let a = Request::from_line(
            r#"{"op":"optimize","capacity_bytes":4096,"flavor":"hvt","method":"m2","objective":"edp"}"#,
        )
        .unwrap();
        let b = Request::from_line(
            r#"{"method":"M2","objective":"edp","op":"optimize","flavor":"HVT","capacity_bytes":4096}"#,
        )
        .unwrap();
        assert_eq!(a.query.canonical(), b.query.canonical());
        assert_eq!(a.query.key(), b.query.key());
    }

    #[test]
    fn distinct_queries_have_distinct_canonicals() {
        let mk = |line: &str| Request::from_line(line).unwrap().query;
        let q1 = mk(r#"{"op":"optimize","capacity_bytes":4096,"flavor":"hvt","method":"m2"}"#);
        let q2 = mk(r#"{"op":"optimize","capacity_bytes":4096,"flavor":"hvt","method":"m1"}"#);
        let q3 = mk(r#"{"op":"optimize","capacity_bytes":4096,"flavor":"lvt","method":"m2"}"#);
        let q4 = mk(r#"{"op":"pareto-front","capacity_bytes":4096,"flavor":"hvt","method":"m2"}"#);
        let canonicals = [
            q1.canonical(),
            q2.canonical(),
            q3.canonical(),
            q4.canonical(),
        ];
        for i in 0..canonicals.len() {
            for j in (i + 1)..canonicals.len() {
                assert_ne!(canonicals[i], canonicals[j]);
            }
        }
    }

    #[test]
    fn unknown_field_is_rejected() {
        let err = Request::from_line(
            r#"{"op":"optimize","capacity_bytes":4096,"flavor":"hvt","method":"m2","capicity":1}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("capicity"), "{err}");
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        for line in [
            r#"{"op":"optimize","capacity_bytes":0,"flavor":"hvt","method":"m2"}"#,
            r#"{"op":"optimize","capacity_bytes":4096,"flavor":"xvt","method":"m2"}"#,
            r#"{"op":"optimize","capacity_bytes":4096,"flavor":"hvt","method":"m3"}"#,
            r#"{"op":"yield-check","capacity_bytes":4096,"flavor":"hvt","method":"m2","samples":0}"#,
            r#"{"op":"evaluate-point","capacity_bytes":4096,"flavor":"hvt","method":"m2","rows":3,"vssc_mv":0,"n_pre":4,"n_wr":4}"#,
            r#"{"op":"evaluate-point","capacity_bytes":4096,"flavor":"hvt","method":"m2","rows":64,"vssc_mv":5,"n_pre":4,"n_wr":4}"#,
            r#"{"op":"optimize","capacity_bytes":4096,"flavor":"hvt","method":"m2","objective":"power"}"#,
            r#"{"op":"teleport","capacity_bytes":4096,"flavor":"hvt","method":"m2"}"#,
            r#"{"op":"optimize","capacity_bytes":4096,"flavor":"hvt","method":"m2","deadline_ms":0}"#,
        ] {
            assert!(
                matches!(Request::from_line(line), Err(ServeError::InvalidQuery(_))),
                "line should be rejected: {line}"
            );
        }
    }

    #[test]
    fn malformed_json_is_a_protocol_error() {
        assert!(matches!(
            Request::from_line("{not json"),
            Err(ServeError::Protocol(_))
        ));
        assert!(matches!(
            Request::from_line("[1,2,3]"),
            Err(ServeError::InvalidQuery(_))
        ));
    }

    #[test]
    fn char_key_groups_by_technology() {
        let q1 = Request::from_line(
            r#"{"op":"optimize","capacity_bytes":4096,"flavor":"hvt","method":"m2"}"#,
        )
        .unwrap()
        .query;
        let q2 = Request::from_line(
            r#"{"op":"pareto-front","capacity_bytes":128,"flavor":"hvt","method":"m2"}"#,
        )
        .unwrap()
        .query;
        assert_eq!(q1.char_key(), q2.char_key());
        assert_eq!(q1.char_key(), Some((VtFlavor::Hvt, Method::M2)));
    }

    #[test]
    fn stats_parses_and_needs_no_characterization() {
        let r = Request::from_line(r#"{"op":"stats","id":"s1"}"#).unwrap();
        assert_eq!(r.query, Query::Stats);
        assert_eq!(r.query.char_key(), None);
        assert_eq!(r.query.canonical(), "stats");
        let back = Request::from_line(&r.to_json().render()).unwrap();
        assert_eq!(back, r);
        // Stats takes no op fields of its own.
        assert!(matches!(
            Request::from_line(r#"{"op":"stats","capacity_bytes":64}"#),
            Err(ServeError::InvalidQuery(_))
        ));
    }

    #[test]
    fn metrics_and_health_parse_and_need_no_characterization() {
        for (line, query, canonical) in [
            (r#"{"op":"metrics","id":"m1"}"#, Query::Metrics, "metrics"),
            (r#"{"op":"health"}"#, Query::Health, "health"),
        ] {
            let r = Request::from_line(line).unwrap();
            assert_eq!(r.query, query);
            assert_eq!(r.query.char_key(), None);
            assert_eq!(r.query.canonical(), canonical);
            let back = Request::from_line(&r.to_json().render()).unwrap();
            assert_eq!(back, r);
        }
        // Neither op takes fields of its own.
        assert!(matches!(
            Request::from_line(r#"{"op":"metrics","capacity_bytes":64}"#),
            Err(ServeError::InvalidQuery(_))
        ));
        assert!(matches!(
            Request::from_line(r#"{"op":"health","samples":1}"#),
            Err(ServeError::InvalidQuery(_))
        ));
    }

    #[test]
    fn trace_flag_parses_and_round_trips() {
        let r = Request::from_line(
            r#"{"op":"optimize","capacity_bytes":128,"flavor":"hvt","method":"m2","trace":true}"#,
        )
        .unwrap();
        assert!(r.trace);
        let back = Request::from_line(&r.to_json().render()).unwrap();
        assert_eq!(back, r);
        // Absent means off; non-boolean is rejected.
        let plain = Request::from_line(
            r#"{"op":"optimize","capacity_bytes":128,"flavor":"hvt","method":"m2"}"#,
        )
        .unwrap();
        assert!(!plain.trace);
        let err = Request::from_line(
            r#"{"op":"optimize","capacity_bytes":128,"flavor":"hvt","method":"m2","trace":1}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("trace must be a boolean"), "{err}");
    }

    #[test]
    fn trace_ctx_round_trips_through_the_wire_codec() {
        let ctx = TraceCtx {
            trace_id: 0x1234_5678_9abc_def0,
            parent_span: 99,
            sampled: true,
        };
        let line = format!(
            r#"{{"op":"optimize","capacity_bytes":128,"flavor":"hvt","method":"m2","trace_ctx":"{}"}}"#,
            ctx.encode()
        );
        let r = Request::from_line(&line).unwrap();
        assert_eq!(r.trace_ctx, Some(ctx));
        let back = Request::from_line(&r.to_json().render()).unwrap();
        assert_eq!(back, r);
        // The sampled=false flag survives the round trip too.
        let off = TraceCtx {
            sampled: false,
            ..ctx
        };
        let mut unsampled = r.clone();
        unsampled.trace_ctx = Some(off);
        let back = Request::from_line(&unsampled.to_json().render()).unwrap();
        assert_eq!(back.trace_ctx, Some(off));
    }

    #[test]
    fn malformed_trace_ctx_is_rejected() {
        for ctx in [r#""garbage""#, r#""01-00-00-01""#, "17", "true"] {
            let line = format!(r#"{{"op":"stats","trace_ctx":{ctx}}}"#);
            assert!(
                matches!(Request::from_line(&line), Err(ServeError::InvalidQuery(_))),
                "should reject trace_ctx {ctx}"
            );
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
