//! `sram-serve` — a concurrent query server over the co-optimization
//! framework.
//!
//! The paper's framework answers one `(capacity, flavor, method)`
//! question per run; this crate turns it into a long-lived service that
//! answers many, concurrently, with two structural optimizations:
//!
//! * **batching** — queries arriving together are grouped by
//!   technology (`(VtFlavor, Method)`), so one cell characterization
//!   pass (the expensive LUT build) is shared by the whole group;
//! * **content-addressed caching** — results are keyed by a canonical
//!   rendering of the query, so a repeated question is answered in
//!   microseconds regardless of the wire formatting it arrived in.
//!
//! The same [`Engine`] backs two transports: an in-process API (used by
//! the `reproduce serve-bench` experiment) and a line-delimited JSON
//! protocol over TCP ([`Server`], `std::net` only — no async runtime,
//! see `DESIGN.md` §9 for why).
//!
//! # Wire protocol
//!
//! One request per line, one response per line:
//!
//! ```text
//! → {"op":"optimize","capacity_bytes":4096,"flavor":"hvt","method":"m2"}
//! ← {"status":"ok","cached":false,"result":{"label":"6T-HVT-M2",...}}
//! ```
//!
//! Ops: `optimize`, `evaluate-point`, `pareto-front`, `yield-check`,
//! plus three introspection ops answered directly and never cached —
//! `stats` (live probe snapshot, uptime, queue depth, cache
//! occupancy), `metrics` (windowed telemetry: Prometheus-style text
//! exposition plus the same export as JSON), and `health` (an
//! `ok|degraded|unhealthy` verdict with reasons: worker liveness,
//! queue pressure, windowed expiry/reject rates, and per-op SLO burn —
//! the contract a cluster router polls). Envelope fields `id`
//! (echoed), `deadline_ms` (per-request budget), `trace` (when
//! `true`, the response carries the request's span tree inline under
//! `"trace"`: parse → queue wait → characterize/execute → respond;
//! under `SRAM_TRACE_SAMPLE` < 1 only a seeded, deterministic fraction
//! of traced roots actually record), and `trace_ctx` (a propagated
//! `00-<trace id>-<parent span>-<01|00>` context from an upstream
//! router: its flag byte overrides local sampling, and the node's
//! `serve.request` root adopts the remote parent so cross-process
//! trees stitch into one timeline) are
//! accepted on every op. Error replies carry `"status":"error"`,
//! `"busy"` (queue full — retry), `"deadline_exceeded"`,
//! `"shutting_down"`, or `"internal"` (a worker panicked mid-request;
//! the panic was isolated and the worker respawned), plus a
//! `"retryable"` boolean so clients can react without parsing messages.
//!
//! # Example (in-process)
//!
//! ```
//! use sram_serve::{CacheConfig, Engine, Request};
//! use sram_coopt::{CoOptimizationFramework, DesignSpace};
//!
//! let engine = Engine::new(
//!     CoOptimizationFramework::paper_mode().with_space(DesignSpace::coarse()),
//!     CacheConfig::default(),
//! );
//! let request = Request::from_line(
//!     r#"{"op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2"}"#,
//! )
//! .unwrap();
//! let cold = engine.handle(&request);
//! let warm = engine.handle(&request); // served from the result cache
//! assert_eq!(
//!     cold.get("result").map(|r| r.render()),
//!     warm.get("result").map(|r| r.render()),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod client;
mod engine;
mod error;
mod json;
mod query;
mod server;
pub mod slo;

pub use cache::{CacheConfig, CacheCounters, ResultCache};
pub use client::{Client, NodeConn};
pub use engine::{design_json, error_response, ok_response, Engine};
pub use error::{wire_status, ServeError};
pub use json::{Json, JsonError};
pub use query::{
    fnv1a64, ObjectiveKind, Query, Request, MAX_CAPACITY_BYTES, MAX_DEADLINE_MS, MAX_YIELD_SAMPLES,
};
pub use server::{spawn_local_node, Server, ServerConfig, SRAM_CACHE_FILE_ENV};
