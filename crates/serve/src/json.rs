//! Minimal JSON codec for the line-delimited wire protocol.
//!
//! The workspace links no serialization ecosystem (the build is
//! offline), so the server ships its own value type with a
//! recursive-descent parser and a renderer. Objects preserve insertion
//! order, which keeps rendered responses byte-stable for identical
//! data — the property the content-addressed cache relies on when it
//! compares canonical forms.

use std::fmt;

/// Nesting depth beyond which the parser refuses to recurse (a
/// line-delimited request has no business being deeper, and the limit
/// keeps hostile input from exhausting the stack).
const MAX_DEPTH: u32 = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last one wins on
    /// [`Json::get`] lookups is *not* the rule here — first match wins,
    /// and [`crate::Query`] parsing rejects duplicates outright).
    Obj(Vec<(String, Json)>),
}

/// A parse failure with its byte offset in the input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error (each protocol line carries exactly one value).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first malformed byte.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON. Non-finite numbers render as
    /// `null` (JSON has no NaN/Inf).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => render_number(*v, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a key in an object (first match). `None` for missing
    /// keys and for non-object values.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with no
    /// fractional part representable in `u64`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is a number with no
    /// fractional part in the `±2^53` exact range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's items, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }
}

/// Renders a number: integers in the exact `f64` range print without an
/// exponent, everything else in shortest-roundtrip scientific notation.
fn render_number(v: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v:e}");
    }
}

/// Renders a string literal with escaping.
fn render_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.consume(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain UTF-8 up to the next quote or
            // escape (the input is a &str, so slices at these ASCII
            // boundaries stay valid UTF-8).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                if let Ok(run) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                    out.push_str(run);
                } else {
                    return Err(self.err("invalid UTF-8 in string"));
                }
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let high = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&high) {
                    // Surrogate pair: require an immediately following
                    // `\uXXXX` low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        if self.peek() == Some(b'u') {
                            self.pos += 1;
                            let low = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00)
                        } else {
                            return Err(self.err("lone high surrogate"));
                        }
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else {
                    high
                };
                match char::from_u32(code) {
                    Some(c) => out.push(c),
                    None => return Err(self.err("invalid unicode escape")),
                }
            }
            _ => return Err(self.err("unknown escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in unicode escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            "{\"a\" 1}",
            "\"unterminated",
            "1 2",
            "01x",
            "+",
            "--1",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_runaway_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn renders_compactly_and_round_trips() {
        let v = Json::parse(r#"{"b": 1, "a": [true, null, "x\"y"], "n": 2.5}"#).unwrap();
        let rendered = v.render();
        assert_eq!(rendered, r#"{"b":1,"a":[true,null,"x\"y"],"n":2.5e0}"#);
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Json::Num(1024.0).render(), "1024");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn integer_accessors_reject_fractions_and_signs() {
        assert_eq!(Json::Num(2.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_i64(), Some(-1));
        assert_eq!(Json::Str("3".into()).as_f64(), None);
    }
}
