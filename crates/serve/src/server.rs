//! The TCP front end: line-delimited JSON over `std::net`.
//!
//! Thread layout (all plain `std::thread` — sanctioned for this crate
//! by the workspace lint's thread-discipline rule):
//!
//! * **acceptor** — a nonblocking `accept` loop that polls the shutdown
//!   flag between attempts and spawns one connection thread per client;
//! * **connection threads** — read request lines (with a short read
//!   timeout so the shutdown flag is observed), enqueue jobs, and write
//!   back whatever reply the worker sends;
//! * **workers** — drain the bounded job queue in batches and run them
//!   through [`Engine::handle_batch`], so queries that pile up under
//!   load are coalesced into shared characterization passes.
//!
//! Backpressure is explicit: the job queue has a fixed capacity and a
//! full queue turns into an immediate `"busy"` reply (the HTTP-429
//! analogue) rather than an ever-growing buffer. Shutdown is graceful:
//! in-flight requests complete, new ones are rejected, and threads are
//! joined in accept → connection → worker order.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sram_faults::CancelToken;

use crate::engine::{error_response, Engine};
use crate::error::ServeError;
use crate::json::Json;
use crate::query::Request;

/// Environment variable naming the cache spill file ([`ServerConfig`]
/// default). When set, the server warm-starts its result cache from the
/// file at startup and spills the cache back on graceful shutdown.
pub const SRAM_CACHE_FILE_ENV: &str = "SRAM_CACHE_FILE";

/// Default slow-query threshold (`SRAM_LOG_SLOW_MS` overrides): a
/// request slower than this is logged as a `serve.slow_query` event,
/// with its span tree attached when the request was traced.
pub const DEFAULT_SLOW_QUERY_MS: u64 = 1_000;

/// Queue-depth gauge, written directly (bypassing the probe level
/// gate) because the `health` verdict needs queue pressure even with
/// probes off. Cached: the gauge sits on the per-request hot path.
fn queue_depth_gauge() -> &'static sram_probe::Gauge {
    static HANDLE: OnceLock<&'static sram_probe::Gauge> = OnceLock::new();
    HANDLE.get_or_init(|| sram_probe::gauge("serve.queue.depth"))
}

/// Monotone key distinguishing traced roots for deterministic
/// per-root sampling ([`sram_probe::trace::sample`]).
static REQUEST_KEY: AtomicU64 = AtomicU64::new(0);

fn slow_threshold_ns() -> u64 {
    static THRESHOLD: OnceLock<u64> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("SRAM_LOG_SLOW_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_SLOW_QUERY_MS)
            .saturating_mul(1_000_000)
    })
}

/// Server sizing and timing knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue rejects with `"busy"`.
    pub queue_capacity: usize,
    /// Most jobs a worker drains into one [`Engine::handle_batch`] call.
    pub max_batch: usize,
    /// Connection read timeout — the cadence at which idle connections
    /// notice shutdown.
    pub poll_interval: Duration,
    /// Result-cache spill file: loaded (if present) at startup, written
    /// on graceful shutdown. `None` disables persistence. The default
    /// reads the `SRAM_CACHE_FILE` environment variable.
    pub cache_file: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            max_batch: 16,
            poll_interval: Duration::from_millis(25),
            cache_file: std::env::var_os(SRAM_CACHE_FILE_ENV).map(PathBuf::from),
        }
    }
}

/// One queued request with its reply channel.
struct Job {
    request: Request,
    enqueued: Instant,
    /// Enqueue time on the trace clock — lets the worker emit the
    /// queue-wait interval even though it did not observe the start.
    enqueued_ns: u64,
    deadline: Option<Instant>,
    /// Root span id when the request asked for a trace (0 otherwise).
    trace_root: u64,
    reply: mpsc::Sender<Json>,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    open: bool,
}

/// Bounded MPMC job queue: `Mutex` + `Condvar`, no busy-waiting.
struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking; a full or closed queue is the
    /// caller's problem to report.
    fn push(&self, job: Job) -> Result<(), ServeError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if !inner.open {
            return Err(ServeError::ShuttingDown);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(ServeError::Busy);
        }
        inner.jobs.push_back(job);
        queue_depth_gauge().set(inner.jobs.len() as f64);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for work; drains up to `max` jobs at once. `None` means
    /// the queue is closed and drained — the worker should exit.
    fn pop_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !inner.jobs.is_empty() {
                let n = inner.jobs.len().min(max.max(1));
                let batch: Vec<Job> = inner.jobs.drain(..n).collect();
                queue_depth_gauge().set(inner.jobs.len() as f64);
                return Some(batch);
            }
            if !inner.open {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.open = false;
        drop(inner);
        self.ready.notify_all();
    }
}

/// Per-worker registry of the jobs it currently holds, written before a
/// batch is processed and cleared after every reply is sent. If the
/// worker panics mid-batch, the respawn wrapper drains this registry and
/// sends each stranded client a typed `"internal"` reply — the channel
/// never hangs.
type Inflight = Mutex<Vec<(Option<String>, mpsc::Sender<Json>)>>;

/// A running server; dropped or [`Server::shutdown`] to stop.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    queue: Arc<JobQueue>,
    engine: Arc<Engine>,
    cache_file: Option<PathBuf>,
}

impl Server {
    /// Binds and starts the accept loop, connection pool, and workers.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(engine: Arc<Engine>, config: ServerConfig) -> Result<Self, ServeError> {
        let listener = bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        if let Some(path) = &config.cache_file {
            if path.exists() {
                match engine.load_cache(path) {
                    Ok(n) => sram_probe::probe_add!("serve.cache.warm_started", n as u64),
                    Err(_) => sram_probe::probe_inc!("serve.cache.load_failed"),
                }
            }
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        // Telemetry rides along with the server: the sampler thread
        // starts here and is joined by `stop`. The capacity gauge is
        // set directly (ungated) — `health` reads queue pressure as
        // depth/capacity and must work with probes off.
        sram_probe::gauge("serve.queue.capacity").set(config.queue_capacity.max(1) as f64);
        sram_probe::telemetry::start();
        sram_probe::log::log_event(
            sram_probe::log::LogLevel::Info,
            "serve.started",
            &[(
                "workers",
                sram_probe::log::LogValue::U64(config.workers.max(1) as u64),
            )],
        );

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let max_batch = config.max_batch;
            workers.push(std::thread::spawn(move || {
                worker_thread(&engine, &queue, max_batch, &shutdown);
            }));
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            let conns = Arc::clone(&conns);
            let poll = config.poll_interval;
            std::thread::spawn(move || {
                accept_loop(&listener, &shutdown, &queue, &conns, poll);
            })
        };

        Ok(Server {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            conns,
            queue,
            engine,
            cache_file: config.cache_file,
        })
    }

    /// The actual bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, let connections finish their
    /// in-flight request, drain the queue, join everything.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Connections exit at their next poll tick (after receiving any
        // in-flight reply, which needs the workers still running).
        let handles: Vec<JoinHandle<()>> = {
            let mut conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
            conns.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers are gone, so the cache is quiescent — spill it now.
        if let Some(path) = self.cache_file.take() {
            match self.engine.save_cache(&path) {
                Ok(n) => sram_probe::probe_add!("serve.cache.spilled", n as u64),
                Err(_) => sram_probe::probe_inc!("serve.cache.save_failed"),
            }
        }
        // Drops the telemetry refcount taken in `start`; the sampler
        // thread takes a final drain sample and is joined here.
        sram_probe::telemetry::stop();
        sram_probe::log::log_event(sram_probe::log::LogLevel::Info, "serve.stopped", &[]);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.stop();
        }
    }
}

/// Spawns an in-process serve node on `addr` (port 0 for ephemeral),
/// backed by a fresh paper-mode engine over the coarse design space —
/// the building block for in-process test clusters (`cluster-soak`,
/// router benchmarks) where each "node" is a full server with its own
/// engine, cache, and worker pool. Cache persistence is disabled so
/// sibling nodes never fight over one `SRAM_CACHE_FILE`.
///
/// # Errors
///
/// Propagates bind failures.
pub fn spawn_local_node(
    addr: &str,
    workers: usize,
    queue_capacity: usize,
) -> Result<Server, ServeError> {
    let engine = Arc::new(Engine::new(
        sram_coopt::CoOptimizationFramework::paper_mode()
            .with_space(sram_coopt::DesignSpace::coarse()),
        crate::cache::CacheConfig::default(),
    ));
    Server::start(
        engine,
        ServerConfig {
            addr: addr.to_string(),
            workers,
            queue_capacity,
            cache_file: None,
            ..ServerConfig::default()
        },
    )
}

fn bind(addr: &str) -> Result<TcpListener, ServeError> {
    let mut last: Option<std::io::Error> = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpListener::bind(candidate) {
            Ok(listener) => return Ok(listener),
            Err(e) => last = Some(e),
        }
    }
    Err(ServeError::Io(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        )
    })))
}

fn accept_loop(
    listener: &TcpListener,
    shutdown: &Arc<AtomicBool>,
    queue: &Arc<JobQueue>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    poll: Duration,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if sram_faults::should_fire("serve.node_kill") {
                    // Process-scope kill: the node goes dark as a unit.
                    // Raising the shutdown flag makes every connection
                    // and worker wind down at its next poll tick, and
                    // returning here drops the listener so new dials
                    // are refused — the closest a thread-per-node test
                    // cluster gets to `kill -9` without owning real
                    // processes. Ungated counter: the soak asserts the
                    // kill count regardless of probe level.
                    sram_probe::counter("serve.node.injected_kills").inc();
                    shutdown.store(true, Ordering::SeqCst);
                    drop(stream);
                    return;
                }
                sram_probe::probe_inc!("serve.conn.accepted");
                let shutdown = Arc::clone(shutdown);
                let queue = Arc::clone(queue);
                let handle = std::thread::spawn(move || {
                    connection_loop(stream, &shutdown, &queue, poll);
                });
                conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(poll);
            }
            Err(_) => std::thread::sleep(poll),
        }
    }
}

/// Serves one client: read a line, run it, write the reply line.
fn connection_loop(stream: TcpStream, shutdown: &AtomicBool, queue: &JobQueue, poll: Duration) {
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    loop {
        if shutdown.load(Ordering::SeqCst) {
            return; // drain point: any in-flight request already replied
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                if !line.ends_with('\n') {
                    continue; // timeout split the line; keep reading
                }
                if sram_faults::should_fire("serve.conn_drop") {
                    // Simulated transport failure: the client sees a
                    // clean EOF with no reply and must reconnect.
                    sram_probe::probe_inc!("serve.conn.injected_drops");
                    return;
                }
                let response = serve_line(line.trim_end(), shutdown, queue);
                line.clear();
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle (or mid-line) — loop to observe the shutdown flag.
            }
            Err(_) => return,
        }
    }
}

/// Parses, enqueues, and awaits one request line.
///
/// A request with `"trace": true` forces tracing on for its lifetime
/// and opens a `serve.request` root span covering parse → queue wait →
/// evaluate → respond; the reconstructed span tree is inlined in the
/// response under `"trace"`.
fn serve_line(line: &str, shutdown: &AtomicBool, queue: &JobQueue) -> Json {
    let t_parse = sram_probe::trace::now_ns();
    if line.is_empty() {
        return error_response(None, &ServeError::Protocol("empty request line".into()));
    }
    let request = match Request::from_line(line) {
        Ok(r) => r,
        Err(e) => {
            sram_probe::probe_inc!("serve.request.parse_errors");
            return error_response(None, &e);
        }
    };
    if shutdown.load(Ordering::SeqCst) {
        return error_response(request.id.as_deref(), &ServeError::ShuttingDown);
    }

    // The root span starts retroactively at the parse timestamp so the
    // tree covers the whole request, not just the queued part. Traced
    // requests pass through per-root sampling: at `SRAM_TRACE_SAMPLE`
    // below 1, only a seeded, deterministic fraction of roots force
    // tracing on, so a loaded node keeps representative traces without
    // ring pressure. A propagated `trace_ctx` overrides both: the
    // upstream caller already made the sampling decision (once per
    // distributed trace), so `sampled: false` short-circuits tracing
    // entirely and `sampled: true` forces it on and re-roots our
    // `serve.request` span under the caller's parent span id.
    let trace_ctx = request.trace_ctx;
    let (sampled, _adopt) = match trace_ctx {
        Some(ctx) if ctx.sampled => (
            Some(sram_probe::trace::force()),
            Some(sram_probe::trace::adopt_parent(ctx.parent_span)),
        ),
        Some(_) => (None, None),
        None if request.trace => (
            sram_probe::trace::sample(REQUEST_KEY.fetch_add(1, Ordering::Relaxed)),
            None,
        ),
        None => (None, None),
    };
    let root = if sampled.is_some() {
        sram_probe::trace::span_at("serve.request", t_parse)
    } else {
        sram_probe::trace::TraceSpan::disabled()
    };
    let root_id = root.id();
    if root_id != 0 {
        sram_probe::trace::emit_complete(
            "serve.parse",
            root_id,
            t_parse,
            sram_probe::trace::now_ns(),
            &[],
        );
    }

    let now = Instant::now();
    let deadline = request
        .deadline_ms
        .map(|ms| now + Duration::from_millis(ms));
    let (tx, rx) = mpsc::channel();
    let id = request.id.clone();
    let op = request.query.op();
    let job = Job {
        request,
        enqueued: now,
        enqueued_ns: sram_probe::trace::now_ns(),
        deadline,
        trace_root: root_id,
        reply: tx,
    };
    if let Err(e) = queue.push(job) {
        if matches!(e, ServeError::Busy) {
            // Ungated (health keys off the busy-reject rate).
            sram_probe::counter("serve.request.rejected").inc();
        }
        return error_response(id.as_deref(), &e);
    }
    let mut response = match rx.recv() {
        Ok(json) => json,
        // Worker pool went away mid-request (shutdown race).
        Err(_) => error_response(id.as_deref(), &ServeError::ShuttingDown),
    };
    let latency_ns = now.elapsed().as_nanos() as u64;
    sram_probe::probe_record!("serve.request.latency_ns", latency_ns);
    // The telemetry quantile stream and SLO counters bypass the probe
    // level gate: `metrics`/`health` must report with probes off.
    sram_probe::telemetry::record("serve.request.latency_ns", latency_ns);
    crate::slo::record(op, latency_ns);
    if root_id != 0 {
        drop(root); // close the root before reading its interval back
        let events = sram_probe::trace::capture();
        if let Some(tree) = sram_probe::trace::span_tree(&events, root_id) {
            if let Json::Obj(pairs) = &mut response {
                let mut tree_json = crate::engine::trace_json(&tree);
                if let (Some(ctx), Json::Obj(tree_pairs)) = (trace_ctx, &mut tree_json) {
                    // Stamp the distributed identity on the returned
                    // root so the caller can stitch without guessing.
                    // `parent_span` is read back from the root's begin
                    // event, not echoed from the request, so it proves
                    // the adoption actually re-rooted the tree.
                    let adopted = events
                        .iter()
                        .find(|e| e.id == root_id && e.phase == sram_probe::trace::Phase::Begin)
                        .map_or(0, |e| e.parent);
                    tree_pairs.push((
                        "trace_id".into(),
                        Json::Str(format!("{:016x}", ctx.trace_id)),
                    ));
                    tree_pairs.push(("parent_span".into(), Json::Num(adopted as f64)));
                }
                pairs.push(("trace".into(), tree_json));
            }
        }
    }
    if latency_ns >= slow_threshold_ns()
        && sram_probe::log::enabled(sram_probe::log::LogLevel::Warn)
    {
        use sram_probe::log::LogValue;
        let mut fields: Vec<(&str, LogValue)> = vec![
            ("op", LogValue::Str(op.into())),
            ("latency_ms", LogValue::U64(latency_ns / 1_000_000)),
        ];
        if let Some(id) = id.as_deref() {
            fields.push(("id", LogValue::Str(id.into())));
        }
        if let Json::Obj(pairs) = &response {
            // A traced slow query carries its span tree into the log
            // verbatim — the tree is already rendered JSON.
            if let Some((_, tree)) = pairs.iter().find(|(k, _)| k == "trace") {
                fields.push(("trace", LogValue::Raw(tree.render())));
            }
        }
        sram_probe::log::log_event(sram_probe::log::LogLevel::Warn, "serve.slow_query", &fields);
    }
    response
}

fn write_line(writer: &mut TcpStream, response: &Json) -> std::io::Result<()> {
    let mut payload = response.render();
    payload.push('\n');
    writer.write_all(payload.as_bytes())?;
    writer.flush()
}

/// Worker shell: runs [`worker_loop`] inside `catch_unwind` and respawns
/// it after a panic, first draining the inflight registry so every
/// client holding a reply channel gets a typed `"internal"` reply
/// instead of a hung `recv`.
///
/// Soundness of `catch_unwind` here: the worker shares only the job
/// queue, the engine, and the inflight registry across the unwind
/// boundary, and each is either lock-free or repaired on reacquire —
/// queue and cache locks use `PoisonError::into_inner` (their invariants
/// hold at every release point), the engine's LUT store holds completed
/// immutable characterizations only, and the inflight registry is never
/// locked across the panic window (see DESIGN.md §11).
fn worker_thread(engine: &Engine, queue: &JobQueue, max_batch: usize, shutdown: &Arc<AtomicBool>) {
    let inflight: Inflight = Mutex::new(Vec::new());
    loop {
        let ran = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(engine, queue, max_batch, shutdown, &inflight);
        }));
        match ran {
            Ok(()) => return, // queue closed and drained — normal exit
            Err(_) => {
                // Direct registry handles (not the gated macros): the
                // health verdict keys off these counters even with
                // probes off, and panics are rare enough that the
                // registry lookup cost is irrelevant.
                sram_probe::counter("serve.worker.panics").inc();
                let stranded: Vec<(Option<String>, mpsc::Sender<Json>)> = {
                    let mut guard = inflight.lock().unwrap_or_else(PoisonError::into_inner);
                    guard.drain(..).collect()
                };
                for (id, reply) in stranded {
                    let _ = reply.send(error_response(
                        id.as_deref(),
                        &ServeError::Internal("worker panicked while processing request".into()),
                    ));
                }
                sram_probe::counter("serve.worker.respawns").inc();
                sram_probe::log::log_event(
                    sram_probe::log::LogLevel::Error,
                    "serve.worker_panic",
                    &[],
                );
            }
        }
    }
}

/// Worker body: drain a batch, expire stale deadlines, run the rest.
///
/// Deadline handling happens twice: requests whose deadline passed while
/// they sat in the queue are rejected here with a typed
/// `deadline_exceeded` reply (and the `serve.request.expired` counter),
/// and the rest carry a [`CancelToken`] into the engine so a deadline
/// that fires mid-search is honored at the next slice boundary. The
/// token also observes the server's shutdown flag.
///
/// Traced jobs get three extras: a `serve.queue_wait` interval (stamped
/// by the enqueuing thread, emitted here as a complete event), the
/// engine's spans nested under the first traced job's root (adopted
/// cross-thread parent), and a `serve.evaluate` interval spanning the
/// batch execution.
fn worker_loop(
    engine: &Engine,
    queue: &JobQueue,
    max_batch: usize,
    shutdown: &Arc<AtomicBool>,
    inflight: &Inflight,
) {
    while let Some(jobs) = queue.pop_batch(max_batch) {
        // Draw the panic fault once per dequeued job so a plan's
        // `max_fires` cap is consumed deterministically regardless of
        // how jobs batch together.
        let mut doomed = false;
        for _ in &jobs {
            doomed |= sram_faults::should_fire("serve.worker_panic");
        }
        let now = Instant::now();
        let mut live: Vec<Job> = Vec::with_capacity(jobs.len());
        for job in jobs {
            match job.deadline {
                Some(deadline) if deadline <= now => {
                    // Ungated (health keys off the expiry rate).
                    sram_probe::counter("serve.request.expired").inc();
                    let _ = job.reply.send(error_response(
                        job.request.id.as_deref(),
                        &ServeError::DeadlineExceeded,
                    ));
                }
                _ => live.push(job),
            }
        }
        if live.is_empty() {
            continue;
        }
        {
            let mut guard = inflight.lock().unwrap_or_else(PoisonError::into_inner);
            guard.clear();
            for job in &live {
                guard.push((job.request.id.clone(), job.reply.clone()));
            }
        }
        if doomed {
            // sram-lint: allow(no-panic) fault-plan injection point; the worker_thread shell isolates and respawns
            panic!("injected worker panic (fault plan)");
        }
        let t_eval = sram_probe::trace::now_ns();
        for job in &live {
            if job.trace_root != 0 {
                sram_probe::trace::emit_complete(
                    "serve.queue_wait",
                    job.trace_root,
                    job.enqueued_ns,
                    t_eval,
                    &[],
                );
            }
        }
        let adopted_root = live
            .iter()
            .map(|j| j.trace_root)
            .find(|&root| root != 0)
            .unwrap_or(0);
        let requests: Vec<Request> = live.iter().map(|j| j.request.clone()).collect();
        let tokens: Vec<CancelToken> = live
            .iter()
            .map(|j| CancelToken::linked(j.deadline, Arc::clone(shutdown)))
            .collect();
        let responses = {
            let _adopt = sram_probe::trace::adopt_parent(adopted_root);
            engine.handle_batch_cancel(&requests, &tokens)
        };
        let t_done = sram_probe::trace::now_ns();
        let batch = live.len() as i64;
        for (job, response) in live.into_iter().zip(responses) {
            sram_probe::probe_record!(
                "serve.request.queue_wait_ns",
                job.enqueued.elapsed().as_nanos() as u64
            );
            if job.trace_root != 0 {
                sram_probe::trace::emit_complete(
                    "serve.evaluate",
                    job.trace_root,
                    t_eval,
                    t_done,
                    &[("batch", batch)],
                );
            }
            let _ = job.reply.send(response);
        }
        inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx_only_job(id: &str) -> (Job, mpsc::Receiver<Json>) {
        let (tx, rx) = mpsc::channel();
        let request = Request::from_line(&format!(
            r#"{{"id":"{id}","op":"optimize","capacity_bytes":128,"flavor":"hvt","method":"m2"}}"#
        ))
        .unwrap();
        (
            Job {
                request,
                enqueued: Instant::now(),
                enqueued_ns: sram_probe::trace::now_ns(),
                deadline: None,
                trace_root: 0,
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn queue_rejects_when_full_and_after_close() {
        let queue = JobQueue::new(1);
        let (a, _rx_a) = tx_only_job("a");
        let (b, _rx_b) = tx_only_job("b");
        queue.push(a).unwrap();
        assert!(matches!(queue.push(b), Err(ServeError::Busy)));
        queue.close();
        let (c, _rx_c) = tx_only_job("c");
        assert!(matches!(queue.push(c), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn pop_batch_drains_up_to_max_and_ends_on_close() {
        let queue = JobQueue::new(8);
        let mut receivers = Vec::new();
        for i in 0..3 {
            let (job, rx) = tx_only_job(&i.to_string());
            queue.push(job).unwrap();
            receivers.push(rx);
        }
        let batch = queue.pop_batch(2).unwrap();
        assert_eq!(batch.len(), 2);
        let batch = queue.pop_batch(2).unwrap();
        assert_eq!(batch.len(), 1);
        queue.close();
        assert!(queue.pop_batch(2).is_none());
    }
}
