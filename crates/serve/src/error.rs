//! Error type shared by the protocol, cache, engine, and server layers.

use std::fmt;

/// Anything that can go wrong between a request line and its response.
#[derive(Debug)]
pub enum ServeError {
    /// The request line is not valid protocol JSON.
    Protocol(String),
    /// The request parsed but names an invalid or unsupported query.
    InvalidQuery(String),
    /// The co-optimization layer failed to evaluate the query.
    Coopt(sram_coopt::CooptError),
    /// The accept queue is full — the 429-style backpressure signal;
    /// the client should retry later.
    Busy,
    /// The request's deadline passed before a worker could finish it.
    DeadlineExceeded,
    /// The server is draining and no longer accepts new work.
    ShuttingDown,
    /// A socket operation failed.
    Io(std::io::Error),
    /// The remote server reported an error (client side).
    Remote(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            ServeError::Coopt(e) => write!(f, "evaluation failed: {e}"),
            ServeError::Busy => write!(f, "server busy: accept queue full, retry later"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Remote(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Coopt(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sram_coopt::CooptError> for ServeError {
    fn from(e: sram_coopt::CooptError) -> Self {
        ServeError::Coopt(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// The wire status string a [`ServeError`] maps to (`"busy"` for
/// backpressure so clients can distinguish retryable congestion from
/// hard failures, `"error"` otherwise).
#[must_use]
pub fn wire_status(error: &ServeError) -> &'static str {
    match error {
        ServeError::Busy => "busy",
        ServeError::ShuttingDown => "shutting_down",
        _ => "error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeError::Busy.to_string().contains("retry"));
        assert!(ServeError::InvalidQuery("bad flavor".into())
            .to_string()
            .contains("bad flavor"));
    }

    #[test]
    fn wire_status_partitions() {
        assert_eq!(wire_status(&ServeError::Busy), "busy");
        assert_eq!(wire_status(&ServeError::ShuttingDown), "shutting_down");
        assert_eq!(wire_status(&ServeError::DeadlineExceeded), "error");
    }
}
