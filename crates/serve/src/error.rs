//! Error type shared by the protocol, cache, engine, and server layers.

use std::fmt;

use sram_faults::CancelReason;

/// Anything that can go wrong between a request line and its response.
#[derive(Debug)]
pub enum ServeError {
    /// The request line is not valid protocol JSON.
    Protocol(String),
    /// The request parsed but names an invalid or unsupported query.
    InvalidQuery(String),
    /// The co-optimization layer failed to evaluate the query.
    Coopt(sram_coopt::CooptError),
    /// The accept queue is full — the 429-style backpressure signal;
    /// the client should retry later.
    Busy,
    /// The request's deadline passed — while queued, or mid-search via
    /// the cancellation token.
    DeadlineExceeded,
    /// The server is draining and no longer accepts new work.
    ShuttingDown,
    /// A worker panicked while holding this request; the panic was
    /// isolated, the worker respawned, and the client gets this typed
    /// reply instead of a hung channel.
    Internal(String),
    /// A socket operation failed.
    Io(std::io::Error),
    /// The remote server reported an error (client side).
    Remote(String),
}

impl ServeError {
    /// Whether the client (or the engine's own bounded-retry layer) may
    /// reasonably try again: congestion, isolated worker panics, and
    /// transient characterization failures qualify; malformed requests,
    /// deadlines, and shutdown do not.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self {
            ServeError::Busy | ServeError::Internal(_) => true,
            ServeError::Coopt(e) => e.is_transient(),
            _ => false,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            ServeError::Coopt(e) => write!(f, "evaluation failed: {e}"),
            ServeError::Busy => write!(f, "server busy: accept queue full, retry later"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Internal(m) => write!(f, "internal server error: {m}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Remote(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Coopt(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sram_coopt::CooptError> for ServeError {
    fn from(e: sram_coopt::CooptError) -> Self {
        // A cancellation that bubbled up from the search or Monte Carlo
        // loop is not an evaluation failure — surface it as the typed
        // deadline/shutdown status the client can act on.
        match e.cancel_reason() {
            Some(CancelReason::Deadline) => ServeError::DeadlineExceeded,
            Some(CancelReason::Shutdown) => ServeError::ShuttingDown,
            None => ServeError::Coopt(e),
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// The wire status string a [`ServeError`] maps to. Retryable congestion
/// (`"busy"`), lifecycle conditions (`"shutting_down"`,
/// `"deadline_exceeded"`), and isolated worker panics (`"internal"`) are
/// distinguishable from plain `"error"` so clients can react without
/// parsing messages.
#[must_use]
pub fn wire_status(error: &ServeError) -> &'static str {
    match error {
        ServeError::Busy => "busy",
        ServeError::ShuttingDown => "shutting_down",
        ServeError::DeadlineExceeded => "deadline_exceeded",
        ServeError::Internal(_) => "internal",
        _ => "error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeError::Busy.to_string().contains("retry"));
        assert!(ServeError::InvalidQuery("bad flavor".into())
            .to_string()
            .contains("bad flavor"));
        assert!(ServeError::Internal("worker panicked".into())
            .to_string()
            .contains("internal"));
    }

    #[test]
    fn wire_status_partitions() {
        assert_eq!(wire_status(&ServeError::Busy), "busy");
        assert_eq!(wire_status(&ServeError::ShuttingDown), "shutting_down");
        assert_eq!(
            wire_status(&ServeError::DeadlineExceeded),
            "deadline_exceeded"
        );
        assert_eq!(wire_status(&ServeError::Internal("x".into())), "internal");
        assert_eq!(wire_status(&ServeError::Protocol("bad".into())), "error");
    }

    #[test]
    fn retryability_partitions() {
        assert!(ServeError::Busy.is_retryable());
        assert!(ServeError::Internal("panic".into()).is_retryable());
        assert!(!ServeError::DeadlineExceeded.is_retryable());
        assert!(!ServeError::ShuttingDown.is_retryable());
        assert!(!ServeError::Protocol("bad".into()).is_retryable());
        let transient = ServeError::Coopt(sram_coopt::CooptError::Cell(
            sram_cell::CellError::MeasurementFailed {
                what: "rsnm",
                reason: "injected".into(),
            },
        ));
        assert!(transient.is_retryable());
        let fatal =
            ServeError::Coopt(sram_coopt::CooptError::EmptyDesignSpace { capacity_bits: 64 });
        assert!(!fatal.is_retryable());
    }

    #[test]
    fn cancellations_convert_to_typed_lifecycle_errors() {
        use sram_faults::CancelReason;
        let deadline: ServeError = sram_coopt::CooptError::Cancelled(CancelReason::Deadline).into();
        assert!(matches!(deadline, ServeError::DeadlineExceeded));
        let shutdown: ServeError = sram_coopt::CooptError::Cancelled(CancelReason::Shutdown).into();
        assert!(matches!(shutdown, ServeError::ShuttingDown));
        let mc_deadline: ServeError =
            sram_coopt::CooptError::Cell(sram_cell::CellError::Cancelled(CancelReason::Deadline))
                .into();
        assert!(matches!(mc_deadline, ServeError::DeadlineExceeded));
    }
}
