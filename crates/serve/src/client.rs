//! A minimal blocking client for the line-delimited JSON protocol —
//! used by the end-to-end tests and handy for scripting against a
//! running server.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::error::ServeError;
use crate::json::Json;
use crate::query::Request;

/// One connection speaking the request/response line protocol.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Bounds how long [`Self::call`] waits for a response line.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends a typed request and reads its response.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`ServeError::Protocol`] when the server's
    /// reply is not valid JSON.
    pub fn call(&mut self, request: &Request) -> Result<Json, ServeError> {
        self.call_line(&request.to_json().render())
    }

    /// Sends a raw request line (everything before the newline) and
    /// reads its response — useful for protocol-level tests.
    ///
    /// # Errors
    ///
    /// Same as [`Self::call`].
    pub fn call_line(&mut self, line: &str) -> Result<Json, ServeError> {
        let mut payload = line.to_string();
        payload.push('\n');
        self.writer.write_all(payload.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Remote("server closed the connection".into()));
        }
        Json::parse(reply.trim_end()).map_err(|e| ServeError::Protocol(e.to_string()))
    }
}
