//! A minimal blocking client for the line-delimited JSON protocol —
//! used by the end-to-end tests and handy for scripting against a
//! running server.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::error::ServeError;
use crate::json::Json;
use crate::query::Request;

/// One connection speaking the request/response line protocol.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Bounds how long [`Self::call`] waits for a response line.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends a typed request and reads its response.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`ServeError::Protocol`] when the server's
    /// reply is not valid JSON.
    pub fn call(&mut self, request: &Request) -> Result<Json, ServeError> {
        self.call_line(&request.to_json().render())
    }

    /// Sends a raw request line (everything before the newline) and
    /// reads its response — useful for protocol-level tests.
    ///
    /// # Errors
    ///
    /// Same as [`Self::call`].
    pub fn call_line(&mut self, line: &str) -> Result<Json, ServeError> {
        let mut payload = line.to_string();
        payload.push('\n');
        self.writer.write_all(payload.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Remote("server closed the connection".into()));
        }
        Json::parse(reply.trim_end()).map_err(|e| ServeError::Protocol(e.to_string()))
    }
}

/// A reusable connection to one serve node that survives node restarts.
///
/// [`Client`] is a thin wrapper over one TCP stream: when the stream
/// dies (node restarted, connection dropped by a fault plan), every
/// later call fails. `NodeConn` is the router-side upgrade — it dials
/// lazily on first use, and when a call fails it tears the connection
/// down so the *next* call redials from scratch. The failed call still
/// reports its error: the caller decides whether to retry, hedge, or
/// fail over, so a half-written request is never silently resent.
pub struct NodeConn {
    addr: String,
    timeout: Option<Duration>,
    conn: Option<Client>,
}

impl NodeConn {
    /// Creates a connection handle without dialing; the first call
    /// connects.
    #[must_use]
    pub fn new(addr: impl Into<String>, timeout: Option<Duration>) -> Self {
        Self {
            addr: addr.into(),
            timeout,
            conn: None,
        }
    }

    /// The node address this handle dials.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether a live (last call succeeded) connection is being held.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Drops the held connection; the next call redials.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn ensure(&mut self) -> Result<&mut Client, ServeError> {
        match self.conn {
            Some(ref mut client) => Ok(client),
            ref mut slot => {
                let mut client = Client::connect(&self.addr)?;
                client.set_timeout(self.timeout)?;
                Ok(slot.insert(client))
            }
        }
    }

    /// Sends one raw request line, dialing or redialing as needed.
    ///
    /// # Errors
    ///
    /// Connection or I/O failures (the handle disconnects itself so the
    /// next call redials), or [`ServeError::Protocol`] on a malformed
    /// reply (the connection is kept — the transport itself is fine).
    pub fn call_line(&mut self, line: &str) -> Result<Json, ServeError> {
        let result = self.ensure().and_then(|c| c.call_line(line));
        if matches!(result, Err(ServeError::Io(_)) | Err(ServeError::Remote(_))) {
            self.disconnect();
        }
        result
    }

    /// Sends a typed request, dialing or redialing as needed.
    ///
    /// # Errors
    ///
    /// Same as [`Self::call_line`].
    pub fn call(&mut self, request: &Request) -> Result<Json, ServeError> {
        self.call_line(&request.to_json().render())
    }
}
