//! Result-cache persistence: spill on graceful shutdown, warm start on
//! the next boot, and recovery from corrupt or truncated spill files.

use std::path::PathBuf;
use std::sync::Arc;

use sram_coopt::{CoOptimizationFramework, DesignSpace};
use sram_serve::{CacheConfig, Client, Engine, Json, Request, Server, ServerConfig};

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(
        CoOptimizationFramework::paper_mode()
            .with_space(DesignSpace::coarse())
            .with_threads(2),
        CacheConfig::default(),
    ))
}

/// A unique scratch path, removed on drop.
struct ScratchFile(PathBuf);

impl ScratchFile {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "sram-serve-cache-{}-{tag}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

const OPTIMIZE: &str =
    r#"{"id":"c1","op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2"}"#;

#[test]
fn shutdown_spills_and_restart_warm_starts_the_cache() {
    let scratch = ScratchFile::new("roundtrip");

    // First server lifetime: answer one query cold, spill on shutdown.
    let config = ServerConfig {
        cache_file: Some(scratch.0.clone()),
        ..ServerConfig::default()
    };
    let server = Server::start(engine(), config.clone()).expect("first server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");
    let cold = client.call_line(OPTIMIZE).expect("cold call succeeds");
    assert_eq!(cold.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(cold.get("cached").and_then(Json::as_bool), Some(false));
    drop(client);
    server.shutdown();
    assert!(scratch.0.exists(), "shutdown wrote the spill file");

    // Second lifetime: the same query is a cache hit with the identical
    // payload, without a single new characterization.
    let warm_engine = engine();
    let server = Server::start(Arc::clone(&warm_engine), config).expect("second server binds");
    let mut client = Client::connect(server.local_addr()).expect("client reconnects");
    let warm = client.call_line(OPTIMIZE).expect("warm call succeeds");
    assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        cold.get("result").map(Json::render),
        warm.get("result").map(Json::render),
        "warm-started result must be byte-identical"
    );
    assert_eq!(warm_engine.characterizations(), 0);
    drop(client);
    server.shutdown();
}

#[test]
fn save_load_roundtrip_preserves_every_entry() {
    let scratch = ScratchFile::new("saveload");
    let first = engine();
    for line in [
        OPTIMIZE,
        r#"{"op":"optimize","capacity_bytes":256,"flavor":"hvt","method":"m2"}"#,
    ] {
        let reply = first.handle(&Request::from_line(line).expect("well-formed"));
        assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
    }
    let saved = first.save_cache(&scratch.0).expect("save succeeds");
    assert_eq!(saved, 2);

    let second = engine();
    let loaded = second.load_cache(&scratch.0).expect("load succeeds");
    assert_eq!(loaded, 2);
    let reply = second.handle(&Request::from_line(OPTIMIZE).expect("well-formed"));
    assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(true));
}

#[test]
fn corrupt_and_truncated_lines_are_skipped_not_fatal() {
    let scratch = ScratchFile::new("corrupt");
    let first = engine();
    let reply = first.handle(&Request::from_line(OPTIMIZE).expect("well-formed"));
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
    first.save_cache(&scratch.0).expect("save succeeds");

    // Sandwich the valid line between garbage, a schema-less object,
    // and a truncation mid-object (a crash during a previous spill).
    let valid = std::fs::read_to_string(&scratch.0).expect("spill file readable");
    let valid_line = valid.lines().next().expect("one entry");
    let mangled = format!(
        "not json at all\n{{\"wrong\":\"shape\"}}\n{valid_line}\n{}",
        &valid_line[..valid_line.len() / 2]
    );
    std::fs::write(&scratch.0, mangled).expect("rewrite spill file");

    let second = engine();
    let loaded = second
        .load_cache(&scratch.0)
        .expect("partial load succeeds");
    assert_eq!(loaded, 1, "only the intact entry is restored");
    let reply = second.handle(&Request::from_line(OPTIMIZE).expect("well-formed"));
    assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(true));

    // A missing file at startup is simply a cold start.
    let missing = ScratchFile::new("missing");
    let server = Server::start(
        engine(),
        ServerConfig {
            cache_file: Some(missing.0.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("server starts without a spill file");
    server.shutdown();
    assert!(missing.0.exists(), "shutdown still writes the (empty) file");
}
