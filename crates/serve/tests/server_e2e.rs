//! End-to-end TCP exercise: a real server on an ephemeral port, a cold
//! optimize, a byte-identical cached repeat, protocol error envelopes,
//! and a graceful shutdown that leaves no thread behind.

use std::sync::Arc;

use sram_coopt::{CoOptimizationFramework, DesignSpace};
use sram_serve::{CacheConfig, Client, Engine, Json, Request, Server, ServerConfig};

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(
        CoOptimizationFramework::paper_mode()
            .with_space(DesignSpace::coarse())
            .with_threads(2),
        CacheConfig::default(),
    ))
}

#[test]
fn optimize_roundtrip_caches_and_shuts_down_cleanly() {
    let engine = engine();
    let server = Server::start(Arc::clone(&engine), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    let request = Request::from_line(
        r#"{"op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2","id":"e2e-1"}"#,
    )
    .expect("well-formed query");
    let cold = client.call(&request).expect("cold call succeeds");
    assert_eq!(cold.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(cold.get("id").and_then(Json::as_str), Some("e2e-1"));
    assert_eq!(cold.get("cached").and_then(Json::as_bool), Some(false));

    let warm = client.call(&request).expect("warm call succeeds");
    assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        cold.get("result").map(Json::render),
        warm.get("result").map(Json::render),
        "cached repeat must be byte-identical"
    );
    assert!(engine.cache_counters().hits >= 1);

    drop(client);
    server.shutdown();
}

#[test]
fn protocol_errors_come_back_as_envelopes_not_disconnects() {
    let server = Server::start(engine(), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    let garbled = client.call_line("this is not json").expect("reply arrives");
    assert_eq!(garbled.get("status").and_then(Json::as_str), Some("error"));

    let unknown = client
        .call_line(r#"{"op":"transmogrify"}"#)
        .expect("reply arrives");
    assert_eq!(unknown.get("status").and_then(Json::as_str), Some("error"));
    assert!(
        unknown
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("transmogrify")),
        "error names the bad op: {}",
        unknown.render()
    );

    // The connection survived both malformed lines.
    let ok = client
        .call_line(r#"{"op":"evaluate-point","capacity_bytes":1024,"flavor":"hvt","method":"m2","rows":64,"vssc_mv":-100,"n_pre":4,"n_wr":2}"#)
        .expect("reply arrives");
    assert_eq!(
        ok.get("status").and_then(Json::as_str),
        Some("ok"),
        "{}",
        ok.render()
    );

    drop(client);
    server.shutdown();
}

#[test]
fn stats_query_returns_live_snapshot_over_tcp() {
    let engine = engine();
    let server = Server::start(Arc::clone(&engine), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    let warmup = client
        .call_line(r#"{"op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2"}"#)
        .expect("warmup succeeds");
    assert_eq!(warmup.get("status").and_then(Json::as_str), Some("ok"));

    let stats = client
        .call_line(r#"{"op":"stats","id":"st"}"#)
        .expect("stats reply arrives");
    assert_eq!(stats.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(stats.get("id").and_then(Json::as_str), Some("st"));
    let result = stats.get("result").expect("stats has a result");
    assert!(result.get("uptime_s").and_then(Json::as_f64).unwrap() >= 0.0);
    assert!(result.get("requests").and_then(Json::as_f64).unwrap() >= 2.0);
    assert_eq!(
        result.get("characterizations").and_then(Json::as_f64),
        Some(1.0)
    );
    assert!(result.get("queue_depth").and_then(Json::as_f64).is_some());
    assert!(result
        .get("probe")
        .and_then(|p| p.get("counters"))
        .is_some());

    drop(client);
    server.shutdown();
}

#[test]
fn traced_request_over_tcp_carries_the_full_span_tree() {
    let engine = engine();
    let server = Server::start(Arc::clone(&engine), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    let resp = client
        .call_line(
            r#"{"op":"optimize","capacity_bytes":1024,"flavor":"lvt","method":"m1","trace":true}"#,
        )
        .expect("traced call succeeds");
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("ok"),
        "{}",
        resp.render()
    );
    let tree = resp.get("trace").expect("traced response carries a tree");
    assert_eq!(
        tree.get("name").and_then(Json::as_str),
        Some("serve.request")
    );
    // The root covers parse → queue wait → evaluate; the engine's
    // characterize/execute spans nest under the adopted root.
    let mut names = Vec::new();
    collect_names(tree, &mut names);
    for expected in [
        "serve.parse",
        "serve.queue_wait",
        "serve.evaluate",
        "serve.characterize",
        "serve.execute",
    ] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }

    // An untraced request on the same connection stays lean.
    let plain = client
        .call_line(r#"{"op":"optimize","capacity_bytes":1024,"flavor":"lvt","method":"m1"}"#)
        .expect("plain call succeeds");
    assert!(plain.get("trace").is_none());

    drop(client);
    server.shutdown();
}

#[test]
fn propagated_trace_ctx_reroots_the_tree_and_honors_remote_sampling() {
    let server = Server::start(engine(), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    // sampled=true: the node forces tracing on (no local `trace` flag
    // needed) and its `serve.request` root adopts the remote parent.
    let resp = client
        .call_line(
            r#"{"op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2","trace_ctx":"00-00000000deadbeef-0000000000000042-01"}"#,
        )
        .expect("traced call succeeds");
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("ok"),
        "{}",
        resp.render()
    );
    let tree = resp.get("trace").expect("sampled ctx forces a tree");
    assert_eq!(
        tree.get("name").and_then(Json::as_str),
        Some("serve.request")
    );
    assert_eq!(
        tree.get("trace_id").and_then(Json::as_str),
        Some("00000000deadbeef")
    );
    // The parent is read back from the root span's begin event, so this
    // asserts the tree actually re-rooted under the remote span id.
    assert_eq!(
        tree.get("parent_span").and_then(Json::as_u64),
        Some(0x42),
        "{}",
        tree.render()
    );

    // sampled=false: the remote decision short-circuits tracing even
    // when the local trace flag asks for it.
    let off = client
        .call_line(
            r#"{"op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2","trace":true,"trace_ctx":"00-00000000deadbeef-0000000000000042-00"}"#,
        )
        .expect("unsampled call succeeds");
    assert_eq!(off.get("status").and_then(Json::as_str), Some("ok"));
    assert!(
        off.get("trace").is_none(),
        "sampled=false must suppress the tree: {}",
        off.render()
    );

    drop(client);
    server.shutdown();
}

fn collect_names<'j>(node: &'j Json, out: &mut Vec<&'j str>) {
    if let Some(name) = node.get("name").and_then(Json::as_str) {
        out.push(name);
    }
    if let Some(children) = node.get("children").and_then(Json::as_array) {
        for child in children {
            collect_names(child, out);
        }
    }
}

#[test]
fn shutdown_is_graceful_for_connected_clients() {
    let server = Server::start(engine(), ServerConfig::default()).expect("server binds");
    let addr = server.local_addr();
    let client = Client::connect(addr).expect("client connects");
    // Shut down with the client still connected; the server must join
    // its acceptor, connection, and worker threads without hanging.
    server.shutdown();
    drop(client);
    // The port is released: a fresh connection attempt must fail.
    assert!(
        Client::connect(addr).is_err(),
        "socket must be closed after shutdown"
    );
}
