//! End-to-end TCP exercise: a real server on an ephemeral port, a cold
//! optimize, a byte-identical cached repeat, protocol error envelopes,
//! and a graceful shutdown that leaves no thread behind.

use std::sync::Arc;

use sram_coopt::{CoOptimizationFramework, DesignSpace};
use sram_serve::{CacheConfig, Client, Engine, Json, Request, Server, ServerConfig};

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(
        CoOptimizationFramework::paper_mode()
            .with_space(DesignSpace::coarse())
            .with_threads(2),
        CacheConfig::default(),
    ))
}

#[test]
fn optimize_roundtrip_caches_and_shuts_down_cleanly() {
    let engine = engine();
    let server = Server::start(Arc::clone(&engine), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    let request = Request::from_line(
        r#"{"op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2","id":"e2e-1"}"#,
    )
    .expect("well-formed query");
    let cold = client.call(&request).expect("cold call succeeds");
    assert_eq!(cold.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(cold.get("id").and_then(Json::as_str), Some("e2e-1"));
    assert_eq!(cold.get("cached").and_then(Json::as_bool), Some(false));

    let warm = client.call(&request).expect("warm call succeeds");
    assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        cold.get("result").map(Json::render),
        warm.get("result").map(Json::render),
        "cached repeat must be byte-identical"
    );
    assert!(engine.cache_counters().hits >= 1);

    drop(client);
    server.shutdown();
}

#[test]
fn protocol_errors_come_back_as_envelopes_not_disconnects() {
    let server = Server::start(engine(), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    let garbled = client.call_line("this is not json").expect("reply arrives");
    assert_eq!(garbled.get("status").and_then(Json::as_str), Some("error"));

    let unknown = client
        .call_line(r#"{"op":"transmogrify"}"#)
        .expect("reply arrives");
    assert_eq!(unknown.get("status").and_then(Json::as_str), Some("error"));
    assert!(
        unknown
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("transmogrify")),
        "error names the bad op: {}",
        unknown.render()
    );

    // The connection survived both malformed lines.
    let ok = client
        .call_line(r#"{"op":"evaluate-point","capacity_bytes":1024,"flavor":"hvt","method":"m2","rows":64,"vssc_mv":-100,"n_pre":4,"n_wr":2}"#)
        .expect("reply arrives");
    assert_eq!(
        ok.get("status").and_then(Json::as_str),
        Some("ok"),
        "{}",
        ok.render()
    );

    drop(client);
    server.shutdown();
}

#[test]
fn shutdown_is_graceful_for_connected_clients() {
    let server = Server::start(engine(), ServerConfig::default()).expect("server binds");
    let addr = server.local_addr();
    let client = Client::connect(addr).expect("client connects");
    // Shut down with the client still connected; the server must join
    // its acceptor, connection, and worker threads without hanging.
    server.shutdown();
    drop(client);
    // The port is released: a fresh connection attempt must fail.
    assert!(
        Client::connect(addr).is_err(),
        "socket must be closed after shutdown"
    );
}
