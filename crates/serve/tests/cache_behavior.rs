//! The content-addressed result cache under adversarial use: byte-budget
//! eviction, canonicalization across JSON field orderings, and a
//! multithreaded hammer whose counters must reconcile exactly.

use std::sync::Arc;
use std::thread;

use sram_serve::{fnv1a64, CacheConfig, Json, Request, ResultCache};

const ENTRY_OVERHEAD: usize = 64;

fn entry_size(canonical: &str, value: &Json) -> usize {
    canonical.len() + value.render().len() + ENTRY_OVERHEAD
}

#[test]
fn lru_eviction_respects_byte_budget_and_recency() {
    let value = Json::Str("v".into());
    let one = entry_size("a", &value);
    let cache = ResultCache::new(CacheConfig {
        shards: 1,
        byte_budget: 2 * one,
    });

    cache.insert(fnv1a64(b"a"), "a", Arc::new(value.clone()));
    cache.insert(fnv1a64(b"b"), "b", Arc::new(value.clone()));
    // Touch `a` so `b` becomes the least recently used entry.
    assert!(cache.get(fnv1a64(b"a"), "a").is_some());
    cache.insert(fnv1a64(b"c"), "c", Arc::new(value));

    assert!(
        cache.get(fnv1a64(b"a"), "a").is_some(),
        "recently used survives"
    );
    assert!(cache.get(fnv1a64(b"b"), "b").is_none(), "LRU entry evicted");
    assert!(
        cache.get(fnv1a64(b"c"), "c").is_some(),
        "new entry resident"
    );

    let counters = cache.counters();
    assert_eq!(counters.evictions, 1);
    assert_eq!(counters.entries, 2);
    assert!(counters.bytes <= 2 * one as u64, "budget respected");
}

#[test]
fn canonicalization_makes_field_order_irrelevant() {
    let a = Request::from_line(
        r#"{"op":"optimize","capacity_bytes":2048,"flavor":"hvt","method":"m2","objective":"edp"}"#,
    )
    .expect("parses");
    let b = Request::from_line(
        r#"{"objective":"edp","method":"m2","flavor":"hvt","op":"optimize","capacity_bytes":2048}"#,
    )
    .expect("parses");
    assert_eq!(a.query.canonical(), b.query.canonical());
    assert_eq!(a.query.key(), b.query.key());

    // A genuinely different query must not alias.
    let c = Request::from_line(
        r#"{"op":"optimize","capacity_bytes":4096,"flavor":"hvt","method":"m2"}"#,
    )
    .expect("parses");
    assert_ne!(a.query.key(), c.query.key());

    // And the cache honors the shared identity: stored under one
    // ordering, served under the other.
    let cache = ResultCache::new(CacheConfig::default());
    cache.insert(
        a.query.key(),
        &a.query.canonical(),
        Arc::new(Json::Bool(true)),
    );
    assert!(
        cache.get(b.query.key(), &b.query.canonical()).is_some(),
        "field order must not defeat the cache"
    );
}

#[test]
fn multithreaded_hammer_reconciles_counters() {
    const THREADS: u64 = 8;
    const OPS: u64 = 200;
    let config = CacheConfig {
        shards: 4,
        byte_budget: 8 * 1024,
    };
    let budget = config.byte_budget as u64;
    let cache = Arc::new(ResultCache::new(config));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                for i in 0..OPS {
                    // Unique canonical per (thread, op): every insert is a
                    // fresh entry, so insertions/evictions reconcile exactly.
                    let canonical = format!("q|{t}|{i}");
                    let key = fnv1a64(canonical.as_bytes());
                    cache.insert(key, &canonical, Arc::new(Json::Num(i as f64)));
                    // Read back something an arbitrary thread wrote; hit or
                    // miss, each get bumps exactly one counter.
                    let probe = format!("q|{}|{}", (t + i) % THREADS, i / 2);
                    let _ = cache.get(fnv1a64(probe.as_bytes()), &probe);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("hammer thread survives");
    }

    let counters = cache.counters();
    assert_eq!(
        counters.hits + counters.misses,
        THREADS * OPS,
        "every get counted once"
    );
    assert_eq!(
        counters.insertions,
        THREADS * OPS,
        "every insert counted once"
    );
    assert_eq!(
        counters.entries,
        counters.insertions - counters.evictions,
        "resident set reconciles with insert/evict history"
    );
    assert!(
        counters.bytes <= budget,
        "byte budget held under contention: {} > {budget}",
        counters.bytes
    );
    assert!(counters.evictions > 0, "budget small enough to force churn");
}
