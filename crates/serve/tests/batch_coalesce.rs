//! Batch coalescing, asserted through the probe registry: a batch of N
//! same-technology queries must perform exactly one cell
//! characterization and report N-1 members as coalesced.
//!
//! This file deliberately holds a single `#[test]` — the probe registry
//! is process-global, and a dedicated integration-test binary keeps the
//! counter assertions free of interference from parallel tests.

use sram_coopt::{CoOptimizationFramework, DesignSpace};
use sram_serve::{CacheConfig, Engine, Json, Request};

#[test]
fn batch_of_same_technology_queries_characterizes_once() {
    sram_probe::set_level(sram_probe::Level::Summary);
    let baseline = sram_probe::snapshot();

    let engine = Engine::new(
        CoOptimizationFramework::paper_mode()
            .with_space(DesignSpace::coarse())
            .with_threads(2),
        CacheConfig::default(),
    );
    let batch: Vec<Request> = [512u64, 1024, 2048, 4096]
        .iter()
        .map(|bytes| {
            Request::from_line(&format!(
                r#"{{"op":"optimize","capacity_bytes":{bytes},"flavor":"lvt","method":"m1"}}"#
            ))
            .expect("well-formed query")
        })
        .collect();
    let responses = engine.handle_batch(&batch);
    sram_probe::set_level(sram_probe::Level::Off);

    assert_eq!(responses.len(), batch.len());
    for response in &responses {
        assert_eq!(
            response.get("status").and_then(Json::as_str),
            Some("ok"),
            "{}",
            response.render()
        );
    }
    assert_eq!(engine.characterizations(), 1, "one LUT pass for the batch");
    assert_eq!(engine.coalesced(), batch.len() as u64 - 1);

    let delta = sram_probe::snapshot().diff(&baseline);
    assert_eq!(
        delta.counters.get("serve.batch.characterizations").copied(),
        Some(1),
        "probe agrees with the engine counter"
    );
    assert_eq!(
        delta.counters.get("serve.batch.coalesced").copied(),
        Some(batch.len() as u64 - 1),
        "N-1 queries shared the single characterization"
    );
    assert_eq!(
        delta.counters.get("serve.cache.misses").copied(),
        Some(batch.len() as u64),
        "every distinct query missed the cold cache"
    );
}
