//! Fault-injection end-to-end tests: worker panic isolation, bounded
//! retry, queue backpressure, and deadline handling — all driven by
//! deterministic [`sram_faults`] plans against a real TCP server.
//!
//! The fault registry is process-global, so every test that installs a
//! plan serializes behind one mutex and uninstalls on drop (even if the
//! test itself panics). Probe counters are global and cumulative, so
//! assertions are on deltas.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use sram_coopt::{CoOptimizationFramework, DesignSpace};
use sram_faults::{FaultPlan, FaultRule};
use sram_serve::{CacheConfig, Client, Engine, Json, Request, Server, ServerConfig};

static GATE: Mutex<()> = Mutex::new(());

/// Installs a plan for the duration of one test, holding the gate so
/// concurrent tests cannot see each other's faults.
struct PlanGuard {
    _gate: MutexGuard<'static, ()>,
}

impl PlanGuard {
    fn install(plan: &FaultPlan) -> Self {
        let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        // Counters default to off; these tests assert on their deltas.
        sram_probe::set_level(sram_probe::Level::Summary);
        sram_faults::install(plan);
        Self { _gate: gate }
    }
}

impl Drop for PlanGuard {
    fn drop(&mut self) {
        sram_faults::uninstall();
    }
}

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(
        CoOptimizationFramework::paper_mode()
            .with_space(DesignSpace::coarse())
            .with_threads(2),
        CacheConfig::default(),
    ))
}

fn counter(name: &'static str) -> u64 {
    sram_probe::counter(name).get()
}

fn optimize_line(capacity: u64, id: &str) -> String {
    format!(
        r#"{{"id":"{id}","op":"optimize","capacity_bytes":{capacity},"flavor":"hvt","method":"m2"}}"#
    )
}

#[test]
fn worker_panics_are_isolated_and_the_server_keeps_answering() {
    let plan = FaultPlan::new(7).rule(FaultRule::always("serve.worker_panic", 2));
    let _guard = PlanGuard::install(&plan);
    let panics_before = counter("serve.worker.panics");
    let respawns_before = counter("serve.worker.respawns");

    let config = ServerConfig {
        workers: 1,
        cache_file: None,
        ..ServerConfig::default()
    };
    let server = Server::start(engine(), config).expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    // The first two dequeues consume the plan's two panic fires: each
    // request gets a typed internal reply instead of a hung channel.
    for id in ["p1", "p2"] {
        let reply = client
            .call_line(&optimize_line(1024, id))
            .expect("reply arrives despite the panic");
        assert_eq!(
            reply.get("status").and_then(Json::as_str),
            Some("internal"),
            "{}",
            reply.render()
        );
        assert_eq!(reply.get("id").and_then(Json::as_str), Some(id));
        assert_eq!(reply.get("retryable").and_then(Json::as_bool), Some(true));
    }

    // The plan is exhausted; the respawned worker answers normally.
    let reply = client
        .call_line(&optimize_line(1024, "p3"))
        .expect("server still serves after two panics");
    assert_eq!(
        reply.get("status").and_then(Json::as_str),
        Some("ok"),
        "{}",
        reply.render()
    );

    assert_eq!(counter("serve.worker.panics") - panics_before, 2);
    assert_eq!(counter("serve.worker.respawns") - respawns_before, 2);

    drop(client);
    server.shutdown();
}

#[test]
fn transient_characterization_failures_recover_via_bounded_retry() {
    // Two injected NaN measurements: attempts 1 and 2 fail, attempt 3
    // (the last allowed) succeeds.
    let plan = FaultPlan::new(11).rule(FaultRule::always("cell.characterize_nan", 2));
    let _guard = PlanGuard::install(&plan);
    let attempts_before = counter("serve.retry.attempts");
    let recovered_before = counter("serve.retry.recovered");
    let injected_before = counter("faults.injected");

    let engine = engine();
    let request = Request::from_line(&optimize_line(1024, "r1")).expect("well-formed");
    let reply = engine.handle(&request);
    assert_eq!(
        reply.get("status").and_then(Json::as_str),
        Some("ok"),
        "{}",
        reply.render()
    );

    assert_eq!(counter("serve.retry.attempts") - attempts_before, 2);
    assert_eq!(counter("serve.retry.recovered") - recovered_before, 1);
    assert_eq!(counter("faults.injected") - injected_before, 2);
    assert_eq!(engine.characterizations(), 1, "one LUT despite retries");
}

#[test]
fn full_queue_rejects_with_busy_while_the_worker_is_pinned() {
    // One slow characterization pins the single worker long enough for
    // the queue (capacity 1) to fill and overflow.
    let plan = FaultPlan::new(13).rule(FaultRule::always("cell.slow", 1).with_latency_ms(400));
    let _guard = PlanGuard::install(&plan);
    let rejected_before = counter("serve.request.rejected");

    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        cache_file: None,
        ..ServerConfig::default()
    };
    let server = Server::start(engine(), config).expect("server binds");
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        // A: dequeued immediately, then stalls in the injected 400 ms
        // characterization sleep.
        let a = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("client a connects");
            client
                .call_line(&optimize_line(128, "a"))
                .expect("a replies")
        });
        std::thread::sleep(Duration::from_millis(120));
        // B: fills the queue's single slot and waits.
        let b = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("client b connects");
            client
                .call_line(&optimize_line(256, "b"))
                .expect("b replies")
        });
        std::thread::sleep(Duration::from_millis(60));
        // C: immediate busy rejection — the backpressure signal.
        let mut client = Client::connect(addr).expect("client c connects");
        let c = client
            .call_line(&optimize_line(512, "c"))
            .expect("c replies immediately");
        assert_eq!(
            c.get("status").and_then(Json::as_str),
            Some("busy"),
            "{}",
            c.render()
        );
        assert_eq!(c.get("retryable").and_then(Json::as_bool), Some(true));

        for reply in [a.join().expect("a"), b.join().expect("b")] {
            assert_eq!(
                reply.get("status").and_then(Json::as_str),
                Some("ok"),
                "{}",
                reply.render()
            );
        }
    });

    assert!(counter("serve.request.rejected") > rejected_before);
    server.shutdown();
}

#[test]
fn deadline_expired_while_queued_is_rejected_at_dequeue() {
    // Pin the worker for 300 ms; a request with a 50 ms deadline sits
    // in the queue past its budget and must be expired at dequeue, not
    // executed.
    let plan = FaultPlan::new(17).rule(FaultRule::always("cell.slow", 1).with_latency_ms(300));
    let _guard = PlanGuard::install(&plan);
    let expired_before = counter("serve.request.expired");

    let config = ServerConfig {
        workers: 1,
        cache_file: None,
        ..ServerConfig::default()
    };
    let server = Server::start(engine(), config).expect("server binds");
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        let pin = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("pin client connects");
            client
                .call_line(&optimize_line(128, "pin"))
                .expect("pin replies")
        });
        std::thread::sleep(Duration::from_millis(100));
        let mut client = Client::connect(addr).expect("client connects");
        let line = r#"{"id":"late","op":"optimize","capacity_bytes":256,"flavor":"hvt","method":"m2","deadline_ms":50}"#;
        let reply = client.call_line(line).expect("typed reply, not a hang");
        assert_eq!(
            reply.get("status").and_then(Json::as_str),
            Some("deadline_exceeded"),
            "{}",
            reply.render()
        );
        assert_eq!(reply.get("retryable").and_then(Json::as_bool), Some(false));
        assert_eq!(
            pin.join()
                .expect("pin")
                .get("status")
                .and_then(Json::as_str),
            Some("ok")
        );
    });

    assert_eq!(counter("serve.request.expired") - expired_before, 1);
    server.shutdown();
}

#[test]
fn deadline_firing_mid_request_returns_a_typed_error_promptly() {
    // A 50 ms injected characterization delay guarantees the 1 ms
    // deadline has passed by the time the search starts; the first
    // slice-boundary check must cancel it.
    let plan = FaultPlan::new(19).rule(FaultRule::always("cell.slow", 1).with_latency_ms(50));
    let _guard = PlanGuard::install(&plan);

    let server = Server::start(
        engine(),
        ServerConfig {
            cache_file: None,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    let started = Instant::now();
    let line = r#"{"id":"dl","op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2","deadline_ms":1}"#;
    let reply = client.call_line(line).expect("typed reply, not a hang");
    assert_eq!(
        reply.get("status").and_then(Json::as_str),
        Some("deadline_exceeded"),
        "{}",
        reply.render()
    );
    // Bounded promptly: injected delay + one search slice + overhead,
    // nowhere near a full sweep with no cancellation.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "cancellation took {:?}",
        started.elapsed()
    );

    drop(client);
    server.shutdown();
}
