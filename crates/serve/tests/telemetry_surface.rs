//! Own-process exercise of the telemetry surface: `metrics`/`health`
//! over the wire, SLO burn flipping the verdict, the two exposition
//! forms agreeing, and per-root trace sampling on the serve path.
//!
//! Everything lives in ONE test function: the telemetry ring, SLO
//! counters, and sampling state are process globals, and `cargo test`
//! runs sibling `#[test]`s concurrently.

use std::sync::Arc;

use sram_coopt::{CoOptimizationFramework, DesignSpace};
use sram_serve::{slo, CacheConfig, Client, Engine, Json, Server, ServerConfig};

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(
        CoOptimizationFramework::paper_mode()
            .with_space(DesignSpace::coarse())
            .with_threads(2),
        CacheConfig::default(),
    ))
}

/// Pulls `sram_<name>{quantile="<q>"} <value>` out of the text
/// exposition.
fn text_quantile(text: &str, metric: &str, q: &str) -> Option<f64> {
    let needle = format!("{metric}{{quantile=\"{q}\"}} ");
    text.lines()
        .find(|l| l.starts_with(&needle))
        .and_then(|l| l[needle.len()..].trim().parse().ok())
}

#[test]
fn telemetry_surface_end_to_end() {
    let engine = engine();
    let server = Server::start(Arc::clone(&engine), ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    // Clean run: health is ok over the wire.
    let health = client
        .call_line(r#"{"op":"health","id":"h0"}"#)
        .expect("health reply");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    let result = health.get("result").expect("health result");
    assert_eq!(result.get("verdict").and_then(Json::as_str), Some("ok"));
    assert!(
        result
            .get("queue")
            .and_then(|q| q.get("capacity"))
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0,
        "capacity gauge set at server start"
    );

    // Drive some real traffic so latency quantiles exist, then close a
    // window deterministically (no reliance on sampler timing).
    for cap in [128u64, 256, 512, 1024] {
        let resp = client
            .call_line(&format!(
                r#"{{"op":"optimize","capacity_bytes":{cap},"flavor":"hvt","method":"m2"}}"#
            ))
            .expect("optimize reply");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    }
    sram_probe::telemetry::force_sample();

    // Metrics: the JSON form and the text exposition come from one
    // export and must agree exactly on the quantile estimates.
    let metrics = client
        .call_line(r#"{"op":"metrics","id":"m0"}"#)
        .expect("metrics reply");
    assert_eq!(metrics.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(metrics.get("cached").and_then(Json::as_bool), Some(false));
    let result = metrics.get("result").expect("metrics result");
    assert!(result.get("windows").and_then(Json::as_f64).unwrap() >= 1.0);
    let text = result
        .get("text")
        .and_then(Json::as_str)
        .expect("text form");
    let latency = result
        .get("quantiles")
        .and_then(|q| q.get("serve.request.latency_ns"))
        .expect("latency quantiles present");
    for (q, key) in [("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")] {
        let from_text = text_quantile(text, "sram_serve_request_latency_ns", q)
            .unwrap_or_else(|| panic!("text exposition carries quantile {q}:\n{text}"));
        let from_json = latency.get(key).and_then(Json::as_f64).unwrap();
        assert_eq!(from_text, from_json, "{q} drifted between forms");
    }

    // SLO burn: saturate one op's breach counter far past the
    // unhealthy threshold and close a window — the verdict must flip.
    for _ in 0..50 {
        slo::record("optimize", 3_600_000_000_000); // one hour "latency"
    }
    sram_probe::telemetry::force_sample();
    let health = client
        .call_line(r#"{"op":"health","id":"h1"}"#)
        .expect("health reply");
    let result = health.get("result").expect("health result");
    let verdict = result.get("verdict").and_then(Json::as_str).unwrap();
    assert!(
        verdict == "unhealthy" || verdict == "degraded",
        "saturated SLO breaches must move the verdict, got {verdict}: {}",
        health.render()
    );
    let reasons = result.get("reasons").and_then(Json::as_array).unwrap();
    assert!(
        reasons
            .iter()
            .filter_map(Json::as_str)
            .any(|r| r.contains("optimize") && r.contains("SLO")),
        "reasons name the burning op: {}",
        health.render()
    );

    // Trace sampling on the serve path: rate 0 drops the span tree,
    // rate 1 restores it, deterministically.
    sram_probe::trace::set_sampling(0.0, 7);
    let untraced = client
        .call_line(r#"{"op":"stats","trace":true}"#)
        .expect("stats reply");
    assert!(
        untraced.get("trace").is_none(),
        "rate 0 must sample no roots: {}",
        untraced.render()
    );
    sram_probe::trace::set_sampling(1.0, sram_probe::trace::DEFAULT_SAMPLE_SEED);
    let traced = client
        .call_line(r#"{"op":"stats","trace":true}"#)
        .expect("stats reply");
    assert!(
        traced.get("trace").is_some(),
        "rate 1 must sample every root: {}",
        traced.render()
    );
    assert_eq!(sram_probe::trace::dropped(), 0, "no ring pressure drops");

    drop(client);
    server.shutdown();
}
