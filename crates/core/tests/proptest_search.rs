//! Property tests: the exhaustive search is equivalent to a naive
//! brute-force enumeration on randomly subsampled design spaces.

use proptest::prelude::*;
use sram_array::{ArrayModel, ArrayOrganization, ArrayParams, Capacity, Periphery};
use sram_cell::CellCharacterization;
use sram_coopt::{DesignSpace, EnergyDelayProduct, ExhaustiveSearch, Objective, YieldConstraint};
use sram_device::DeviceLibrary;
use sram_units::Voltage;

fn naive_minimum(
    capacity: Capacity,
    cell: &CellCharacterization,
    periphery: &Periphery,
    params: &ArrayParams,
    space: &DesignSpace,
    constraint: YieldConstraint,
) -> Option<f64> {
    let mut best: Option<f64> = None;
    for org in ArrayOrganization::enumerate(capacity, 64, space.rows_range()) {
        for &vssc in space.vssc_values() {
            if !constraint.check_snapshot(cell, vssc) {
                continue;
            }
            for &n_pre in &space.npre_values() {
                for &n_wr in &space.nwr_values() {
                    let metrics = ArrayModel::new(org, cell, periphery, params)
                        .with_precharge_fins(n_pre)
                        .with_write_fins(n_wr)
                        .with_vssc(vssc)
                        .evaluate()
                        .expect("evaluates");
                    let score = EnergyDelayProduct.score(&metrics);
                    best = Some(best.map_or(score, |b: f64| b.min(score)));
                }
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The (parallel) exhaustive search returns exactly the brute-force
    /// minimum on arbitrary subsampled spaces.
    #[test]
    fn search_equals_brute_force(
        vssc_picks in proptest::collection::vec(0usize..25, 1..5),
        npre_stride in 5u32..20,
        nwr_stride in 4u32..12,
        rows_max_log2 in 5u32..11,
        capacity_kb in prop_oneof![Just(1usize), Just(4)],
        threads in 1usize..5,
    ) {
        let lib = DeviceLibrary::sevennm();
        let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
        let periphery = Periphery::new(&lib);
        let params = ArrayParams::paper_defaults();
        let constraint = YieldConstraint::paper_delta(lib.nominal_vdd());

        let mut vsscs: Vec<Voltage> = vssc_picks
            .iter()
            .map(|&k| Voltage::from_millivolts(-10.0 * k as f64))
            .collect();
        vsscs.sort_by(|a, b| b.volts().total_cmp(&a.volts()));
        vsscs.dedup();
        let space = DesignSpace::paper_default()
            .with_vssc_values(vsscs)
            .with_rows_range(2, 1 << rows_max_log2)
            .with_strides(npre_stride, nwr_stride);
        let capacity = Capacity::from_bytes(capacity_kb * 1024);

        let naive = naive_minimum(capacity, &cell, &periphery, &params, &space, constraint);
        let search = ExhaustiveSearch::new(&cell, &periphery, &params, &space, constraint, 64)
            .with_threads(threads)
            .run(capacity, &EnergyDelayProduct);

        match (naive, search) {
            (Some(expected), Ok(outcome)) => {
                prop_assert!(
                    (outcome.score - expected).abs() <= 1e-12 * expected.abs(),
                    "search {} vs brute force {expected}",
                    outcome.score
                );
            }
            (None, Err(_)) => {}
            (naive, search) => {
                prop_assert!(false, "disagree: naive={naive:?} search_ok={}", search.is_ok());
            }
        }
    }
}
