//! Standby (drowsy) supply optimization — a device-circuit extension.
//!
//! The paper's Fig. 2 analysis shows leakage falling with `Vdd` while
//! hold margins collapse — and argues HVT cells tolerate deeper scaling.
//! This module turns that analysis into a design procedure: find the
//! lowest *standby* supply whose simulated hold SNM still clears a
//! retention margin, and report the leakage saved relative to idling at
//! the nominal supply. (Active accesses still run at nominal; drowsy
//! periods only hold data.)

use crate::CooptError;
use sram_cell::{AssistVoltages, CellCharacterizer, CellError};
use sram_units::{Power, Voltage};

/// Result of a standby-supply search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StandbyPolicy {
    /// Chosen standby supply.
    pub vdd_hold: Voltage,
    /// Hold SNM at the standby supply.
    pub hold_snm: Voltage,
    /// Cell leakage power at the standby supply.
    pub leakage: Power,
    /// Cell leakage power at the nominal supply.
    pub nominal_leakage: Power,
}

impl StandbyPolicy {
    /// Fractional leakage saving of drowsy standby vs. idling at nominal.
    #[must_use]
    pub fn leakage_saving(&self) -> f64 {
        1.0 - self.leakage.watts() / self.nominal_leakage.watts()
    }
}

/// Finds the lowest standby supply (on a 25 mV grid down from nominal)
/// whose hold SNM is at least `margin_fraction × Vdd_hold` — the same
/// relative-margin form as the paper's `δ = 0.35·Vdd` rule, applied to
/// retention.
///
/// # Errors
///
/// * [`CooptError::RailSearchFailed`] when even the nominal supply fails
///   the retention margin;
/// * propagates simulation failures.
pub fn optimize_standby(
    characterizer: &CellCharacterizer,
    margin_fraction: f64,
) -> Result<StandbyPolicy, CooptError> {
    let nominal_vdd = characterizer.vdd();
    let nominal_leakage = characterizer
        .hold_leakage_at(nominal_vdd)
        .map_err(CooptError::Cell)?;

    let snm_at = |vdd: Voltage| -> Result<Option<Voltage>, CellError> {
        let chr = characterizer.clone().with_vdd(vdd).with_vtc_points(31);
        match chr.hold_snm(&AssistVoltages::nominal(vdd)) {
            Ok(snm) => Ok(Some(snm)),
            Err(CellError::MeasurementFailed { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    };

    let mut best: Option<StandbyPolicy> = None;
    let mut mv = nominal_vdd.millivolts();
    while mv >= 100.0 {
        let vdd = Voltage::from_millivolts(mv);
        let ok = match snm_at(vdd).map_err(CooptError::Cell)? {
            Some(snm) if snm.volts() >= margin_fraction * vdd.volts() => Some(snm),
            _ => None,
        };
        match ok {
            Some(snm) => {
                best = Some(StandbyPolicy {
                    vdd_hold: vdd,
                    hold_snm: snm,
                    leakage: characterizer
                        .hold_leakage_at(vdd)
                        .map_err(CooptError::Cell)?,
                    nominal_leakage,
                });
            }
            // Margins are monotone in Vdd here: the first failure ends
            // the descent.
            None => break,
        }
        mv -= 25.0;
    }
    best.ok_or(CooptError::RailSearchFailed { rail: "V_DD,hold" })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::{DeviceLibrary, VtFlavor};

    fn chr(flavor: VtFlavor) -> CellCharacterizer {
        CellCharacterizer::new(&DeviceLibrary::sevennm(), flavor)
    }

    #[test]
    fn drowsy_standby_saves_leakage() {
        let policy = optimize_standby(&chr(VtFlavor::Hvt), 0.30).unwrap();
        assert!(policy.vdd_hold < Voltage::from_millivolts(450.0));
        assert!(
            policy.leakage_saving() > 0.1,
            "saving = {:.1}%",
            policy.leakage_saving() * 100.0
        );
        // The margin rule is respected at the chosen supply.
        assert!(policy.hold_snm.volts() >= 0.30 * policy.vdd_hold.volts());
    }

    #[test]
    fn hvt_retains_deeper_than_lvt() {
        let hvt = optimize_standby(&chr(VtFlavor::Hvt), 0.30).unwrap();
        let lvt = optimize_standby(&chr(VtFlavor::Lvt), 0.30).unwrap();
        assert!(
            hvt.vdd_hold <= lvt.vdd_hold,
            "HVT hold {} vs LVT hold {} — Fig. 2's ordering",
            hvt.vdd_hold,
            lvt.vdd_hold
        );
    }

    #[test]
    fn impossible_margin_is_reported() {
        let err = optimize_standby(&chr(VtFlavor::Lvt), 0.49).unwrap_err();
        assert!(matches!(err, CooptError::RailSearchFailed { .. }));
    }
}
