//! Multi-bank partitioning — an architecture-level extension.
//!
//! The paper optimizes a single monolithic array per capacity. Real
//! macros above a few KB are usually **banked**: the capacity is split
//! into `2^k` independent arrays, one of which is activated per access,
//! plus a bank decoder and an output multiplexer. Banking trades:
//!
//! * shorter wordlines/bitlines per bank → faster, lower switching
//!   energy per access,
//! * but every bank leaks all the time (Eq. (4) applies to all `M` bits
//!   regardless of banking) and the bank periphery adds delay/energy.
//!
//! This module reuses the single-array optimizer per bank and layers the
//! banking overheads on top, exposing the EDP-optimal bank count.

use crate::{
    CooptError, DesignSpace, EnergyDelayProduct, ExhaustiveSearch, OptimalDesign, YieldConstraint,
};
use sram_array::{Capacity, DecoderModel, Periphery};
use sram_cell::CellCharacterization;
use sram_units::{Energy, EnergyDelay, Time};

/// A banked memory design: `2^bank_bits` copies of one optimized array.
#[derive(Debug, Clone, PartialEq)]
pub struct BankedDesign {
    /// log2 of the bank count.
    pub bank_bits: u32,
    /// The per-bank optimal design (for `capacity / 2^bank_bits`).
    pub bank: OptimalDesign,
    /// Total access delay including the bank decoder and output mux.
    pub delay: Time,
    /// Total per-access energy including all banks' leakage.
    pub energy: Energy,
}

impl BankedDesign {
    /// Total energy-delay product of the banked macro.
    #[must_use]
    pub fn edp(&self) -> EnergyDelay {
        self.energy * self.delay
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> u32 {
        1 << self.bank_bits
    }
}

/// Optimizes the bank count for a total `capacity`, evaluating
/// `2^0 … 2^max_bank_bits` banks. Each candidate's bank array is
/// optimized by the usual exhaustive search; bank-level overheads are a
/// bank decoder (address width = `bank_bits`) on the critical path and
/// the idle banks' leakage over the (banked) cycle.
///
/// # Errors
///
/// Propagates per-bank search failures; a bank count whose per-bank
/// capacity has no valid organization is skipped, and
/// [`CooptError::EmptyDesignSpace`] is returned only if *no* bank count
/// works.
#[allow(clippy::too_many_arguments)]
pub fn optimize_banked(
    capacity: Capacity,
    cell: &CellCharacterization,
    periphery: &Periphery,
    params: &sram_array::ArrayParams,
    space: &DesignSpace,
    constraint: YieldConstraint,
    word_bits: u32,
    max_bank_bits: u32,
) -> Result<BankedDesign, CooptError> {
    let decoder = DecoderModel::new(periphery);
    let mut best: Option<BankedDesign> = None;

    for bank_bits in 0..=max_bank_bits {
        let banks = 1usize << bank_bits;
        if !capacity.bits().is_multiple_of(banks) {
            continue;
        }
        let bank_capacity = Capacity::from_bits(capacity.bits() / banks);

        let search = ExhaustiveSearch::new(cell, periphery, params, space, constraint, word_bits);
        let outcome = match search.run(bank_capacity, &EnergyDelayProduct) {
            Ok(o) => o,
            Err(CooptError::EmptyDesignSpace { .. }) => continue,
            Err(e) => return Err(e),
        };

        // Bank-level overheads: decoder in series; output mux lumped as
        // one more decoder stage of the same width.
        let bank_dec_delay = decoder.delay(bank_bits) * 2.0;
        let bank_dec_energy = decoder.energy(bank_bits) * 2.0;
        let delay = outcome.metrics.delay + bank_dec_delay;

        // Leakage: the active bank's leakage is inside its metrics; the
        // other (banks-1) banks leak for the same cycle (Eq. (4) scaled).
        let idle_leakage = if banks > 1 {
            cell.leakage() * (bank_capacity.bits() as f64 * (banks as f64 - 1.0)) * delay
        } else {
            Energy::ZERO
        };
        let energy = outcome.metrics.energy + bank_dec_energy + idle_leakage;

        let candidate = BankedDesign {
            bank_bits,
            bank: OptimalDesign {
                capacity: bank_capacity,
                flavor: cell.flavor(),
                method: crate::Method::M2,
                organization: outcome.best.organization,
                n_pre: outcome.best.n_pre,
                n_wr: outcome.best.n_wr,
                vddc: cell.vddc(),
                vssc: outcome.best.vssc,
                vwl: cell.vwl(),
                metrics: outcome.metrics,
                stats: outcome.stats,
            },
            delay,
            energy,
        };
        if best.as_ref().is_none_or(|b| candidate.edp() < b.edp()) {
            best = Some(candidate);
        }
    }

    best.ok_or(CooptError::EmptyDesignSpace {
        capacity_bits: capacity.bits(),
    })
}

/// Convenience: scores one explicit bank count (for sweeps/plots).
///
/// # Errors
///
/// Same as [`optimize_banked`], plus [`CooptError::EmptyDesignSpace`]
/// when this specific bank count is invalid.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_bank_count(
    capacity: Capacity,
    bank_bits: u32,
    cell: &CellCharacterization,
    periphery: &Periphery,
    params: &sram_array::ArrayParams,
    space: &DesignSpace,
    constraint: YieldConstraint,
    word_bits: u32,
) -> Result<BankedDesign, CooptError> {
    // Restricting max==min forces the single candidate.
    let banks = 1usize << bank_bits;
    if !capacity.bits().is_multiple_of(banks) {
        return Err(CooptError::EmptyDesignSpace {
            capacity_bits: capacity.bits(),
        });
    }
    let mut out = None;
    for bb in bank_bits..=bank_bits {
        out = Some(optimize_banked_fixed(
            capacity, bb, cell, periphery, params, space, constraint, word_bits,
        )?);
    }
    out.ok_or(CooptError::EmptyDesignSpace {
        capacity_bits: capacity.bits(),
    })
}

#[allow(clippy::too_many_arguments)]
fn optimize_banked_fixed(
    capacity: Capacity,
    bank_bits: u32,
    cell: &CellCharacterization,
    periphery: &Periphery,
    params: &sram_array::ArrayParams,
    space: &DesignSpace,
    constraint: YieldConstraint,
    word_bits: u32,
) -> Result<BankedDesign, CooptError> {
    let decoder = DecoderModel::new(periphery);
    let banks = 1usize << bank_bits;
    let bank_capacity = Capacity::from_bits(capacity.bits() / banks);
    let search = ExhaustiveSearch::new(cell, periphery, params, space, constraint, word_bits);
    let outcome = search.run(bank_capacity, &EnergyDelayProduct)?;
    let delay = outcome.metrics.delay + decoder.delay(bank_bits) * 2.0;
    let idle_leakage = if banks > 1 {
        cell.leakage() * (bank_capacity.bits() as f64 * (banks as f64 - 1.0)) * delay
    } else {
        Energy::ZERO
    };
    let energy = outcome.metrics.energy + decoder.energy(bank_bits) * 2.0 + idle_leakage;
    Ok(BankedDesign {
        bank_bits,
        bank: OptimalDesign {
            capacity: bank_capacity,
            flavor: cell.flavor(),
            method: crate::Method::M2,
            organization: outcome.best.organization,
            n_pre: outcome.best.n_pre,
            n_wr: outcome.best.n_wr,
            vddc: cell.vddc(),
            vssc: outcome.best.vssc,
            vwl: cell.vwl(),
            metrics: outcome.metrics,
            stats: outcome.stats,
        },
        delay,
        energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_array::ArrayParams;
    use sram_device::DeviceLibrary;

    struct Fixture {
        cell: CellCharacterization,
        periphery: Periphery,
        params: ArrayParams,
        space: DesignSpace,
    }

    fn fixture() -> Fixture {
        let lib = DeviceLibrary::sevennm();
        Fixture {
            cell: CellCharacterization::paper_hvt(lib.nominal_vdd()),
            periphery: Periphery::new(&lib),
            params: ArrayParams::paper_defaults(),
            space: DesignSpace::coarse(),
        }
    }

    #[test]
    fn banking_never_loses_to_monolithic() {
        let fx = fixture();
        let constraint = YieldConstraint::paper_delta(fx.cell.vdd());
        let banked = optimize_banked(
            Capacity::from_bytes(16 * 1024),
            &fx.cell,
            &fx.periphery,
            &fx.params,
            &fx.space,
            constraint,
            64,
            3,
        )
        .unwrap();
        let mono = evaluate_bank_count(
            Capacity::from_bytes(16 * 1024),
            0,
            &fx.cell,
            &fx.periphery,
            &fx.params,
            &fx.space,
            constraint,
            64,
        )
        .unwrap();
        assert!(banked.edp() <= mono.edp(), "the search includes 1 bank");
    }

    #[test]
    fn banking_cuts_delay_at_large_capacity() {
        let fx = fixture();
        let constraint = YieldConstraint::paper_delta(fx.cell.vdd());
        let mono = evaluate_bank_count(
            Capacity::from_bytes(16 * 1024),
            0,
            &fx.cell,
            &fx.periphery,
            &fx.params,
            &fx.space,
            constraint,
            64,
        )
        .unwrap();
        let four = evaluate_bank_count(
            Capacity::from_bytes(16 * 1024),
            2,
            &fx.cell,
            &fx.periphery,
            &fx.params,
            &fx.space,
            constraint,
            64,
        )
        .unwrap();
        assert!(four.delay < mono.delay, "4 banks should cut the delay");
        assert_eq!(four.banks(), 4);
        assert_eq!(four.bank.capacity.bytes(), 4096);
    }

    #[test]
    fn total_leakage_is_banking_invariant() {
        // Eq. (4): all M bits leak regardless of partitioning; the
        // leakage *energy* differs only through the cycle time.
        let fx = fixture();
        let constraint = YieldConstraint::paper_delta(fx.cell.vdd());
        let capacity = Capacity::from_bytes(4096);
        let mono = evaluate_bank_count(
            capacity,
            0,
            &fx.cell,
            &fx.periphery,
            &fx.params,
            &fx.space,
            constraint,
            64,
        )
        .unwrap();
        let banked = evaluate_bank_count(
            capacity,
            2,
            &fx.cell,
            &fx.periphery,
            &fx.params,
            &fx.space,
            constraint,
            64,
        )
        .unwrap();
        // Leakage power = leakage energy / cycle: must equal M * P_cell
        // in both partitionings.
        let expect = fx.cell.leakage().watts() * capacity.bits() as f64;
        let decoder = DecoderModel::new(&fx.periphery);
        for d in [&mono, &banked] {
            let idle = d.energy - d.bank.metrics.energy - decoder.energy(d.bank_bits) * 2.0;
            let total_leak_power =
                (d.bank.metrics.leakage_energy + idle).joules() / d.delay.seconds();
            // The active bank's leakage term uses its own (bank-only)
            // delay while idle banks use the banked cycle; allow the
            // small decoder-delay skew.
            assert!(
                (total_leak_power / expect - 1.0).abs() < 0.05,
                "banked leakage power {total_leak_power:.3e} vs expected {expect:.3e}"
            );
        }
    }
}
