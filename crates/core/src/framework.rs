//! The end-to-end framework: device → circuit → architecture.

use crate::rails::{minimize_vddc, minimize_vwl};
use crate::{
    CooptError, DesignSpace, EnergyDelayProduct, ExhaustiveSearch, Method, Objective,
    OptimalDesign, RailSelection, YieldConstraint,
};
use sram_array::{ArrayParams, Capacity, Periphery};
use sram_cell::{CellCharacterization, CellCharacterizer, CharacterizationGrid};
use sram_device::{DeviceLibrary, VtFlavor};
use sram_faults::CancelToken;
use sram_units::Voltage;
use std::collections::HashMap;

/// Where cell look-up tables come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CharacterizationMode {
    /// Build tables from the constants the paper publishes (fast,
    /// reproduces the paper's numbers independently of our device card).
    PaperModel,
    /// Measure tables with the `sram-spice` simulator, including the
    /// rail-minimization searches (the full-stack reproduction; slower).
    Simulated,
}

/// The co-optimization framework (paper Fig. "framework" = Sections 2–5
/// combined): owns the device library, characterizes cells per
/// `(flavor, method)`, and searches the architecture space.
///
/// # Examples
///
/// ```
/// use sram_array::Capacity;
/// use sram_coopt::{CoOptimizationFramework, Method};
/// use sram_device::VtFlavor;
///
/// # fn main() -> Result<(), sram_coopt::CooptError> {
/// let mut fw = CoOptimizationFramework::paper_mode();
/// let lvt = fw.optimize(Capacity::from_bytes(16 * 1024), VtFlavor::Lvt, Method::M2)?;
/// let hvt = fw.optimize(Capacity::from_bytes(16 * 1024), VtFlavor::Hvt, Method::M2)?;
/// assert!(hvt.edp() < lvt.edp()); // the paper's headline for 16 KB
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CoOptimizationFramework {
    library: DeviceLibrary,
    vdd: Voltage,
    periphery: Periphery,
    params: ArrayParams,
    space: DesignSpace,
    mode: CharacterizationMode,
    word_bits: u32,
    threads: usize,
    cache: HashMap<(VtFlavor, Method), CellCharacterization>,
}

impl CoOptimizationFramework {
    /// Framework in paper-model mode with the Section 5 defaults.
    #[must_use]
    pub fn paper_mode() -> Self {
        Self::new(DeviceLibrary::sevennm(), CharacterizationMode::PaperModel)
    }

    /// Framework in full-simulation mode.
    #[must_use]
    pub fn simulated_mode() -> Self {
        Self::new(DeviceLibrary::sevennm(), CharacterizationMode::Simulated)
    }

    /// Framework over an explicit device library and mode.
    #[must_use]
    pub fn new(library: DeviceLibrary, mode: CharacterizationMode) -> Self {
        let periphery = Periphery::new(&library);
        Self {
            vdd: library.nominal_vdd(),
            library,
            periphery,
            params: ArrayParams::paper_defaults(),
            space: DesignSpace::paper_default(),
            mode,
            word_bits: 64,
            threads: 1,
            cache: HashMap::new(),
        }
    }

    /// Replaces the design space (e.g. [`DesignSpace::coarse`] for smoke
    /// tests).
    #[must_use]
    pub fn with_space(mut self, space: DesignSpace) -> Self {
        self.space = space;
        self
    }

    /// Replaces the workload parameters.
    #[must_use]
    pub fn with_params(mut self, params: ArrayParams) -> Self {
        self.params = params;
        self
    }

    /// Enables parallel search with `n` threads.
    #[must_use]
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Overrides the array supply voltage (dynamic-voltage-scaling
    /// studies). Rebuilds the peripheral figures and clears the cell
    /// cache. Note the paper-model rail constants are only published for
    /// the 450 mV nominal; use [`CharacterizationMode::Simulated`] when
    /// scaling the supply.
    #[must_use]
    pub fn with_supply(mut self, vdd: Voltage) -> Self {
        self.vdd = vdd;
        self.periphery = Periphery::at_supply(&self.library, vdd);
        self.cache.clear();
        self
    }

    /// The array supply voltage.
    #[must_use]
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// The peripheral circuit figures at the current supply.
    #[must_use]
    pub fn periphery(&self) -> &Periphery {
        &self.periphery
    }

    /// The shared array workload parameters.
    #[must_use]
    pub fn params(&self) -> &ArrayParams {
        &self.params
    }

    /// The architecture design space being searched.
    #[must_use]
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The word width `W` (the paper's 64 bits).
    #[must_use]
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// The minimum acceptable margin `δ = 0.35 · Vdd`.
    #[must_use]
    pub fn delta(&self) -> Voltage {
        self.vdd() * 0.35
    }

    /// Rail levels for a `(flavor, method)` pair: published values in
    /// paper mode; measured by simulation otherwise.
    ///
    /// # Errors
    ///
    /// Propagates rail-search failures in simulated mode.
    pub fn rails(&self, flavor: VtFlavor, method: Method) -> Result<RailSelection, CooptError> {
        let (vddc_min, vwl_min) = match self.mode {
            CharacterizationMode::PaperModel => RailSelection::paper_minimums(flavor),
            CharacterizationMode::Simulated => {
                let chr = CellCharacterizer::new(&self.library, flavor)
                    .with_vdd(self.vdd)
                    .with_vtc_points(31);
                (
                    minimize_vddc(&chr, self.delta())?,
                    minimize_vwl(&chr, self.delta())?,
                )
            }
        };
        Ok(RailSelection::from_minimums(method, vddc_min, vwl_min))
    }

    /// Builds the cell look-up tables for a `(flavor, method)` pair
    /// without touching the internal cache — the injectable-LUT form:
    /// callers that batch queries (the `sram-serve` scheduler) run this
    /// once per technology group, then fan the result out to any number
    /// of concurrent [`Self::optimize_with_cell`] calls, all on `&self`.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn characterize_cell(
        &self,
        flavor: VtFlavor,
        method: Method,
    ) -> Result<CellCharacterization, CooptError> {
        let rails = self.rails(flavor, method)?;
        Ok(match self.mode {
            CharacterizationMode::PaperModel => {
                // Chaos hooks for the analytic path: the simulated path
                // draws these inside `CellCharacterization::characterize`,
                // so paper-mode serve traffic exercises the same injected
                // latency and transient-failure handling without ever
                // double-drawing a point.
                sram_faults::maybe_sleep("cell.slow");
                if sram_faults::should_fire("cell.characterize_nan") {
                    return Err(CooptError::Cell(sram_cell::CellError::MeasurementFailed {
                        what: "characterization",
                        reason: "injected NaN measurement (fault plan)".to_string(),
                    }));
                }
                CellCharacterization::paper_with_rails(flavor, self.vdd(), rails.vddc, rails.vwl)
            }
            CharacterizationMode::Simulated => {
                let chr = CellCharacterizer::new(&self.library, flavor)
                    .with_vdd(self.vdd)
                    .with_vtc_points(31);
                let grid = CharacterizationGrid::paper_default(rails.vddc, rails.vwl);
                CellCharacterization::characterize(&chr, &grid)?
            }
        })
    }

    /// Returns (building and caching on first use) the cell look-up
    /// tables for a `(flavor, method)` pair.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn characterization(
        &mut self,
        flavor: VtFlavor,
        method: Method,
    ) -> Result<&CellCharacterization, CooptError> {
        if !self.cache.contains_key(&(flavor, method)) {
            let cell = self.characterize_cell(flavor, method)?;
            self.cache.insert((flavor, method), cell);
        }
        Ok(&self.cache[&(flavor, method)])
    }

    /// Optimizes one `(capacity, flavor, method)` combination under the
    /// EDP objective — one row of Table 4.
    ///
    /// # Errors
    ///
    /// Propagates characterization and search failures.
    pub fn optimize(
        &mut self,
        capacity: Capacity,
        flavor: VtFlavor,
        method: Method,
    ) -> Result<OptimalDesign, CooptError> {
        self.optimize_with(capacity, flavor, method, &EnergyDelayProduct)
    }

    /// Optimizes under an arbitrary objective.
    ///
    /// # Errors
    ///
    /// Propagates characterization and search failures.
    pub fn optimize_with(
        &mut self,
        capacity: Capacity,
        flavor: VtFlavor,
        method: Method,
        objective: &(impl Objective + Sync + ?Sized),
    ) -> Result<OptimalDesign, CooptError> {
        self.characterization(flavor, method)?;
        let cell = &self.cache[&(flavor, method)];
        Self::optimize_with_cell_inner(
            cell,
            &self.periphery,
            &self.params,
            &self.space,
            self.delta(),
            self.word_bits,
            self.threads,
            self.rails(flavor, method)?,
            capacity,
            flavor,
            method,
            objective,
            &CancelToken::never(),
        )
    }

    /// Optimizes against an injected, pre-built characterization — the
    /// resumable form used by batch servers: the expensive LUT pass runs
    /// once (via [`Self::characterize_cell`]) and any number of searches
    /// share it concurrently, since this method only borrows `&self`.
    ///
    /// `cell` must have been characterized for the same
    /// `(flavor, method)` pair (and this framework's supply); the rail
    /// levels reported in the result are re-derived from the pair.
    ///
    /// # Errors
    ///
    /// Propagates rail-selection and search failures.
    pub fn optimize_with_cell(
        &self,
        cell: &CellCharacterization,
        capacity: Capacity,
        flavor: VtFlavor,
        method: Method,
        objective: &(impl Objective + Sync + ?Sized),
    ) -> Result<OptimalDesign, CooptError> {
        self.optimize_with_cell_cancel(
            cell,
            capacity,
            flavor,
            method,
            objective,
            &CancelToken::never(),
        )
    }

    /// [`Self::optimize_with_cell`] with a cooperative [`CancelToken`]:
    /// the serve layer links each request's deadline and the server's
    /// shutdown flag into the token, and the search polls it at slice
    /// boundaries — an expired deadline surfaces as a typed
    /// [`CooptError::Cancelled`] within one slice instead of burning the
    /// rest of the sweep.
    ///
    /// # Errors
    ///
    /// [`CooptError::Cancelled`] when the token fires mid-search, plus
    /// everything [`Self::optimize_with_cell`] returns.
    pub fn optimize_with_cell_cancel(
        &self,
        cell: &CellCharacterization,
        capacity: Capacity,
        flavor: VtFlavor,
        method: Method,
        objective: &(impl Objective + Sync + ?Sized),
        cancel: &CancelToken,
    ) -> Result<OptimalDesign, CooptError> {
        Self::optimize_with_cell_inner(
            cell,
            &self.periphery,
            &self.params,
            &self.space,
            self.delta(),
            self.word_bits,
            self.threads,
            self.rails(flavor, method)?,
            capacity,
            flavor,
            method,
            objective,
            cancel,
        )
    }

    /// The shared search body behind [`Self::optimize_with`] and
    /// [`Self::optimize_with_cell`] (free of `self` borrows so the
    /// cached-characterization path can split its borrow).
    #[allow(clippy::too_many_arguments)]
    fn optimize_with_cell_inner(
        cell: &CellCharacterization,
        periphery: &Periphery,
        params: &ArrayParams,
        space: &DesignSpace,
        delta: Voltage,
        word_bits: u32,
        threads: usize,
        rails: RailSelection,
        capacity: Capacity,
        flavor: VtFlavor,
        method: Method,
        objective: &(impl Objective + Sync + ?Sized),
        cancel: &CancelToken,
    ) -> Result<OptimalDesign, CooptError> {
        let space = match method {
            Method::M1 => space.clone().without_negative_gnd(),
            Method::M2 => space.clone(),
        };
        let search = ExhaustiveSearch::new(
            cell,
            periphery,
            params,
            &space,
            YieldConstraint::MinMargin { delta },
            word_bits,
        )
        .with_threads(threads)
        .with_cancel(cancel.clone());
        let outcome = search.run(capacity, objective)?;

        Ok(OptimalDesign {
            capacity,
            flavor,
            method,
            organization: outcome.best.organization,
            n_pre: outcome.best.n_pre,
            n_wr: outcome.best.n_wr,
            vddc: rails.vddc,
            vssc: outcome.best.vssc,
            vwl: rails.vwl,
            metrics: outcome.metrics,
            stats: outcome.stats,
        })
    }

    /// Verifies a winning design against the paper's *accurate* yield
    /// constraint (`min over margins of (μ − kσ) ≥ 0`, Section 4) by
    /// Monte Carlo simulation of `samples` varied cells at the design's
    /// operating point — the statistical cross-check the deterministic
    /// `δ` rule approximates.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn verify_statistical_yield(
        &self,
        design: &crate::OptimalDesign,
        samples: usize,
    ) -> Result<sram_cell::YieldAnalysis, CooptError> {
        self.verify_statistical_yield_cancel(design, samples, &CancelToken::never())
    }

    /// [`Self::verify_statistical_yield`] with a cooperative
    /// [`CancelToken`], polled once per Monte Carlo sample.
    ///
    /// # Errors
    ///
    /// [`CooptError::Cell`] wrapping a cancellation when the token fires
    /// mid-run, plus everything [`Self::verify_statistical_yield`]
    /// returns.
    pub fn verify_statistical_yield_cancel(
        &self,
        design: &crate::OptimalDesign,
        samples: usize,
        cancel: &CancelToken,
    ) -> Result<sram_cell::YieldAnalysis, CooptError> {
        use sram_cell::{AssistVoltages, MonteCarloConfig, YieldAnalyzer};
        let chr = CellCharacterizer::new(&self.library, design.flavor);
        let bias = AssistVoltages::nominal(self.vdd())
            .with_vddc(design.vddc)
            .with_vssc(design.vssc)
            .with_vwl(design.vwl);
        YieldAnalyzer::new(
            chr,
            MonteCarloConfig {
                samples,
                seed: 0x51a7,
                vtc_points: 25,
            },
        )
        .run_with_cancel(&bias, cancel)
        .map_err(CooptError::Cell)
    }

    /// Reproduces the paper's full Table 4: every capacity in
    /// `{128 B, 256 B, 1 KB, 4 KB, 16 KB}` × `{LVT, HVT}` × `{M1, M2}`.
    ///
    /// # Errors
    ///
    /// Propagates the first failing optimization.
    pub fn optimize_table4(&mut self) -> Result<Vec<OptimalDesign>, CooptError> {
        let mut out = Vec::new();
        for bytes in [128, 256, 1024, 4096, 16 * 1024] {
            for flavor in [VtFlavor::Lvt, VtFlavor::Hvt] {
                for method in [Method::M1, Method::M2] {
                    out.push(self.optimize(Capacity::from_bytes(bytes), flavor, method)?);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coarse_framework() -> CoOptimizationFramework {
        CoOptimizationFramework::paper_mode().with_space(DesignSpace::coarse())
    }

    #[test]
    fn m1_never_uses_negative_gnd() {
        let mut fw = coarse_framework();
        let d = fw
            .optimize(Capacity::from_bytes(4096), VtFlavor::Hvt, Method::M1)
            .unwrap();
        assert_eq!(d.vssc, Voltage::ZERO);
        assert_eq!(d.vddc.millivolts(), 550.0);
        assert_eq!(d.vwl.millivolts(), 550.0);
    }

    #[test]
    fn m2_beats_m1_on_edp_for_hvt() {
        let mut fw = coarse_framework();
        let m1 = fw
            .optimize(Capacity::from_bytes(4096), VtFlavor::Hvt, Method::M1)
            .unwrap();
        let m2 = fw
            .optimize(Capacity::from_bytes(4096), VtFlavor::Hvt, Method::M2)
            .unwrap();
        assert!(
            m2.edp() <= m1.edp(),
            "M2 ({}) must not lose to M1 ({}) — its space is a superset",
            m2.edp(),
            m1.edp()
        );
        assert!(m2.vssc.volts() < 0.0, "HVT-M2 should exploit negative Gnd");
    }

    #[test]
    fn hvt_m2_wins_edp_at_large_capacity() {
        let mut fw = coarse_framework();
        let lvt = fw
            .optimize(Capacity::from_bytes(16 * 1024), VtFlavor::Lvt, Method::M2)
            .unwrap();
        let hvt = fw
            .optimize(Capacity::from_bytes(16 * 1024), VtFlavor::Hvt, Method::M2)
            .unwrap();
        assert!(
            hvt.edp() < lvt.edp(),
            "paper headline: HVT-M2 wins at 16 KB"
        );
        // ... at a bounded performance penalty:
        let penalty = hvt.delay() / lvt.delay() - 1.0;
        assert!(penalty < 0.5, "delay penalty {penalty:.2} looks wrong");
    }

    #[test]
    fn characterizations_are_cached() {
        let mut fw = coarse_framework();
        fw.optimize(Capacity::from_bytes(1024), VtFlavor::Hvt, Method::M2)
            .unwrap();
        let before = fw.cache.len();
        fw.optimize(Capacity::from_bytes(4096), VtFlavor::Hvt, Method::M2)
            .unwrap();
        assert_eq!(fw.cache.len(), before);
    }

    #[test]
    fn statistical_yield_verifies_a_winner() {
        let mut fw = coarse_framework();
        let design = fw
            .optimize(Capacity::from_bytes(1024), VtFlavor::Hvt, Method::M2)
            .unwrap();
        let analysis = fw.verify_statistical_yield(&design, 8).unwrap();
        assert_eq!(analysis.hsnm.samples, 8);
        // The delta-rule winner holds at least the k = 1 statistical bar.
        assert!(analysis.passes(1.0));
    }

    #[test]
    fn injected_cell_matches_cached_path() {
        let mut fw = coarse_framework();
        let via_cache = fw
            .optimize(Capacity::from_bytes(1024), VtFlavor::Hvt, Method::M2)
            .unwrap();
        let cell = fw.characterize_cell(VtFlavor::Hvt, Method::M2).unwrap();
        let via_injection = fw
            .optimize_with_cell(
                &cell,
                Capacity::from_bytes(1024),
                VtFlavor::Hvt,
                Method::M2,
                &EnergyDelayProduct,
            )
            .unwrap();
        assert_eq!(via_cache, via_injection);
    }

    #[test]
    fn injected_cell_applies_method_space_policy() {
        let fw = coarse_framework();
        let cell = fw.characterize_cell(VtFlavor::Hvt, Method::M1).unwrap();
        let d = fw
            .optimize_with_cell(
                &cell,
                Capacity::from_bytes(1024),
                VtFlavor::Hvt,
                Method::M1,
                &EnergyDelayProduct,
            )
            .unwrap();
        assert_eq!(d.vssc, Voltage::ZERO, "M1 must not use negative Gnd");
    }

    #[test]
    fn rails_follow_method_policy() {
        let fw = CoOptimizationFramework::paper_mode();
        let m1 = fw.rails(VtFlavor::Lvt, Method::M1).unwrap();
        assert_eq!(m1.vwl.millivolts(), 640.0);
        let m2 = fw.rails(VtFlavor::Lvt, Method::M2).unwrap();
        assert_eq!(m2.vwl.millivolts(), 490.0);
    }
}
