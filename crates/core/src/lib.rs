//! The device-circuit-architecture co-optimization framework — the
//! paper's primary contribution.
//!
//! Given a memory capacity `M`, the framework finds the array design
//! minimizing the energy-delay product subject to yield constraints:
//!
//! * **device layer** — choose the cell flavor (LVT vs. HVT FinFETs) via
//!   the corresponding [`sram_cell::CellCharacterization`];
//! * **circuit layer** — pin `V_DDC` and `V_WL` at the minimum levels
//!   meeting the RSNM and WM yield requirements (Section 5's argument:
//!   raising either only costs energy), then sweep the negative-Gnd level
//!   `V_SSC`;
//! * **architecture layer** — sweep the organization `n_r × n_c`, the
//!   precharger fins `N_pre` and the write-buffer fins `N_wr`.
//!
//! The search space (`V_SSC ∈ {0,−10,…,−240 mV}`, `n_r ∈ {2¹…2¹⁰}`,
//! `N_pre ∈ {1…50}`, `N_wr ∈ {1…20}`) is small enough for **exhaustive
//! search** ([`ExhaustiveSearch`], with a std::thread::scope-parallel variant),
//! evaluated through the `sram-array` look-up-table model.
//!
//! Two rail-count policies are modeled (Section 5): **M1** — one extra
//! voltage rail, set to `max(V_DDC, V_WL)`, no negative rail; **M2** —
//! unrestricted rails, enabling the negative-Gnd assist.
//!
//! # Examples
//!
//! ```
//! use sram_array::Capacity;
//! use sram_coopt::{CoOptimizationFramework, Method};
//! use sram_device::VtFlavor;
//!
//! # fn main() -> Result<(), sram_coopt::CooptError> {
//! let mut framework = CoOptimizationFramework::paper_mode();
//! let design = framework.optimize(
//!     Capacity::from_bytes(4096),
//!     VtFlavor::Hvt,
//!     Method::M2,
//! )?;
//! assert!(design.vssc.volts() < 0.0); // M2 exploits negative Gnd
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod banking;
mod constraint;
mod error;
mod framework;
mod heuristic;
mod objective;
mod pareto;
mod rails;
mod report;
mod result;
mod search;
mod space;
mod standby;

pub use banking::{evaluate_bank_count, optimize_banked, BankedDesign};
pub use constraint::YieldConstraint;
pub use error::CooptError;
pub use framework::{CharacterizationMode, CoOptimizationFramework};
pub use heuristic::CoordinateDescent;
pub use objective::{
    DelayOnly, EnergyDelayProduct, EnergyDelaySquared, EnergyOnly, Objective, WeightedEnergyDelay,
};
pub use pareto::{ParetoFront, ParetoPoint};
pub use rails::{Method, RailSelection};
pub use report::{csv_table, format_table4};
pub use result::{OptimalDesign, SearchStatistics};
pub use search::{DesignPoint, ExhaustiveSearch, SearchOutcome};
pub use space::DesignSpace;
pub use standby::{optimize_standby, StandbyPolicy};
