//! Energy-delay Pareto fronts.
//!
//! Used by the ablation bench: how much of the exhaustive search could a
//! dominance-pruned search skip, and what do the energy/delay trade-offs
//! around the EDP optimum look like?

use sram_units::{Energy, Time};

/// One point of the energy-delay plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint<T> {
    /// Array energy.
    pub energy: Energy,
    /// Array delay.
    pub delay: Time,
    /// Caller payload (e.g. the design point).
    pub tag: T,
}

impl<T> ParetoPoint<T> {
    /// `true` when `self` dominates `other` (no worse in both, strictly
    /// better in at least one).
    #[must_use]
    pub fn dominates(&self, other: &Self) -> bool {
        let no_worse = self.energy <= other.energy && self.delay <= other.delay;
        let better = self.energy < other.energy || self.delay < other.delay;
        no_worse && better
    }
}

/// A maintained set of non-dominated energy/delay points.
#[derive(Debug, Clone, Default)]
pub struct ParetoFront<T> {
    points: Vec<ParetoPoint<T>>,
}

impl<T> ParetoFront<T> {
    /// Creates an empty front.
    #[must_use]
    pub fn new() -> Self {
        Self { points: Vec::new() }
    }

    /// Offers a point; it is inserted iff no existing point dominates it,
    /// evicting any points it dominates. Returns whether it was inserted.
    ///
    /// NaN policy: a point with a non-finite energy or delay is rejected
    /// outright. `dominates` is false in both directions against NaN
    /// coordinates, so such a point would otherwise enter the front and
    /// never be evicted.
    pub fn offer(&mut self, point: ParetoPoint<T>) -> bool {
        if !point.energy.joules().is_finite() || !point.delay.seconds().is_finite() {
            return false;
        }
        if self.points.iter().any(|p| p.dominates(&point)) {
            return false;
        }
        self.points.retain(|p| !point.dominates(p));
        self.points.push(point);
        true
    }

    /// The current non-dominated points.
    #[must_use]
    pub fn points(&self) -> &[ParetoPoint<T>] {
        &self.points
    }

    /// Number of non-dominated points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the front is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The front point minimizing the energy-delay product. The EDP
    /// optimum is always on the Pareto front — the correctness property
    /// the pruned-search ablation relies on.
    #[must_use]
    pub fn min_edp(&self) -> Option<&ParetoPoint<T>> {
        self.points.iter().min_by(|a, b| {
            (a.energy * a.delay)
                .joule_seconds()
                .total_cmp(&(b.energy * b.delay).joule_seconds())
        })
    }

    /// Points sorted by delay (for plotting).
    #[must_use]
    pub fn sorted_by_delay(&self) -> Vec<&ParetoPoint<T>> {
        let mut v: Vec<&ParetoPoint<T>> = self.points.iter().collect();
        v.sort_by(|a, b| a.delay.seconds().total_cmp(&b.delay.seconds()));
        v
    }
}

impl<T> Extend<ParetoPoint<T>> for ParetoFront<T> {
    fn extend<I: IntoIterator<Item = ParetoPoint<T>>>(&mut self, iter: I) {
        for p in iter {
            self.offer(p);
        }
    }
}

impl<T> FromIterator<ParetoPoint<T>> for ParetoFront<T> {
    fn from_iter<I: IntoIterator<Item = ParetoPoint<T>>>(iter: I) -> Self {
        let mut front = Self::new();
        front.extend(iter);
        front
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(e: f64, d: f64, tag: u32) -> ParetoPoint<u32> {
        ParetoPoint {
            energy: Energy::from_femtojoules(e),
            delay: Time::from_picoseconds(d),
            tag,
        }
    }

    #[test]
    fn dominance_rules() {
        assert!(pt(1.0, 1.0, 0).dominates(&pt(2.0, 2.0, 1)));
        assert!(pt(1.0, 1.0, 0).dominates(&pt(1.0, 2.0, 1)));
        assert!(!pt(1.0, 2.0, 0).dominates(&pt(2.0, 1.0, 1)));
        assert!(!pt(1.0, 1.0, 0).dominates(&pt(1.0, 1.0, 1)));
    }

    #[test]
    fn front_keeps_only_non_dominated() {
        let front: ParetoFront<u32> = [
            pt(3.0, 1.0, 0),
            pt(1.0, 3.0, 1),
            pt(2.0, 2.0, 2),
            pt(4.0, 4.0, 3),
        ]
        .into_iter()
        .collect();
        assert_eq!(front.len(), 3); // (4,4) dominated by (2,2)
        assert!(front.points().iter().all(|p| p.tag != 3));
    }

    #[test]
    fn eviction_on_later_dominator() {
        let mut front = ParetoFront::new();
        assert!(front.offer(pt(4.0, 4.0, 0)));
        assert!(front.offer(pt(1.0, 1.0, 1))); // dominates and evicts
        assert_eq!(front.len(), 1);
        assert_eq!(front.points()[0].tag, 1);
        assert!(!front.offer(pt(2.0, 2.0, 2)));
    }

    #[test]
    fn min_edp_is_on_front() {
        let front: ParetoFront<u32> = [pt(3.0, 1.0, 0), pt(1.0, 2.0, 1), pt(0.5, 6.0, 2)]
            .into_iter()
            .collect();
        // EDPs: 3, 2, 3 -> tag 1 wins.
        assert_eq!(front.min_edp().unwrap().tag, 1);
        assert_eq!(front.sorted_by_delay()[0].tag, 0);
    }

    #[test]
    fn non_finite_points_are_rejected() {
        let mut front = ParetoFront::new();
        assert!(!front.offer(pt(f64::NAN, 1.0, 0)));
        assert!(!front.offer(pt(1.0, f64::INFINITY, 1)));
        assert!(front.is_empty());
        // And a NaN offered after a real point does not evict it.
        assert!(front.offer(pt(1.0, 1.0, 2)));
        assert!(!front.offer(pt(f64::NAN, f64::NAN, 3)));
        assert_eq!(front.len(), 1);
        assert_eq!(front.points()[0].tag, 2);
    }

    #[test]
    fn empty_front() {
        let front: ParetoFront<u32> = ParetoFront::new();
        assert!(front.is_empty());
        assert!(front.min_edp().is_none());
    }
}
