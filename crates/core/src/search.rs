//! Exhaustive (and parallel) search over the design space.

use crate::{CooptError, DesignSpace, Objective, SearchStatistics, YieldConstraint};
use sram_array::{ArrayMetrics, ArrayModel, ArrayOrganization, ArrayParams, Capacity, Periphery};
use sram_cell::CellCharacterization;
use sram_faults::{CancelReason, CancelToken};
use sram_units::Voltage;
use std::sync::atomic::{AtomicBool, Ordering};

/// One candidate assignment of the searched variables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Organization (`n_r`, `n_c`).
    pub organization: ArrayOrganization,
    /// Negative-Gnd level.
    pub vssc: Voltage,
    /// Precharger fins.
    pub n_pre: u32,
    /// Write-buffer fins.
    pub n_wr: u32,
}

/// Result of a search: the winner plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The minimum-objective feasible candidate.
    pub best: DesignPoint,
    /// Its evaluated metrics.
    pub metrics: ArrayMetrics,
    /// Its objective score.
    pub score: f64,
    /// Statistics over the whole space.
    pub stats: SearchStatistics,
}

/// A feasible candidate with its evaluated metrics and objective score.
type ScoredCandidate = (DesignPoint, ArrayMetrics, f64);

/// Exhaustive search over [`DesignSpace`] (Section 5: "we can derive the
/// minimum energy-delay product point of the array using an exhaustive
/// search").
#[derive(Debug, Clone)]
pub struct ExhaustiveSearch<'a> {
    cell: &'a CellCharacterization,
    periphery: &'a Periphery,
    params: &'a ArrayParams,
    space: &'a DesignSpace,
    constraint: YieldConstraint,
    word_bits: u32,
    threads: usize,
    cancel: CancelToken,
}

impl<'a> ExhaustiveSearch<'a> {
    /// Creates a search bound to a characterized cell and the shared
    /// array parameters. `word_bits` is the paper's `W = 64`.
    #[must_use]
    pub fn new(
        cell: &'a CellCharacterization,
        periphery: &'a Periphery,
        params: &'a ArrayParams,
        space: &'a DesignSpace,
        constraint: YieldConstraint,
        word_bits: u32,
    ) -> Self {
        Self {
            cell,
            periphery,
            params,
            space,
            constraint,
            word_bits,
            threads: 1,
            cancel: CancelToken::never(),
        }
    }

    /// Enables a scoped thread pool of `n` workers, splitting the space
    /// by `(organization, V_SSC)` slice.
    #[must_use]
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Attaches a cooperative cancellation token, polled once per slice
    /// on both the serial and parallel paths — a fired token aborts the
    /// sweep within one slice's work instead of running to completion.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Enumerates the candidate `(organization, V_SSC)` slices for a
    /// capacity (the fin loops run inside each slice).
    fn slices(&self, capacity: Capacity) -> Vec<(ArrayOrganization, Voltage)> {
        let orgs = ArrayOrganization::enumerate(capacity, self.word_bits, self.space.rows_range());
        let mut out = Vec::with_capacity(orgs.len() * self.space.vssc_values().len());
        for org in orgs {
            for &vssc in self.space.vssc_values() {
                out.push((org, vssc));
            }
        }
        out
    }

    /// Evaluates one slice, returning the best feasible candidate in it.
    fn best_in_slice(
        &self,
        org: ArrayOrganization,
        vssc: Voltage,
        objective: &(impl Objective + ?Sized),
    ) -> (Option<ScoredCandidate>, SearchStatistics) {
        // One trace span per (V_SSC, n_r) slice — the unit of parallel
        // work — with the slice's outcome attached as args on the end
        // event.
        let mut trace = sram_probe::trace_span!("coopt.slice");
        trace.arg("rows", i64::from(org.rows()));
        trace.arg("vssc_mv", vssc.millivolts().round() as i64);

        let mut stats = SearchStatistics::default();
        let npre_values = self.space.npre_values();
        let nwr_values = self.space.nwr_values();
        stats.examined = npre_values.len() * nwr_values.len();

        // The yield constraint depends only on V_SSC (through the cell
        // tables), so it gates the whole slice.
        if !self.constraint.check_snapshot(self.cell, vssc) {
            stats.infeasible = stats.examined;
            trace.arg("examined", stats.examined as i64);
            trace.arg("feasible", 0);
            return (None, stats);
        }
        stats.feasible = stats.examined;
        trace.arg("examined", stats.examined as i64);
        trace.arg("feasible", stats.feasible as i64);

        let mut best: Option<ScoredCandidate> = None;
        for &n_pre in &npre_values {
            for &n_wr in &nwr_values {
                let metrics = match ArrayModel::new(org, self.cell, self.periphery, self.params)
                    .with_precharge_fins(n_pre)
                    .with_write_fins(n_wr)
                    .with_vssc(vssc)
                    .evaluate()
                {
                    Ok(m) => {
                        stats.evaluated += 1;
                        m
                    }
                    Err(_) => {
                        stats.eval_errors += 1;
                        continue;
                    }
                };
                let score = objective.score(&metrics);
                // NaN policy: a non-finite score can never become the
                // incumbent (a NaN first candidate would win `score < s`
                // comparisons by default forever after). Count it with the
                // evaluation errors so the statistics partition
                // (`feasible = evaluated + eval_errors`) still holds.
                if !score.is_finite() {
                    stats.evaluated -= 1;
                    stats.eval_errors += 1;
                    continue;
                }
                if best.as_ref().is_none_or(|(_, _, s)| score < *s) {
                    best = Some((
                        DesignPoint {
                            organization: org,
                            vssc,
                            n_pre,
                            n_wr,
                        },
                        metrics,
                        score,
                    ));
                }
            }
        }
        (best, stats)
    }

    /// Builds the typed cancellation error (and counts the abort).
    fn cancelled(&self, reason: CancelReason) -> CooptError {
        sram_probe::probe_inc!("coopt.search_cancelled");
        CooptError::Cancelled(reason)
    }

    /// Runs the search for `capacity` under `objective`.
    ///
    /// # Errors
    ///
    /// * [`CooptError::EmptyDesignSpace`] when the capacity admits no
    ///   organization within the row range;
    /// * [`CooptError::Infeasible`] when no candidate meets the yield
    ///   constraint;
    /// * [`CooptError::Cancelled`] when the attached [`CancelToken`]
    ///   fires mid-sweep (checked at slice boundaries).
    pub fn run(
        &self,
        capacity: Capacity,
        objective: &(impl Objective + Sync + ?Sized),
    ) -> Result<SearchOutcome, CooptError> {
        let slices = self.slices(capacity);
        if slices.is_empty() {
            return Err(CooptError::EmptyDesignSpace {
                capacity_bits: capacity.bits(),
            });
        }
        sram_probe::probe_inc!("coopt.searches");
        sram_probe::probe_add!("coopt.slices", slices.len() as u64);
        let _span = sram_probe::probe_span!("coopt.search_ns");
        let mut _trace = sram_probe::trace_span!("coopt.search");
        _trace.arg("slices", slices.len() as i64);
        // Scoped workers adopt the search span as parent so per-slice
        // spans nest under it even on the parallel path.
        let search_span = _trace.id();

        let results: Vec<(Option<ScoredCandidate>, SearchStatistics)> = if self.threads <= 1 {
            let mut out = Vec::with_capacity(slices.len());
            for &(org, vssc) in &slices {
                if let Some(reason) = self.cancel.cancelled() {
                    return Err(self.cancelled(reason));
                }
                out.push(self.best_in_slice(org, vssc, objective));
            }
            out
        } else {
            // Workers poll the token per slice and trip a shared latch so
            // every sibling chunk stops at its next slice boundary too.
            let stop = AtomicBool::new(false);
            let chunks: Vec<&[(ArrayOrganization, Voltage)]> =
                slices.chunks(slices.len().div_ceil(self.threads)).collect();
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                        .into_iter()
                        .map(|chunk| {
                            sram_probe::probe_record!(detail "coopt.slices_per_worker", chunk.len() as u64);
                            let stop = &stop;
                            scope.spawn(move || {
                                let _adopt = sram_probe::trace::adopt_parent(search_span);
                                let mut partial = Vec::with_capacity(chunk.len());
                                for &(org, vssc) in chunk {
                                    if stop.load(Ordering::Relaxed) {
                                        break;
                                    }
                                    if self.cancel.is_cancelled() {
                                        stop.store(true, Ordering::Relaxed);
                                        break;
                                    }
                                    partial.push(self.best_in_slice(org, vssc, objective));
                                }
                                partial
                            })
                        })
                        .collect();
                handles
                    .into_iter()
                    // sram-lint: allow(no-panic) re-raising a worker panic at the join is the scoped-thread contract
                    .flat_map(|h| h.join().expect("search worker panicked"))
                    .collect::<Vec<_>>()
            });
            if stop.load(Ordering::Relaxed) {
                // Deadlines and shutdown flags are monotonic, so the token
                // still reports the reason the workers observed.
                let reason = self.cancel.cancelled().unwrap_or(CancelReason::Shutdown);
                return Err(self.cancelled(reason));
            }
            results
        };

        let mut stats = SearchStatistics::default();
        let mut best: Option<ScoredCandidate> = None;
        for (candidate, slice_stats) in results {
            stats.merge(&slice_stats);
            if let Some((point, metrics, score)) = candidate {
                if best.as_ref().is_none_or(|(_, _, s)| score < *s) {
                    best = Some((point, metrics, score));
                }
            }
        }
        sram_probe::probe_add!("coopt.candidates_examined", stats.examined as u64);
        sram_probe::probe_add!("coopt.candidates_infeasible_yield", stats.infeasible as u64);
        sram_probe::probe_add!("coopt.candidates_evaluated", stats.evaluated as u64);
        sram_probe::probe_add!("coopt.candidate_eval_errors", stats.eval_errors as u64);

        let (best, metrics, score) = best.ok_or(CooptError::Infeasible {
            capacity_bits: capacity.bits(),
            examined: stats.examined,
        })?;
        sram_probe::probe_gauge!("coopt.best_score", score);
        Ok(SearchOutcome {
            best,
            metrics,
            score,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnergyDelayProduct;
    use sram_device::DeviceLibrary;

    struct Fixture {
        cell: CellCharacterization,
        periphery: Periphery,
        params: ArrayParams,
        space: DesignSpace,
    }

    fn fixture() -> Fixture {
        let lib = DeviceLibrary::sevennm();
        Fixture {
            cell: CellCharacterization::paper_hvt(lib.nominal_vdd()),
            periphery: Periphery::new(&lib),
            params: ArrayParams::paper_defaults(),
            space: DesignSpace::coarse(),
        }
    }

    fn search(fx: &Fixture) -> ExhaustiveSearch<'_> {
        ExhaustiveSearch::new(
            &fx.cell,
            &fx.periphery,
            &fx.params,
            &fx.space,
            YieldConstraint::paper_delta(fx.cell.vdd()),
            64,
        )
    }

    #[test]
    fn finds_a_feasible_minimum() {
        let fx = fixture();
        let out = search(&fx)
            .run(Capacity::from_bytes(1024), &EnergyDelayProduct)
            .unwrap();
        assert!(out.stats.examined > 0);
        assert!(out.stats.feasible > 0);
        assert_eq!(out.best.organization.capacity().bits(), 8192);
        assert!(out.score > 0.0);
    }

    #[test]
    fn statistics_partition_the_space() {
        let fx = fixture();
        let out = search(&fx)
            .run(Capacity::from_bytes(1024), &EnergyDelayProduct)
            .unwrap();
        let s = out.stats;
        assert_eq!(s.examined, s.feasible + s.infeasible);
        assert_eq!(s.feasible, s.evaluated + s.eval_errors);
        assert!(s.evaluated > 0);
    }

    #[test]
    fn parallel_matches_serial() {
        let fx = fixture();
        let serial = search(&fx)
            .run(Capacity::from_bytes(1024), &EnergyDelayProduct)
            .unwrap();
        let parallel = search(&fx)
            .with_threads(4)
            .run(Capacity::from_bytes(1024), &EnergyDelayProduct)
            .unwrap();
        assert_eq!(serial.best, parallel.best);
        assert_eq!(serial.stats, parallel.stats);
        assert!((serial.score - parallel.score).abs() < 1e-30);
    }

    #[test]
    fn expired_deadline_cancels_within_one_slice() {
        use std::time::{Duration, Instant};
        let fx = fixture();
        // Measure one uncancelled run to bound what "one slice" costs.
        let started = Instant::now();
        search(&fx)
            .run(Capacity::from_bytes(4096), &EnergyDelayProduct)
            .unwrap();
        let full_run = started.elapsed();
        let slice_count = search(&fx).slices(Capacity::from_bytes(4096)).len();
        assert!(slice_count > 1, "need a multi-slice space for this test");
        let slice_budget = full_run / slice_count as u32;

        // An already-expired deadline must abort before the first slice.
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let started = Instant::now();
        let err = search(&fx)
            .with_cancel(token)
            .run(Capacity::from_bytes(4096), &EnergyDelayProduct)
            .unwrap_err();
        let stopped_after = started.elapsed();
        assert!(
            matches!(err, CooptError::Cancelled(CancelReason::Deadline)),
            "{err}"
        );
        assert_eq!(err.cancel_reason(), Some(CancelReason::Deadline));
        assert!(!err.is_transient(), "cancellation must not be retried");
        // "Within one slice of expiry": generous scheduling slack plus the
        // measured per-slice cost, still far below the full-run duration.
        assert!(
            stopped_after <= slice_budget + Duration::from_millis(250),
            "took {stopped_after:?} to observe an already-expired deadline \
             (slice budget {slice_budget:?}, full run {full_run:?})"
        );
    }

    #[test]
    fn parallel_workers_observe_shutdown_between_slices() {
        let fx = fixture();
        let token = CancelToken::never();
        token.cancel();
        let err = search(&fx)
            .with_threads(4)
            .with_cancel(token)
            .run(Capacity::from_bytes(1024), &EnergyDelayProduct)
            .unwrap_err();
        assert!(
            matches!(err, CooptError::Cancelled(CancelReason::Shutdown)),
            "{err}"
        );
    }

    #[test]
    fn never_token_changes_nothing() {
        let fx = fixture();
        let plain = search(&fx)
            .run(Capacity::from_bytes(1024), &EnergyDelayProduct)
            .unwrap();
        let with_token = search(&fx)
            .with_cancel(CancelToken::never())
            .run(Capacity::from_bytes(1024), &EnergyDelayProduct)
            .unwrap();
        assert_eq!(plain.best, with_token.best);
        assert_eq!(plain.stats, with_token.stats);
    }

    #[test]
    fn infeasible_constraint_is_reported() {
        let fx = fixture();
        let strict = ExhaustiveSearch::new(
            &fx.cell,
            &fx.periphery,
            &fx.params,
            &fx.space,
            YieldConstraint::MinMargin {
                delta: Voltage::from_volts(1.0),
            },
            64,
        );
        let err = strict
            .run(Capacity::from_bytes(1024), &EnergyDelayProduct)
            .unwrap_err();
        assert!(matches!(err, CooptError::Infeasible { .. }));
    }

    #[test]
    fn impossible_capacity_is_empty() {
        let fx = fixture();
        // 8 bits cannot form any org with W = 64 columns minimum.
        let err = search(&fx)
            .run(Capacity::from_bits(8), &EnergyDelayProduct)
            .unwrap_err();
        assert!(matches!(err, CooptError::EmptyDesignSpace { .. }));
    }

    #[test]
    fn nan_scores_are_rejected_not_elected() {
        // An objective that always produces NaN: no candidate may become
        // the incumbent (a naive `score < s` lets the first NaN through),
        // and the rejects land in eval_errors so the statistics partition
        // still holds.
        struct NanObjective;
        impl Objective for NanObjective {
            fn score(&self, _: &ArrayMetrics) -> f64 {
                f64::NAN
            }
            fn name(&self) -> &'static str {
                "nan"
            }
        }
        let fx = fixture();
        let err = search(&fx)
            .run(Capacity::from_bytes(1024), &NanObjective)
            .unwrap_err();
        assert!(matches!(err, CooptError::Infeasible { .. }));
    }

    #[test]
    fn nan_scores_count_as_eval_errors() {
        // Only degenerate metrics (delay == 0) go NaN here; the rest of
        // the space still elects a finite winner.
        struct LogObjective;
        impl Objective for LogObjective {
            fn score(&self, m: &ArrayMetrics) -> f64 {
                m.edp().joule_seconds().ln()
            }
            fn name(&self) -> &'static str {
                "log-edp"
            }
        }
        let fx = fixture();
        let out = search(&fx)
            .run(Capacity::from_bytes(1024), &LogObjective)
            .unwrap();
        assert!(out.score.is_finite());
        let s = out.stats;
        assert_eq!(s.examined, s.feasible + s.infeasible);
        assert_eq!(s.feasible, s.evaluated + s.eval_errors);
    }

    #[test]
    fn winner_beats_a_baseline_point() {
        let fx = fixture();
        let out = search(&fx)
            .run(Capacity::from_bytes(1024), &EnergyDelayProduct)
            .unwrap();
        // Compare against the no-assist, minimum-fins baseline.
        let org = ArrayOrganization::new(128, 64, 64).unwrap();
        let baseline = ArrayModel::new(org, &fx.cell, &fx.periphery, &fx.params)
            .evaluate()
            .unwrap();
        assert!(out.score <= baseline.edp().joule_seconds());
    }
}
