//! Framework error type.

use core::fmt;
use sram_array::ArrayError;
use sram_cell::CellError;
use sram_faults::CancelReason;

/// Errors produced by the co-optimization framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CooptError {
    /// The array model failed to evaluate.
    Array(ArrayError),
    /// A cell characterization failed.
    Cell(CellError),
    /// No candidate in the design space satisfied the yield constraint.
    Infeasible {
        /// The capacity being optimized, in bits.
        capacity_bits: usize,
        /// Number of candidates examined.
        examined: usize,
    },
    /// The design space contains no candidates at all for this capacity.
    EmptyDesignSpace {
        /// The capacity being optimized, in bits.
        capacity_bits: usize,
    },
    /// The rail-minimization search could not satisfy a margin
    /// requirement within its voltage range.
    RailSearchFailed {
        /// Which rail failed (`"V_DDC"` or `"V_WL"`).
        rail: &'static str,
    },
    /// A cooperative cancellation token fired mid-search (deadline or
    /// shutdown); the sweep was abandoned at a slice boundary.
    Cancelled(CancelReason),
}

impl CooptError {
    /// Whether retrying the same call could plausibly succeed — only
    /// transient characterization failures qualify; infeasibility,
    /// empty spaces, and cancellations are final.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, CooptError::Cell(e) if e.is_transient())
    }

    /// The cancellation reason, when this error is a cancellation at any
    /// layer (the serve layer maps `Deadline` and `Shutdown` to distinct
    /// wire statuses).
    #[must_use]
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        match self {
            CooptError::Cancelled(reason) | CooptError::Cell(CellError::Cancelled(reason)) => {
                Some(*reason)
            }
            _ => None,
        }
    }
}

impl fmt::Display for CooptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CooptError::Array(e) => write!(f, "array model failed: {e}"),
            CooptError::Cell(e) => write!(f, "cell characterization failed: {e}"),
            CooptError::Infeasible {
                capacity_bits,
                examined,
            } => write!(
                f,
                "no feasible design for {capacity_bits} bits after examining {examined} candidates"
            ),
            CooptError::EmptyDesignSpace { capacity_bits } => {
                write!(f, "design space is empty for {capacity_bits} bits")
            }
            CooptError::RailSearchFailed { rail } => {
                write!(
                    f,
                    "could not find a {rail} level meeting the yield requirement"
                )
            }
            CooptError::Cancelled(reason) => write!(f, "search cancelled: {reason}"),
        }
    }
}

impl std::error::Error for CooptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CooptError::Array(e) => Some(e),
            CooptError::Cell(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArrayError> for CooptError {
    fn from(e: ArrayError) -> Self {
        CooptError::Array(e)
    }
}

impl From<CellError> for CooptError {
    fn from(e: CellError) -> Self {
        CooptError::Cell(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = CooptError::Infeasible {
            capacity_bits: 8192,
            examined: 1000,
        };
        assert!(e.to_string().contains("8192"));
        assert!(e.to_string().contains("1000"));
    }

    #[test]
    fn conversions_from_layer_errors() {
        use std::error::Error as _;
        let e = CooptError::from(CellError::BracketingFailed { what: "wm" });
        assert!(e.source().is_some());
    }
}
