//! Coordinate-descent search: a cheap alternative to exhaustive search.
//!
//! The paper justifies exhaustive search by the small variable count
//! ("only four variables with relatively small ranges"). This module
//! provides the obvious cheaper alternative — cyclic coordinate descent
//! over `(n_r, V_SSC, N_pre, N_wr)` — so the trade-off can be measured:
//! how often does the greedy search land on the true optimum, and how
//! many evaluations does it save? (See the ablation benches.)

use crate::{
    CooptError, DesignPoint, DesignSpace, Objective, SearchOutcome, SearchStatistics,
    YieldConstraint,
};
use sram_array::{ArrayModel, ArrayOrganization, ArrayParams, Capacity, Periphery};
use sram_cell::CellCharacterization;
use sram_units::Voltage;

/// Cyclic coordinate descent over the design space.
#[derive(Debug, Clone)]
pub struct CoordinateDescent<'a> {
    cell: &'a CellCharacterization,
    periphery: &'a Periphery,
    params: &'a ArrayParams,
    space: &'a DesignSpace,
    constraint: YieldConstraint,
    word_bits: u32,
    max_rounds: usize,
}

impl<'a> CoordinateDescent<'a> {
    /// Creates a descent bound to the same inputs as
    /// [`crate::ExhaustiveSearch`].
    #[must_use]
    pub fn new(
        cell: &'a CellCharacterization,
        periphery: &'a Periphery,
        params: &'a ArrayParams,
        space: &'a DesignSpace,
        constraint: YieldConstraint,
        word_bits: u32,
    ) -> Self {
        Self {
            cell,
            periphery,
            params,
            space,
            constraint,
            word_bits,
            max_rounds: 8,
        }
    }

    fn evaluate(
        &self,
        org: ArrayOrganization,
        vssc: Voltage,
        n_pre: u32,
        n_wr: u32,
        objective: &(impl Objective + ?Sized),
        evals: &mut usize,
    ) -> Option<(f64, sram_array::ArrayMetrics)> {
        if !self.constraint.check_snapshot(self.cell, vssc) {
            return None;
        }
        *evals += 1;
        let metrics = ArrayModel::new(org, self.cell, self.periphery, self.params)
            .with_precharge_fins(n_pre)
            .with_write_fins(n_wr)
            .with_vssc(vssc)
            .evaluate()
            .ok()?;
        Some((objective.score(&metrics), metrics))
    }

    /// Runs the descent: starting from the median of every range, sweep
    /// one variable at a time to its best value and repeat until a full
    /// round makes no improvement (or the round budget is hit).
    ///
    /// # Errors
    ///
    /// * [`CooptError::EmptyDesignSpace`] when the capacity admits no
    ///   organization;
    /// * [`CooptError::Infeasible`] when no visited candidate meets the
    ///   yield constraint.
    pub fn run(
        &self,
        capacity: Capacity,
        objective: &(impl Objective + ?Sized),
    ) -> Result<SearchOutcome, CooptError> {
        let orgs = ArrayOrganization::enumerate(capacity, self.word_bits, self.space.rows_range());
        if orgs.is_empty() {
            return Err(CooptError::EmptyDesignSpace {
                capacity_bits: capacity.bits(),
            });
        }
        let vsscs = self.space.vssc_values().to_vec();
        let npres = self.space.npre_values();
        let nwrs = self.space.nwr_values();

        let mut org_i = orgs.len() / 2;
        let mut vssc_i = vsscs.len() / 2;
        let mut npre_i = npres.len() / 2;
        let mut nwr_i = nwrs.len() / 2;

        let mut evals = 0usize;
        let mut best: Option<(f64, sram_array::ArrayMetrics, usize, usize, usize, usize)> = None;

        for _ in 0..self.max_rounds {
            let before = best.as_ref().map(|b| b.0);

            // One coordinate at a time; each sweep fixes the others at
            // their current indices.
            for dim in 0..4 {
                let len = [orgs.len(), vsscs.len(), npres.len(), nwrs.len()][dim];
                let mut local: Option<(f64, sram_array::ArrayMetrics, usize)> = None;
                for idx in 0..len {
                    let (oi, vi, pi, wi) = match dim {
                        0 => (idx, vssc_i, npre_i, nwr_i),
                        1 => (org_i, idx, npre_i, nwr_i),
                        2 => (org_i, vssc_i, idx, nwr_i),
                        _ => (org_i, vssc_i, npre_i, idx),
                    };
                    if let Some((score, metrics)) = self.evaluate(
                        orgs[oi], vsscs[vi], npres[pi], nwrs[wi], objective, &mut evals,
                    ) {
                        if local.as_ref().is_none_or(|(s, ..)| score < *s) {
                            local = Some((score, metrics, idx));
                        }
                    }
                }
                if let Some((score, metrics, idx)) = local {
                    match dim {
                        0 => org_i = idx,
                        1 => vssc_i = idx,
                        2 => npre_i = idx,
                        _ => nwr_i = idx,
                    }
                    if best.as_ref().is_none_or(|(s, ..)| score < *s) {
                        best = Some((score, metrics, org_i, vssc_i, npre_i, nwr_i));
                    }
                }
            }

            if best.as_ref().map(|b| b.0) == before {
                break; // converged: a full round changed nothing
            }
        }

        let (score, metrics, oi, vi, pi, wi) = best.ok_or(CooptError::Infeasible {
            capacity_bits: capacity.bits(),
            examined: evals,
        })?;
        Ok(SearchOutcome {
            best: DesignPoint {
                organization: orgs[oi],
                vssc: vsscs[vi],
                n_pre: npres[pi],
                n_wr: nwrs[wi],
            },
            metrics,
            score,
            stats: SearchStatistics {
                examined: evals,
                feasible: evals,
                evaluated: evals,
                ..SearchStatistics::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnergyDelayProduct, ExhaustiveSearch};
    use sram_device::DeviceLibrary;

    struct Fixture {
        cell: CellCharacterization,
        periphery: Periphery,
        params: ArrayParams,
        space: DesignSpace,
    }

    fn fixture() -> Fixture {
        let lib = DeviceLibrary::sevennm();
        Fixture {
            cell: CellCharacterization::paper_hvt(lib.nominal_vdd()),
            periphery: Periphery::new(&lib),
            params: ArrayParams::paper_defaults(),
            space: DesignSpace::paper_default(),
        }
    }

    #[test]
    fn descent_matches_or_approaches_exhaustive() {
        let fx = fixture();
        let constraint = YieldConstraint::paper_delta(fx.cell.vdd());
        let capacity = Capacity::from_bytes(4096);

        let exhaustive = ExhaustiveSearch::new(
            &fx.cell,
            &fx.periphery,
            &fx.params,
            &fx.space,
            constraint,
            64,
        )
        .run(capacity, &EnergyDelayProduct)
        .unwrap();
        let descent = CoordinateDescent::new(
            &fx.cell,
            &fx.periphery,
            &fx.params,
            &fx.space,
            constraint,
            64,
        )
        .run(capacity, &EnergyDelayProduct)
        .unwrap();

        // Coordinate descent must reach within 5% of the global optimum
        // on this (well-behaved) space, at far fewer evaluations.
        let gap = descent.score / exhaustive.score - 1.0;
        assert!(gap >= -1e-12, "descent cannot beat the exhaustive optimum");
        assert!(gap < 0.05, "descent lands {:.2}% off optimum", gap * 100.0);
        assert!(
            descent.stats.examined * 20 < exhaustive.stats.examined,
            "descent used {} evals vs exhaustive {}",
            descent.stats.examined,
            exhaustive.stats.examined
        );
    }

    #[test]
    fn descent_respects_constraints() {
        let fx = fixture();
        let err = CoordinateDescent::new(
            &fx.cell,
            &fx.periphery,
            &fx.params,
            &fx.space,
            YieldConstraint::MinMargin {
                delta: Voltage::from_volts(2.0),
            },
            64,
        )
        .run(Capacity::from_bytes(1024), &EnergyDelayProduct)
        .unwrap_err();
        assert!(matches!(err, CooptError::Infeasible { .. }));
    }
}
