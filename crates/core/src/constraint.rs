//! Yield constraints.
//!
//! The paper's accurate constraint is statistical
//! (`min over margins of (μ − kσ) ≥ 0`); "for simplicity" it actually
//! uses the deterministic `min(HSNM, RSNM, WM) ≥ δ` with
//! `δ = 0.35 · Vdd`. Both are provided; the optimizer checks the
//! deterministic form per candidate (it only depends on `V_SSC` through
//! the cell look-up tables), while the statistical form is exposed for
//! the Monte Carlo extension experiment.

use sram_cell::{CellCharacterization, YieldAnalysis};
use sram_units::Voltage;

/// A yield requirement on the three cell margins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum YieldConstraint {
    /// Deterministic: `min(HSNM, RSNM, WM) ≥ δ` (the paper's Section 5
    /// simplification, `δ = 0.35·Vdd`).
    MinMargin {
        /// The minimum acceptable margin `δ`.
        delta: Voltage,
    },
    /// Statistical: `min over margins of (μ − kσ) ≥ 0` with `1 ≤ k ≤ 6`
    /// (the paper's "accurate way"; evaluated via Monte Carlo).
    Statistical {
        /// Sigma multiplier `k`.
        k: f64,
    },
}

impl YieldConstraint {
    /// The paper's deterministic constraint at supply `vdd`:
    /// `δ = 0.35 · Vdd`.
    #[must_use]
    pub fn paper_delta(vdd: Voltage) -> Self {
        YieldConstraint::MinMargin { delta: vdd * 0.35 }
    }

    /// Checks the deterministic form against a characterization snapshot
    /// at cell ground `vssc`.
    ///
    /// The statistical form cannot be decided from a snapshot (it needs
    /// Monte Carlo margins) and conservatively returns `false`; use
    /// [`YieldConstraint::check_statistical`] with a [`YieldAnalysis`]
    /// instead.
    #[must_use]
    pub fn check_snapshot(&self, cell: &CellCharacterization, vssc: Voltage) -> bool {
        match *self {
            YieldConstraint::MinMargin { delta } => cell.min_margin(vssc) >= delta,
            YieldConstraint::Statistical { .. } => false,
        }
    }

    /// Checks the statistical form against Monte Carlo margin statistics.
    /// The deterministic form checks `μ ≥ δ`-style bounds trivially via
    /// the analysis means.
    #[must_use]
    pub fn check_statistical(&self, analysis: &YieldAnalysis) -> bool {
        match *self {
            YieldConstraint::MinMargin { delta } => {
                analysis.hsnm.mean >= delta
                    && analysis.rsnm.mean >= delta
                    && analysis.wm.mean >= delta
            }
            YieldConstraint::Statistical { k } => analysis.passes(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_cell::CellCharacterization;

    fn vdd() -> Voltage {
        Voltage::from_millivolts(450.0)
    }

    #[test]
    fn paper_delta_is_35_percent() {
        let c = YieldConstraint::paper_delta(vdd());
        match c {
            YieldConstraint::MinMargin { delta } => {
                assert!((delta.millivolts() - 157.5).abs() < 1e-9);
            }
            YieldConstraint::Statistical { .. } => panic!("wrong variant"),
        }
    }

    #[test]
    fn paper_hvt_snapshot_meets_delta_at_its_rails() {
        // The paper-mode snapshot is built to cross delta exactly at its
        // characterized rails, so min_margin(0) == delta.
        let cell = CellCharacterization::paper_hvt(vdd());
        let c = YieldConstraint::paper_delta(vdd());
        assert!(c.check_snapshot(&cell, Voltage::ZERO));
        // Deep negative Gnd *helps* RSNM slightly in the model, so it
        // stays feasible across the paper's V_SSC range.
        assert!(c.check_snapshot(&cell, Voltage::from_millivolts(-240.0)));
    }

    #[test]
    fn tighter_delta_fails() {
        let cell = CellCharacterization::paper_hvt(vdd());
        let c = YieldConstraint::MinMargin {
            delta: Voltage::from_millivolts(200.0),
        };
        assert!(!c.check_snapshot(&cell, Voltage::ZERO));
    }

    #[test]
    fn statistical_variant_defers_to_monte_carlo() {
        let cell = CellCharacterization::paper_hvt(vdd());
        let c = YieldConstraint::Statistical { k: 3.0 };
        assert!(!c.check_snapshot(&cell, Voltage::ZERO));
    }
}
