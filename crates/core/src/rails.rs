//! Voltage-rail policies: methods M1 and M2.
//!
//! Section 5 evaluates two assumptions about how many extra supply rails
//! (external pins or on-die DC-DC outputs) the design may use:
//!
//! * **M1** — one extra *positive* rail only. Its level must serve both
//!   the Vdd-boost and the WL-overdrive assists, so it is set to
//!   `max(V_DDC, V_WL)`; no negative rail exists, hence `V_SSC = 0`.
//! * **M2** — no restriction: `V_DDC` and `V_WL` each take their own
//!   minimum yield-meeting level and a negative `V_SSC` rail is
//!   available.

use crate::CooptError;
use sram_cell::{AssistVoltages, CellCharacterizer};
use sram_units::Voltage;

/// Rail-count policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// One extra voltage rail, set to `max(V_DDC, V_WL)`; no negative Gnd.
    M1,
    /// Unrestricted rails: independent `V_DDC`, `V_WL`, and `V_SSC`.
    M2,
}

impl core::fmt::Display for Method {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Method::M1 => f.write_str("M1"),
            Method::M2 => f.write_str("M2"),
        }
    }
}

/// The rail levels selected for one `(flavor, method)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RailSelection {
    /// Cell supply rail `V_DDC`.
    pub vddc: Voltage,
    /// Asserted wordline level `V_WL`.
    pub vwl: Voltage,
    /// Whether a negative `V_SSC` rail may be used.
    pub negative_gnd_allowed: bool,
}

impl RailSelection {
    /// Applies the policy to per-technique minimum levels
    /// (`vddc_min` from the RSNM requirement, `vwl_min` from WM).
    #[must_use]
    pub fn from_minimums(method: Method, vddc_min: Voltage, vwl_min: Voltage) -> Self {
        match method {
            Method::M1 => {
                let rail = vddc_min.max(vwl_min);
                Self {
                    vddc: rail,
                    vwl: rail,
                    negative_gnd_allowed: false,
                }
            }
            Method::M2 => Self {
                vddc: vddc_min,
                vwl: vwl_min,
                negative_gnd_allowed: true,
            },
        }
    }

    /// The paper's published minimum levels (its SPICE results):
    /// `V_DDC = 640 mV / V_WL = 490 mV` for LVT,
    /// `V_DDC = 550 mV / V_WL = 540 mV` for HVT.
    #[must_use]
    pub fn paper_minimums(flavor: sram_device::VtFlavor) -> (Voltage, Voltage) {
        match flavor {
            sram_device::VtFlavor::Lvt => (
                Voltage::from_millivolts(640.0),
                Voltage::from_millivolts(490.0),
            ),
            sram_device::VtFlavor::Hvt => (
                Voltage::from_millivolts(550.0),
                Voltage::from_millivolts(540.0),
            ),
        }
    }
}

/// Finds the minimum `V_DDC` (10 mV grid) whose read SNM meets `delta`,
/// by simulation — the Section 5 rail-minimization step.
///
/// # Errors
///
/// [`CooptError::RailSearchFailed`] when no level up to 800 mV suffices.
pub fn minimize_vddc(
    characterizer: &CellCharacterizer,
    delta: Voltage,
) -> Result<Voltage, CooptError> {
    let vdd = characterizer.vdd();
    let nominal = AssistVoltages::nominal(vdd);
    let mut mv = vdd.millivolts();
    while mv <= 800.0 {
        let vddc = Voltage::from_millivolts(mv);
        let rsnm = characterizer
            .read_snm(&nominal.with_vddc(vddc))
            .map_err(CooptError::Cell)?;
        if rsnm >= delta {
            return Ok(vddc);
        }
        mv += 10.0;
    }
    Err(CooptError::RailSearchFailed { rail: "V_DDC" })
}

/// Finds the minimum `V_WL` (10 mV grid) whose write margin meets
/// `delta`, by simulation.
///
/// # Errors
///
/// [`CooptError::RailSearchFailed`] when no level up to 800 mV suffices.
pub fn minimize_vwl(
    characterizer: &CellCharacterizer,
    delta: Voltage,
) -> Result<Voltage, CooptError> {
    let vdd = characterizer.vdd();
    let nominal = AssistVoltages::nominal(vdd);
    let mut mv = vdd.millivolts();
    while mv <= 800.0 {
        let vwl = Voltage::from_millivolts(mv);
        let wm = characterizer
            .write_margin(&nominal.with_vwl(vwl))
            .map_err(CooptError::Cell)?;
        if wm >= delta {
            return Ok(vwl);
        }
        mv += 10.0;
    }
    Err(CooptError::RailSearchFailed { rail: "V_WL" })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::VtFlavor;

    #[test]
    fn m1_takes_the_max_rail() {
        let (vddc, vwl) = RailSelection::paper_minimums(VtFlavor::Lvt);
        let sel = RailSelection::from_minimums(Method::M1, vddc, vwl);
        assert_eq!(sel.vddc.millivolts(), 640.0);
        assert_eq!(sel.vwl.millivolts(), 640.0);
        assert!(!sel.negative_gnd_allowed);
    }

    #[test]
    fn m2_keeps_independent_rails() {
        let (vddc, vwl) = RailSelection::paper_minimums(VtFlavor::Lvt);
        let sel = RailSelection::from_minimums(Method::M2, vddc, vwl);
        assert_eq!(sel.vddc.millivolts(), 640.0);
        assert_eq!(sel.vwl.millivolts(), 490.0);
        assert!(sel.negative_gnd_allowed);
    }

    #[test]
    fn hvt_m1_rail_is_550() {
        // max(550, 540) = 550: the paper's Table 4 HVT-M1 voltages.
        let (vddc, vwl) = RailSelection::paper_minimums(VtFlavor::Hvt);
        let sel = RailSelection::from_minimums(Method::M1, vddc, vwl);
        assert_eq!(sel.vddc.millivolts(), 550.0);
        assert_eq!(sel.vwl.millivolts(), 550.0);
    }

    #[test]
    fn simulated_rail_minimization_lands_near_paper() {
        use sram_cell::CellCharacterizer;
        use sram_device::DeviceLibrary;
        let lib = DeviceLibrary::sevennm();
        let delta = Voltage::from_millivolts(157.5);
        let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt).with_vtc_points(31);
        let vddc = minimize_vddc(&chr, delta).unwrap();
        let vwl = minimize_vwl(&chr, delta).unwrap();
        // Paper: 550 mV / 540 mV. Our device card lands within ~30 mV.
        assert!(
            (vddc.millivolts() - 550.0).abs() <= 40.0,
            "V_DDC min = {vddc}"
        );
        assert!((vwl.millivolts() - 540.0).abs() <= 40.0, "V_WL min = {vwl}");
    }
}
