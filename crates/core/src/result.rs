//! Optimization results: one Table-4 row.

use crate::Method;
use sram_array::{ArrayMetrics, ArrayOrganization, Capacity};
use sram_device::VtFlavor;
use sram_units::{Energy, EnergyDelay, Time, Voltage};

/// Search bookkeeping.
///
/// Invariants (maintained by [`crate::ExhaustiveSearch`], identical for
/// serial and parallel runs): `examined = feasible + infeasible` and
/// `feasible = evaluated + eval_errors`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStatistics {
    /// Candidates enumerated (the whole space).
    pub examined: usize,
    /// Candidates whose slice passed the yield constraint.
    pub feasible: usize,
    /// Candidates skipped because their slice failed the yield
    /// constraint.
    pub infeasible: usize,
    /// Feasible candidates whose array model evaluated successfully.
    pub evaluated: usize,
    /// Feasible candidates whose array model evaluation errored (the
    /// candidate is skipped, not fatal).
    pub eval_errors: usize,
}

impl SearchStatistics {
    /// Accumulates another slice's statistics into this one.
    pub fn merge(&mut self, other: &SearchStatistics) {
        self.examined += other.examined;
        self.feasible += other.feasible;
        self.infeasible += other.infeasible;
        self.evaluated += other.evaluated;
        self.eval_errors += other.eval_errors;
    }
}

/// The minimum-EDP design of one `(capacity, flavor, method)` search —
/// one row of the paper's Table 4 plus its evaluated metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalDesign {
    /// Memory capacity.
    pub capacity: Capacity,
    /// Cell flavor.
    pub flavor: VtFlavor,
    /// Rail policy.
    pub method: Method,
    /// Winning organization (`n_r`, `n_c`).
    pub organization: ArrayOrganization,
    /// Winning precharger fins `N_pre`.
    pub n_pre: u32,
    /// Winning write-buffer fins `N_wr`.
    pub n_wr: u32,
    /// Cell supply rail `V_DDC`.
    pub vddc: Voltage,
    /// Negative-Gnd level `V_SSC`.
    pub vssc: Voltage,
    /// Wordline level `V_WL`.
    pub vwl: Voltage,
    /// Evaluated metrics of the winner.
    pub metrics: ArrayMetrics,
    /// Search statistics.
    pub stats: SearchStatistics,
}

impl OptimalDesign {
    /// Array delay `D_array`.
    #[must_use]
    pub fn delay(&self) -> Time {
        self.metrics.delay
    }

    /// Array energy `E_array`.
    #[must_use]
    pub fn energy(&self) -> Energy {
        self.metrics.energy
    }

    /// Energy-delay product.
    #[must_use]
    pub fn edp(&self) -> EnergyDelay {
        self.metrics.edp()
    }

    /// Configuration label in the paper's `6T-HVT-M2` notation.
    #[must_use]
    pub fn label(&self) -> String {
        format!("6T-{}-{}", self.flavor, self.method)
    }
}

impl core::fmt::Display for OptimalDesign {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} {}: n_r={} n_c={} N_pre={} N_wr={} V_DDC={:.0} V_SSC={:.0} V_WL={:.0} | D={} E={} EDP={}",
            self.capacity,
            self.label(),
            self.organization.rows(),
            self.organization.cols(),
            self.n_pre,
            self.n_wr,
            self.vddc.millivolts(),
            self.vssc.millivolts(),
            self.vwl.millivolts(),
            self.delay(),
            self.energy(),
            self.edp(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_follows_paper_notation() {
        // Construct a minimal design via the search (cheapest path is the
        // framework; here we only exercise the label formatting).
        use sram_array::{ArrayModel, ArrayParams, Periphery};
        use sram_cell::CellCharacterization;
        use sram_device::DeviceLibrary;

        let lib = DeviceLibrary::sevennm();
        let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
        let periphery = Periphery::new(&lib);
        let params = ArrayParams::paper_defaults();
        let org = ArrayOrganization::new(128, 64, 64).unwrap();
        let metrics = ArrayModel::new(org, &cell, &periphery, &params)
            .evaluate()
            .unwrap();
        let d = OptimalDesign {
            capacity: Capacity::from_bytes(1024),
            flavor: VtFlavor::Hvt,
            method: Method::M2,
            organization: org,
            n_pre: 12,
            n_wr: 2,
            vddc: Voltage::from_millivolts(550.0),
            vssc: Voltage::from_millivolts(-240.0),
            vwl: Voltage::from_millivolts(550.0),
            metrics,
            stats: SearchStatistics::default(),
        };
        assert_eq!(d.label(), "6T-HVT-M2");
        let line = d.to_string();
        assert!(line.contains("1 KB"));
        assert!(line.contains("n_r=128"));
        assert!(line.contains("V_SSC=-240"));
    }
}
