//! The optimization design space.

use sram_units::Voltage;

/// Ranges of the four searched variables (Section 5):
/// `V_SSC ∈ {0, −10 mV, …, −240 mV}`, `n_r ∈ {2¹, …, 2¹⁰}`,
/// `N_pre ∈ {1, …, 50}`, `N_wr ∈ {1, …, 20}`.
///
/// # Examples
///
/// ```
/// use sram_coopt::DesignSpace;
///
/// let space = DesignSpace::paper_default();
/// assert_eq!(space.vssc_values().len(), 25);
/// assert_eq!(space.npre_range(), (1, 50));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    vssc_values: Vec<Voltage>,
    rows_range: (u32, u32),
    npre_range: (u32, u32),
    nwr_range: (u32, u32),
    npre_stride: u32,
    nwr_stride: u32,
}

impl DesignSpace {
    /// The paper's Section 5 ranges.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            vssc_values: (0..=24)
                .map(|k| Voltage::from_millivolts(-10.0 * f64::from(k)))
                .collect(),
            rows_range: (2, 1024),
            npre_range: (1, 50),
            nwr_range: (1, 20),
            npre_stride: 1,
            nwr_stride: 1,
        }
    }

    /// A coarse space for fast tests/smoke runs: `V_SSC` in 60 mV steps,
    /// `N_pre ∈ {1…50}` in steps of 7, `N_wr ∈ {1…20}` in steps of 5.
    #[must_use]
    pub fn coarse() -> Self {
        Self {
            vssc_values: (0..=4)
                .map(|k| Voltage::from_millivolts(-60.0 * f64::from(k)))
                .collect(),
            ..Self::paper_default()
        }
        .with_strides(7, 5)
    }

    /// Replaces the `V_SSC` candidate list.
    #[must_use]
    pub fn with_vssc_values(mut self, values: Vec<Voltage>) -> Self {
        self.vssc_values = values;
        self
    }

    /// Restricts `V_SSC` to `{0}` (the M1 policy: no negative rail).
    #[must_use]
    pub fn without_negative_gnd(mut self) -> Self {
        self.vssc_values = vec![Voltage::ZERO];
        self
    }

    /// Restricts the row range.
    #[must_use]
    pub fn with_rows_range(mut self, min: u32, max: u32) -> Self {
        self.rows_range = (min, max);
        self
    }

    /// Subsamples the fin ranges with the given strides (coarse search).
    #[must_use]
    pub fn with_strides(self, npre_stride: u32, nwr_stride: u32) -> Self {
        let mut out = self;
        out.npre_stride = npre_stride.max(1);
        out.nwr_stride = nwr_stride.max(1);
        out
    }

    /// The `V_SSC` candidates.
    #[must_use]
    pub fn vssc_values(&self) -> &[Voltage] {
        &self.vssc_values
    }

    /// Inclusive row-count range (power-of-two values within are used).
    #[must_use]
    pub fn rows_range(&self) -> (u32, u32) {
        self.rows_range
    }

    /// Inclusive `N_pre` range.
    #[must_use]
    pub fn npre_range(&self) -> (u32, u32) {
        self.npre_range
    }

    /// Inclusive `N_wr` range.
    #[must_use]
    pub fn nwr_range(&self) -> (u32, u32) {
        self.nwr_range
    }

    /// `N_pre` candidates (range with stride).
    #[must_use]
    pub fn npre_values(&self) -> Vec<u32> {
        (self.npre_range.0..=self.npre_range.1)
            .step_by(self.npre_stride as usize)
            .collect()
    }

    /// `N_wr` candidates (range with stride).
    #[must_use]
    pub fn nwr_values(&self) -> Vec<u32> {
        (self.nwr_range.0..=self.nwr_range.1)
            .step_by(self.nwr_stride as usize)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section5() {
        let s = DesignSpace::paper_default();
        assert_eq!(s.vssc_values().len(), 25);
        assert_eq!(s.vssc_values()[0], Voltage::ZERO);
        assert_eq!(
            *s.vssc_values().last().unwrap(),
            Voltage::from_millivolts(-240.0)
        );
        assert_eq!(s.rows_range(), (2, 1024));
        assert_eq!(s.npre_values().len(), 50);
        assert_eq!(s.nwr_values().len(), 20);
    }

    #[test]
    fn m1_restriction_removes_negative_rail() {
        let s = DesignSpace::paper_default().without_negative_gnd();
        assert_eq!(s.vssc_values(), &[Voltage::ZERO]);
    }

    #[test]
    fn strides_subsample() {
        let s = DesignSpace::paper_default().with_strides(10, 5);
        assert_eq!(s.npre_values(), vec![1, 11, 21, 31, 41]);
        assert_eq!(s.nwr_values(), vec![1, 6, 11, 16]);
    }
}
