//! Report formatting: Table-4-style text tables and CSV emission.

use crate::OptimalDesign;

/// Formats optimization results as the paper's Table 4 (design parameters
/// of the minimum-EDP point, voltages in mV).
#[must_use]
pub fn format_table4(designs: &[OptimalDesign]) -> String {
    let mut out = String::new();
    out.push_str("| M     | SRAM       | n_r  | n_c  | N_pre | N_wr | V_DDC | V_SSC | V_WL |\n");
    out.push_str("|-------|------------|------|------|-------|------|-------|-------|------|\n");
    for d in designs {
        out.push_str(&format!(
            "| {:<5} | {:<10} | {:>4} | {:>4} | {:>5} | {:>4} | {:>5.0} | {:>5.0} | {:>4.0} |\n",
            d.capacity.to_string(),
            d.label(),
            d.organization.rows(),
            d.organization.cols(),
            d.n_pre,
            d.n_wr,
            d.vddc.millivolts(),
            d.vssc.millivolts(),
            d.vwl.millivolts(),
        ));
    }
    out
}

/// Emits results as CSV with delay/energy/EDP columns (for plotting the
/// Fig. 7 series).
#[must_use]
pub fn csv_table(designs: &[OptimalDesign]) -> String {
    let mut out = String::from(
        "capacity_bytes,config,n_r,n_c,n_pre,n_wr,vddc_mv,vssc_mv,vwl_mv,delay_ps,energy_fj,edp_fj_ps\n",
    );
    for d in designs {
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.0},{:.0},{:.0},{:.4},{:.4},{:.4}\n",
            d.capacity.bytes(),
            d.label(),
            d.organization.rows(),
            d.organization.cols(),
            d.n_pre,
            d.n_wr,
            d.vddc.millivolts(),
            d.vssc.millivolts(),
            d.vwl.millivolts(),
            d.delay().picoseconds(),
            d.energy().femtojoules(),
            d.edp().joule_seconds() * 1e27,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoOptimizationFramework, DesignSpace, Method};
    use sram_array::Capacity;
    use sram_device::VtFlavor;

    fn sample() -> Vec<OptimalDesign> {
        let mut fw = CoOptimizationFramework::paper_mode().with_space(DesignSpace::coarse());
        vec![
            fw.optimize(Capacity::from_bytes(1024), VtFlavor::Hvt, Method::M1)
                .unwrap(),
            fw.optimize(Capacity::from_bytes(1024), VtFlavor::Hvt, Method::M2)
                .unwrap(),
        ]
    }

    #[test]
    fn table4_layout() {
        let text = format_table4(&sample());
        assert!(text.contains("6T-HVT-M1"));
        assert!(text.contains("6T-HVT-M2"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = csv_table(&sample());
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("capacity_bytes,"));
        assert_eq!(lines.count(), 2);
        assert!(csv.contains("1024,6T-HVT-M2"));
    }
}
