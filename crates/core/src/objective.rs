//! Optimization objectives.
//!
//! The paper minimizes the energy-delay product; alternative objectives
//! are provided for the ablation benches (what changes when the target is
//! ED²P or delay under an energy cap is a natural reviewer question).

use sram_array::ArrayMetrics;

/// Scores a design point; lower is better.
///
/// NaN policy: the search treats any non-finite score as an evaluation
/// error — the candidate is dropped and counted in
/// [`crate::SearchStatistics::eval_errors`], never compared against the
/// incumbent. Objectives are free to return NaN/±∞ for degenerate
/// metrics (e.g. [`WeightedEnergyDelay`] takes logarithms) without
/// corrupting the search.
pub trait Objective {
    /// Scalar score of the metrics (lower wins).
    fn score(&self, metrics: &ArrayMetrics) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// `E × D` — the paper's objective.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyDelayProduct;

impl Objective for EnergyDelayProduct {
    fn score(&self, metrics: &ArrayMetrics) -> f64 {
        metrics.edp().joule_seconds()
    }

    fn name(&self) -> &'static str {
        "energy-delay product"
    }
}

/// `E × D²` — weights performance more heavily.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyDelaySquared;

impl Objective for EnergyDelaySquared {
    fn score(&self, metrics: &ArrayMetrics) -> f64 {
        metrics.energy.joules() * metrics.delay.seconds().powi(2)
    }

    fn name(&self) -> &'static str {
        "energy-delay-squared product"
    }
}

/// Pure delay minimization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DelayOnly;

impl Objective for DelayOnly {
    fn score(&self, metrics: &ArrayMetrics) -> f64 {
        metrics.delay.seconds()
    }

    fn name(&self) -> &'static str {
        "delay"
    }
}

/// Pure energy minimization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyOnly;

impl Objective for EnergyOnly {
    fn score(&self, metrics: &ArrayMetrics) -> f64 {
        metrics.energy.joules()
    }

    fn name(&self) -> &'static str {
        "energy"
    }
}

/// Log-domain weighted blend: `w·ln E + (1−w)·ln D`; `w = 0.5` ranks
/// identically to EDP.
///
/// Zero or negative energy/delay (a broken model fit) makes the
/// logarithms non-finite; the search's NaN policy then rejects the
/// candidate rather than letting `-∞` win the minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedEnergyDelay {
    /// Energy weight in `[0, 1]`.
    pub energy_weight: f64,
}

impl Objective for WeightedEnergyDelay {
    fn score(&self, metrics: &ArrayMetrics) -> f64 {
        let w = self.energy_weight.clamp(0.0, 1.0);
        w * metrics.energy.joules().ln() + (1.0 - w) * metrics.delay.seconds().ln()
    }

    fn name(&self) -> &'static str {
        "weighted energy-delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_array::{ArrayModel, ArrayOrganization, ArrayParams, Periphery};
    use sram_cell::CellCharacterization;
    use sram_device::DeviceLibrary;

    fn metrics(rows: u32, cols: u32) -> ArrayMetrics {
        let lib = DeviceLibrary::sevennm();
        let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
        let periphery = Periphery::new(&lib);
        let params = ArrayParams::paper_defaults();
        ArrayModel::new(
            ArrayOrganization::new(rows, cols, 64).unwrap(),
            &cell,
            &periphery,
            &params,
        )
        .with_precharge_fins(10)
        .evaluate()
        .unwrap()
    }

    #[test]
    fn edp_score_equals_metrics_edp() {
        let m = metrics(128, 64);
        assert_eq!(EnergyDelayProduct.score(&m), m.edp().joule_seconds());
    }

    #[test]
    fn ed2p_punishes_delay_harder() {
        let fast = metrics(64, 128);
        let slow = metrics(1024, 64);
        // The slower design loses more ground under ED2P than under EDP.
        let edp_ratio = EnergyDelayProduct.score(&slow) / EnergyDelayProduct.score(&fast);
        let ed2p_ratio = EnergyDelaySquared.score(&slow) / EnergyDelaySquared.score(&fast);
        if slow.delay > fast.delay {
            assert!(ed2p_ratio > edp_ratio);
        }
    }

    #[test]
    fn weighted_half_ranks_like_edp() {
        let a = metrics(64, 128);
        let b = metrics(512, 64);
        let w = WeightedEnergyDelay { energy_weight: 0.5 };
        let edp_order = EnergyDelayProduct.score(&a) < EnergyDelayProduct.score(&b);
        let w_order = w.score(&a) < w.score(&b);
        assert_eq!(edp_order, w_order);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EnergyDelayProduct.name(), "energy-delay product");
        assert_eq!(DelayOnly.name(), "delay");
        assert_eq!(EnergyOnly.name(), "energy");
    }
}
