//! Transient-analysis integration tests against analytic references.

use sram_spice::{Circuit, CrossingEdge, Transient, Waveform};
use sram_units::{Current, Time, Voltage};

#[test]
fn capacitive_divider_splits_a_step() {
    // Vstep -> C1 -> node -> C2 -> gnd: the node jumps by C1/(C1+C2) of
    // the step (pure charge sharing, no resistive path).
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let mid = ckt.node("mid");
    ckt.vsource(
        "V",
        a,
        Circuit::GROUND,
        Waveform::step(
            Voltage::ZERO,
            Voltage::from_volts(1.0),
            Time::from_picoseconds(1.0),
            Time::from_picoseconds(1.0),
        ),
    );
    ckt.capacitor("C1", a, mid, 3e-15);
    ckt.capacitor("C2", mid, Circuit::GROUND, 1e-15);
    // A weak bleeder keeps the DC matrix non-singular without disturbing
    // the ps-scale dynamics (tau = 1 Gohm * 4 fF = 4 ms).
    ckt.resistor("Rbleed", mid, Circuit::GROUND, 1e9);

    let trace = Transient::new(Time::from_picoseconds(6.0), Time::from_picoseconds(0.1))
        .run(&ckt)
        .unwrap()
        .into_trace();
    let v_mid = trace.final_voltage(mid).volts();
    assert!((v_mid - 0.75).abs() < 0.02, "divider landed at {v_mid}");
}

#[test]
fn current_source_develops_ir_drop_and_holds_it_in_transient() {
    // 1 uA through 100 kOhm: V = 0.1 V, held flat through a transient
    // (the capacitor starts at the DC operating point).
    let mut ckt = Circuit::new();
    let n = ckt.node("n");
    ckt.isource("I", Circuit::GROUND, n, Current::from_microamps(1.0));
    ckt.resistor("R", n, Circuit::GROUND, 1e5);
    ckt.capacitor("C", n, Circuit::GROUND, 1e-15);

    let trace = Transient::new(Time::from_picoseconds(5.0), Time::from_femtoseconds(100.0))
        .run(&ckt)
        .unwrap()
        .into_trace();
    for (t, v) in trace.samples(n) {
        assert!((v.volts() - 0.1).abs() < 1e-4, "node drifted to {v} at {t}");
    }
}

#[test]
fn pwl_source_tracks_its_breakpoints() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.vsource(
        "V",
        a,
        Circuit::GROUND,
        Waveform::pwl([
            (Time::ZERO, Voltage::ZERO),
            (Time::from_picoseconds(2.0), Voltage::from_volts(0.45)),
            (Time::from_picoseconds(4.0), Voltage::from_volts(0.45)),
            (Time::from_picoseconds(6.0), Voltage::from_volts(0.1)),
        ]),
    );
    ckt.resistor("R", a, Circuit::GROUND, 1e3);
    let trace = Transient::new(Time::from_picoseconds(8.0), Time::from_picoseconds(0.1))
        .run(&ckt)
        .unwrap()
        .into_trace();
    assert!((trace.voltage_at(a, Time::from_picoseconds(1.0)).volts() - 0.225).abs() < 0.01);
    assert!((trace.voltage_at(a, Time::from_picoseconds(3.0)).volts() - 0.45).abs() < 0.01);
    assert!((trace.final_voltage(a).volts() - 0.1).abs() < 0.01);
}

#[test]
fn two_stage_rc_delays_accumulate() {
    // Two cascaded RC stages: the 50% point of the second stage lags the
    // first (Elmore-ordered).
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let m = ckt.node("m");
    let o = ckt.node("o");
    ckt.vsource(
        "V",
        a,
        Circuit::GROUND,
        Waveform::step(
            Voltage::ZERO,
            Voltage::from_volts(1.0),
            Time::from_femtoseconds(1.0),
            Time::from_femtoseconds(1.0),
        ),
    );
    ckt.resistor("R1", a, m, 1e3);
    ckt.capacitor("C1", m, Circuit::GROUND, 1e-15);
    ckt.resistor("R2", m, o, 1e3);
    ckt.capacitor("C2", o, Circuit::GROUND, 1e-15);
    let trace = Transient::new(Time::from_picoseconds(15.0), Time::from_femtoseconds(50.0))
        .run(&ckt)
        .unwrap()
        .into_trace();
    let half = Voltage::from_volts(0.5);
    let t_m = trace
        .crossing(m, half, CrossingEdge::Rising, Time::ZERO)
        .unwrap();
    let t_o = trace
        .crossing(o, half, CrossingEdge::Rising, Time::ZERO)
        .unwrap();
    assert!(t_o > t_m, "second stage must lag: {t_m} vs {t_o}");
    // Elmore for the second node: R1*(C1+C2) + R2*C2 = 3 ps; 50% point of
    // a cascade is ~0.7-1.2x Elmore.
    assert!(
        t_o.picoseconds() > 1.5 && t_o.picoseconds() < 4.5,
        "t50(o) = {t_o}"
    );
    // Energy bookkeeping: the source delivered the charge of both caps.
    let q = trace.delivered_charge(0);
    assert!((q + 2e-15).abs() < 2e-16, "delivered charge = {q}");
}

#[test]
fn tight_dv_limit_still_completes() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let o = ckt.node("o");
    ckt.vsource(
        "V",
        a,
        Circuit::GROUND,
        Waveform::step(
            Voltage::ZERO,
            Voltage::from_volts(0.45),
            Time::from_picoseconds(1.0),
            Time::from_picoseconds(0.2),
        ),
    );
    ckt.resistor("R", a, o, 1e4);
    ckt.capacitor("C", o, Circuit::GROUND, 1e-15);
    let trace = Transient::new(Time::from_picoseconds(60.0), Time::from_picoseconds(1.0))
        .with_max_dv_per_step(0.002) // forces hundreds of accepted steps
        .run(&ckt)
        .unwrap()
        .into_trace();
    assert!(trace.len() > 200, "only {} samples", trace.len());
    assert!((trace.final_voltage(o).volts() - 0.45).abs() < 5e-3);
}

#[test]
fn rc_charge_energy_conservation() {
    // Charging C through R from a step source: the source delivers
    // Q*V = C*V^2; exactly half ends up stored, half burns in R --
    // independent of R. Checks delivered_energy against physics.
    for r in [1e2, 1e3, 1e4] {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let o = ckt.node("o");
        ckt.vsource(
            "V",
            a,
            Circuit::GROUND,
            Waveform::step(
                Voltage::ZERO,
                Voltage::from_volts(1.0),
                Time::from_femtoseconds(1.0),
                Time::from_femtoseconds(1.0),
            ),
        );
        ckt.resistor("R", a, o, r);
        ckt.capacitor("C", o, Circuit::GROUND, 1e-15);
        // Run long enough to fully settle (10 tau for the largest R).
        let t_stop = Time::from_seconds(10.0 * r * 1e-15);
        let trace = Transient::new(t_stop, t_stop / 300.0)
            .with_max_dv_per_step(0.02)
            .run(&ckt)
            .unwrap()
            .into_trace();
        assert!((trace.final_voltage(o).volts() - 1.0).abs() < 2e-3);
        let delivered = trace.delivered_energy(0, |_| Voltage::from_volts(1.0));
        // C*V^2 = 1e-15 J.
        assert!(
            (delivered.joules() - 1e-15).abs() < 3e-17,
            "R = {r}: delivered {delivered} != C*V^2"
        );
    }
}
