//! Property tests: the DC solver satisfies physical conservation laws on
//! randomly generated circuits.

use proptest::prelude::*;
use sram_spice::{Circuit, DcSolver, Waveform};
use sram_units::Voltage;

/// A random resistive ladder: Vsrc -> R -> node1 -> R -> node2 ... with
/// random rungs to ground.
fn ladder(resistances: &[f64], rungs: &[f64], vin: f64) -> (Circuit, Vec<sram_spice::NodeId>) {
    let mut ckt = Circuit::new();
    let top = ckt.node("in");
    ckt.vsource("Vin", top, Circuit::GROUND, Waveform::Dc(vin));
    let mut nodes = vec![top];
    let mut prev = top;
    for (k, (&r, &g)) in resistances.iter().zip(rungs).enumerate() {
        let n = ckt.node(&format!("n{k}"));
        ckt.resistor(&format!("Rs{k}"), prev, n, r);
        ckt.resistor(&format!("Rg{k}"), n, Circuit::GROUND, g);
        nodes.push(n);
        prev = n;
    }
    (ckt, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every ladder node voltage lies between ground and the source
    /// (passive network: no voltage can exceed the rails).
    #[test]
    fn ladder_voltages_bounded(
        rs in proptest::collection::vec(1.0f64..1e6, 1..8),
        gs in proptest::collection::vec(1.0f64..1e6, 8),
        vin in 0.01f64..10.0,
    ) {
        let n = rs.len();
        let (ckt, nodes) = ladder(&rs, &gs[..n], vin);
        let sol = DcSolver::new().solve(&ckt).unwrap();
        for &node in &nodes {
            let v = sol.voltage(node).volts();
            prop_assert!(v >= -1e-6 && v <= vin + 1e-6, "v = {v}");
        }
        // Monotone decay along the ladder.
        for w in nodes.windows(2) {
            prop_assert!(sol.voltage(w[1]) <= sol.voltage(w[0]) + Voltage::from_microvolts(1.0));
        }
    }

    /// KCL at the source: the branch current equals the current into the
    /// first series resistor (energy conservation at the boundary).
    #[test]
    fn source_current_matches_first_resistor(
        rs in proptest::collection::vec(10.0f64..1e5, 2..6),
        gs in proptest::collection::vec(10.0f64..1e5, 6),
        vin in 0.1f64..5.0,
    ) {
        let n = rs.len();
        let (ckt, nodes) = ladder(&rs, &gs[..n], vin);
        let sol = DcSolver::new().solve(&ckt).unwrap();
        let i_src = -sol.source_current(&ckt, "Vin").unwrap().amps();
        let i_r0 = (vin - sol.voltage(nodes[1]).volts()) / rs[0];
        prop_assert!(
            (i_src - i_r0).abs() <= 1e-9 * i_r0.abs().max(1e-12) + 1e-9,
            "src {i_src} vs R0 {i_r0}"
        );
    }

    /// Superposition: scaling the only source scales every node voltage
    /// linearly (the resistive network is linear).
    #[test]
    fn linear_network_superposition(
        rs in proptest::collection::vec(10.0f64..1e5, 1..6),
        gs in proptest::collection::vec(10.0f64..1e5, 6),
        vin in 0.1f64..5.0,
        scale in 0.1f64..3.0,
    ) {
        let n = rs.len();
        let (mut ckt, nodes) = ladder(&rs, &gs[..n], vin);
        let sol1 = DcSolver::new().solve(&ckt).unwrap();
        ckt.set_source_voltage("Vin", Voltage::from_volts(vin * scale)).unwrap();
        let sol2 = DcSolver::new().solve(&ckt).unwrap();
        for &node in &nodes {
            let v1 = sol1.voltage(node).volts();
            let v2 = sol2.voltage(node).volts();
            prop_assert!((v2 - v1 * scale).abs() <= 1e-7 * (v1.abs() + 1.0));
        }
    }

    /// Warm starting from an unrelated prior solution converges to the
    /// same operating point (solver is guess-independent on these
    /// unimodal circuits).
    #[test]
    fn warm_start_is_guess_independent(
        rs in proptest::collection::vec(10.0f64..1e5, 1..5),
        gs in proptest::collection::vec(10.0f64..1e5, 5),
        vin in 0.1f64..5.0,
        junk in -2.0f64..2.0,
    ) {
        let n = rs.len();
        let (ckt, nodes) = ladder(&rs, &gs[..n], vin);
        let cold = DcSolver::new().solve(&ckt).unwrap();
        let guess = vec![junk; ckt.unknown_count()];
        let warm = DcSolver::new().solve_with_guess(&ckt, &guess).unwrap();
        for &node in &nodes {
            prop_assert!(
                (cold.voltage(node).volts() - warm.voltage(node).volts()).abs() < 1e-7
            );
        }
    }
}
