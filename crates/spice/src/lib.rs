//! A small SPICE-like circuit simulator for SRAM characterization.
//!
//! The paper measures noise margins, write margins, read currents, cell
//! write delays, and peripheral-circuit delays/energies "by SPICE
//! simulations". No circuit-simulation ecosystem exists in Rust, so this
//! crate implements the required subset from scratch:
//!
//! * **Netlists** ([`Circuit`]) of resistors, capacitors, independent
//!   voltage/current sources (DC, pulse, PWL waveforms), and FinFETs from
//!   [`sram_device`];
//! * **Modified nodal analysis** with voltage-source branch currents as
//!   extra unknowns, dense LU factorization (circuits here are tiny —
//!   a 6T cell plus periphery is ~15 unknowns);
//! * **Nonlinear DC operating point** via Newton-Raphson with `gmin` and
//!   source-stepping homotopies for robustness on bistable cells;
//! * **DC sweeps** with warm starting (butterfly curves, I-V extraction);
//! * **Transient analysis** (backward-Euler startup, trapezoidal steps,
//!   Newton inner loop, step-halving on non-convergence) with
//!   [`measure::Trace`] post-processing for delay measurements.
//!
//! # Examples
//!
//! A resistive divider:
//!
//! ```
//! use sram_spice::{Circuit, DcSolver, Waveform};
//! use sram_units::Voltage;
//!
//! # fn main() -> Result<(), sram_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let mid = ckt.node("mid");
//! ckt.vsource("V1", vin, Circuit::GROUND, Waveform::dc(Voltage::from_volts(1.0)));
//! ckt.resistor("R1", vin, mid, 1.0e3);
//! ckt.resistor("R2", mid, Circuit::GROUND, 3.0e3);
//!
//! let solution = DcSolver::new().solve(&ckt)?;
//! assert!((solution.voltage(mid).volts() - 0.75).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod dc;
mod elements;
mod error;
mod export;
mod linalg;
pub mod measure;
mod mna;
mod sweep;
mod transient;
mod vcd;

pub use circuit::{Circuit, ElementId, NodeId};
pub use dc::{DcSolution, DcSolver};
pub use elements::{Element, Waveform};
pub use error::SpiceError;
pub use export::netlist_to_spice;
pub use measure::{CrossingEdge, Trace};
pub use sweep::{DcSweep, SweepPoint};
pub use transient::{Transient, TransientResult};
pub use vcd::trace_to_vcd;
