//! Circuit elements and source waveforms.

use crate::NodeId;
use sram_device::FinFet;
use sram_units::{Current, Time, Voltage};

/// Time-dependent value of an independent voltage source.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Single pulse (or periodic if `period` is set): `v0` until `delay`,
    /// linear rise to `v1` over `rise`, hold for `width`, linear fall over
    /// `fall`, back to `v0`.
    Pulse {
        /// Initial level in volts.
        v0: f64,
        /// Pulsed level in volts.
        v1: f64,
        /// Delay before the rising edge, in seconds.
        delay: f64,
        /// Rise time in seconds.
        rise: f64,
        /// Fall time in seconds.
        fall: f64,
        /// Pulse width (time at `v1`) in seconds.
        width: f64,
    },
    /// Piece-wise linear waveform: `(time_seconds, volts)` breakpoints in
    /// ascending time order; the value is held constant outside the range.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Constant waveform at `v`.
    #[must_use]
    pub fn dc(v: Voltage) -> Self {
        Waveform::Dc(v.volts())
    }

    /// Single rising step from `v0` to `v1` at `delay` with the given rise
    /// time — the workhorse stimulus for wordline/bitline events.
    #[must_use]
    pub fn step(v0: Voltage, v1: Voltage, delay: Time, rise: Time) -> Self {
        Waveform::Pulse {
            v0: v0.volts(),
            v1: v1.volts(),
            delay: delay.seconds(),
            rise: rise.seconds().max(1e-15),
            fall: rise.seconds().max(1e-15),
            width: f64::INFINITY,
        }
    }

    /// Piece-wise linear waveform from `(time, voltage)` breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if breakpoints are not in ascending time order.
    #[must_use]
    pub fn pwl<I: IntoIterator<Item = (Time, Voltage)>>(points: I) -> Self {
        let pts: Vec<(f64, f64)> = points
            .into_iter()
            .map(|(t, v)| (t.seconds(), v.volts()))
            .collect();
        assert!(
            pts.windows(2).all(|w| w[0].0 <= w[1].0),
            "PWL breakpoints must be in ascending time order"
        );
        Waveform::Pwl(pts)
    }

    /// Value of the waveform at simulation time `t` (seconds).
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
            } => {
                if t < *delay {
                    *v0
                } else if t < delay + rise {
                    v0 + (v1 - v0) * (t - delay) / rise
                } else if t < delay + rise + width {
                    *v1
                } else if t < delay + rise + width + fall {
                    v1 + (v0 - v1) * (t - delay - rise - width) / fall
                } else {
                    *v0
                }
            }
            Waveform::Pwl(points) => match points {
                p if p.is_empty() => 0.0,
                p => {
                    if t <= p[0].0 {
                        return p[0].1;
                    }
                    if t >= p[p.len() - 1].0 {
                        return p[p.len() - 1].1;
                    }
                    let idx = p.partition_point(|&(pt, _)| pt <= t);
                    let (t0, v0) = p[idx - 1];
                    let (t1, v1) = p[idx];
                    if t1 == t0 {
                        v1
                    } else {
                        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                    }
                }
            },
        }
    }

    /// Value used for DC operating-point analysis (the `t = 0` value).
    #[must_use]
    pub fn dc_value(&self) -> f64 {
        self.value_at(0.0)
    }
}

/// One circuit element.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Element {
    /// Linear resistor.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Linear capacitor.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Independent voltage source (adds one branch-current unknown).
    VoltageSource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source waveform.
        waveform: Waveform,
    },
    /// Independent current source pushing `amps` from `from` into `to`.
    CurrentSource {
        /// Terminal the current is drawn from.
        from: NodeId,
        /// Terminal the current is pushed into.
        to: NodeId,
        /// Current magnitude.
        amps: Current,
    },
    /// A FinFET from the device layer (gate draws no DC current).
    Fet {
        /// Gate terminal.
        gate: NodeId,
        /// Drain terminal.
        drain: NodeId,
        /// Source terminal.
        source: NodeId,
        /// Device instance (polarity, flavor, fins, Vt shift).
        device: FinFet,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_waveform_is_flat() {
        let w = Waveform::dc(Voltage::from_volts(0.45));
        assert_eq!(w.value_at(0.0), 0.45);
        assert_eq!(w.value_at(1.0), 0.45);
        assert_eq!(w.dc_value(), 0.45);
    }

    #[test]
    fn step_ramps_linearly() {
        let w = Waveform::step(
            Voltage::ZERO,
            Voltage::from_volts(1.0),
            Time::from_picoseconds(10.0),
            Time::from_picoseconds(2.0),
        );
        assert_eq!(w.value_at(0.0), 0.0);
        assert!((w.value_at(11e-12) - 0.5).abs() < 1e-9);
        assert_eq!(w.value_at(20e-12), 1.0);
        assert_eq!(w.value_at(1.0), 1.0); // infinite width: stays high
    }

    #[test]
    fn pulse_returns_to_v0() {
        let w = Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 1e-9,
        };
        assert_eq!(w.value_at(0.5e-9), 0.0);
        assert_eq!(w.value_at(1.5e-9), 1.0);
        assert_eq!(w.value_at(3e-9), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::pwl([
            (Time::from_picoseconds(0.0), Voltage::ZERO),
            (Time::from_picoseconds(10.0), Voltage::from_volts(1.0)),
        ]);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert!((w.value_at(5e-12) - 0.5).abs() < 1e-9);
        assert_eq!(w.value_at(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn pwl_rejects_unordered_points() {
        let _ = Waveform::pwl([
            (Time::from_picoseconds(10.0), Voltage::ZERO),
            (Time::from_picoseconds(0.0), Voltage::ZERO),
        ]);
    }

    #[test]
    fn empty_pwl_is_zero() {
        assert_eq!(Waveform::Pwl(Vec::new()).value_at(1.0), 0.0);
    }
}
