//! SPICE-netlist export.
//!
//! Dumps a [`Circuit`] in SPICE-deck syntax so characterization netlists
//! can be inspected, diffed, or re-run in an external simulator.
//! FinFETs are emitted as `M…` cards with a comment carrying the compact
//! model card (polarity/flavor/fins/Vt), since the analytic model has no
//! `.model` equivalent.

use crate::{Circuit, Element, Waveform};
use core::fmt::Write as _;

/// Renders the circuit as a SPICE deck.
///
/// # Examples
///
/// ```
/// use sram_spice::{netlist_to_spice, Circuit, Waveform};
/// use sram_units::Voltage;
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.vsource("V1", a, Circuit::GROUND, Waveform::dc(Voltage::from_volts(0.45)));
/// ckt.resistor("R1", a, Circuit::GROUND, 1e3);
/// let deck = netlist_to_spice(&ckt, "divider");
/// assert!(deck.contains("V1 a 0 DC 0.45"));
/// assert!(deck.ends_with(".end\n"));
/// ```
#[must_use]
pub fn netlist_to_spice(circuit: &Circuit, title: &str) -> String {
    let mut out = format!("* {title}\n");
    let node = |n: crate::NodeId| circuit.node_name(n).to_owned();
    for (name, element) in circuit.elements() {
        match element {
            Element::Resistor { a, b, ohms } => {
                let _ = writeln!(out, "{name} {} {} {ohms:.6e}", node(*a), node(*b));
            }
            Element::Capacitor { a, b, farads } => {
                let _ = writeln!(out, "{name} {} {} {farads:.6e}", node(*a), node(*b));
            }
            Element::VoltageSource { pos, neg, waveform } => {
                let value = waveform_to_spice(waveform);
                let _ = writeln!(out, "{name} {} {} {value}", node(*pos), node(*neg));
            }
            Element::CurrentSource { from, to, amps } => {
                let _ = writeln!(
                    out,
                    "{name} {} {} DC {:.6e}",
                    node(*from),
                    node(*to),
                    amps.amps()
                );
            }
            Element::Fet {
                gate,
                drain,
                source,
                device,
            } => {
                let model = match device.polarity() {
                    sram_device::Polarity::N => "nfin",
                    sram_device::Polarity::P => "pfin",
                };
                let _ = writeln!(
                    out,
                    "{name} {} {} {} {} {model} * {} {} fins={} vt={:.0}mV",
                    node(*drain),
                    node(*gate),
                    node(*source),
                    node(*source), // bulk tied to source (FinFET body)
                    device.polarity(),
                    device.params().flavor,
                    device.fins(),
                    device.params().vt.millivolts(),
                );
            }
        }
    }
    out.push_str(".end\n");
    out
}

fn waveform_to_spice(waveform: &Waveform) -> String {
    match waveform {
        Waveform::Dc(v) => format!("DC {v}"),
        Waveform::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
        } => format!("PULSE({v0} {v1} {delay:.4e} {rise:.4e} {fall:.4e} {width:.4e})"),
        Waveform::Pwl(points) => {
            let mut s = String::from("PWL(");
            for (k, (t, v)) in points.iter().enumerate() {
                if k > 0 {
                    s.push(' ');
                }
                let _ = write!(s, "{t:.4e} {v}");
            }
            s.push(')');
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::{DeviceLibrary, FinFet, VtFlavor};
    use sram_units::{Time, Voltage};

    #[test]
    fn exports_all_element_kinds() {
        let lib = DeviceLibrary::sevennm();
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(
            "Vin",
            a,
            Circuit::GROUND,
            Waveform::step(
                Voltage::ZERO,
                Voltage::from_volts(0.45),
                Time::from_picoseconds(1.0),
                Time::from_picoseconds(0.5),
            ),
        );
        ckt.resistor("R1", a, b, 1234.0);
        ckt.capacitor("C1", b, Circuit::GROUND, 2e-15);
        ckt.isource("I1", a, b, sram_units::Current::from_microamps(1.0));
        ckt.fet(
            "MN1",
            a,
            b,
            Circuit::GROUND,
            FinFet::new(lib.nfet(VtFlavor::Hvt).clone(), 3),
        );
        let deck = netlist_to_spice(&ckt, "kinds");
        assert!(deck.starts_with("* kinds\n"));
        assert!(deck.contains("Vin a 0 PULSE(0 0.45"));
        assert!(deck.contains("R1 a b 1.234000e3"));
        assert!(deck.contains("C1 b 0 2.000000e-15"));
        assert!(deck.contains("I1 a b DC 1.000000e-6"));
        assert!(deck.contains("MN1 b a 0 0 nfin"));
        assert!(deck.contains("fins=3"));
        assert!(deck.ends_with(".end\n"));
    }

    #[test]
    fn pwl_waveform_renders() {
        let w = Waveform::pwl([
            (Time::ZERO, Voltage::ZERO),
            (Time::from_picoseconds(5.0), Voltage::from_volts(0.45)),
        ]);
        let s = waveform_to_spice(&w);
        assert!(s.starts_with("PWL(0.0000e0 0"));
        assert!(s.contains("0.45"));
    }

    #[test]
    fn pfet_model_name_differs() {
        let lib = DeviceLibrary::sevennm();
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V", a, Circuit::GROUND, Waveform::Dc(0.45));
        ckt.fet(
            "MP1",
            a,
            Circuit::GROUND,
            a,
            FinFet::new(lib.pfet(VtFlavor::Lvt).clone(), 2),
        );
        let deck = netlist_to_spice(&ckt, "p");
        assert!(deck.contains("pfin"));
        assert!(deck.contains("LVT"));
    }
}
