//! Simulator error type.

use core::fmt;

/// Errors produced by netlist construction and analyses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// The MNA matrix was singular (floating node, voltage-source loop, …).
    SingularMatrix,
    /// Newton-Raphson failed to converge within the iteration budget, even
    /// after homotopy fallbacks.
    NonConvergent {
        /// Analysis that failed (`"dc"`, `"transient"`, …).
        analysis: &'static str,
        /// Iterations spent before giving up.
        iterations: usize,
    },
    /// A referenced node does not belong to the circuit.
    UnknownNode,
    /// A referenced element name does not exist.
    UnknownElement(String),
    /// The netlist is structurally invalid.
    InvalidNetlist(String),
    /// Transient step control shrank the timestep below the resolvable
    /// minimum without achieving convergence.
    TimestepTooSmall {
        /// Simulation time at which the failure occurred, in seconds.
        at_seconds: f64,
    },
    /// An analysis was configured with an invalid parameter.
    InvalidAnalysis(String),
}

impl SpiceError {
    /// Whether retrying the same analysis could plausibly succeed.
    /// Non-convergence is iteration-budget- and operating-point-sensitive
    /// (and is what fault injection simulates); structural errors are not.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SpiceError::NonConvergent { .. } | SpiceError::TimestepTooSmall { .. }
        )
    }
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::SingularMatrix => {
                write!(f, "singular MNA matrix (floating node or source loop)")
            }
            SpiceError::NonConvergent {
                analysis,
                iterations,
            } => write!(
                f,
                "{analysis} analysis failed to converge after {iterations} iterations"
            ),
            SpiceError::UnknownNode => write!(f, "node does not belong to this circuit"),
            SpiceError::UnknownElement(name) => write!(f, "unknown element `{name}`"),
            SpiceError::InvalidNetlist(msg) => write!(f, "invalid netlist: {msg}"),
            SpiceError::TimestepTooSmall { at_seconds } => {
                write!(f, "timestep underflow at t = {at_seconds:.3e} s")
            }
            SpiceError::InvalidAnalysis(msg) => write!(f, "invalid analysis setup: {msg}"),
        }
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SpiceError::NonConvergent {
            analysis: "dc",
            iterations: 200,
        };
        assert!(e.to_string().contains("200"));
        assert!(SpiceError::UnknownElement("Vdd".into())
            .to_string()
            .contains("Vdd"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: Send + Sync + std::error::Error + 'static>() {}
        check::<SpiceError>();
    }
}
