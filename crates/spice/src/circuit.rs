//! Netlist container.

use crate::{Element, SpiceError, Waveform};
use sram_device::FinFet;
use sram_units::{Current, Voltage};
use std::collections::HashMap;

/// Handle to a circuit node.
///
/// `NodeId`s are only meaningful for the [`Circuit`] that created them;
/// node 0 is always ground ([`Circuit::GROUND`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// Handle to an element within a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct NamedElement {
    pub(crate) name: String,
    pub(crate) element: Element,
}

/// A netlist: named nodes plus elements.
///
/// # Examples
///
/// An NFET pulling a capacitive load low:
///
/// ```
/// use sram_device::{DeviceLibrary, FinFet, VtFlavor};
/// use sram_spice::{Circuit, Waveform};
/// use sram_units::Voltage;
///
/// let lib = DeviceLibrary::sevennm();
/// let mut ckt = Circuit::new();
/// let gate = ckt.node("g");
/// let out = ckt.node("out");
/// ckt.vsource("Vg", gate, Circuit::GROUND, Waveform::dc(Voltage::from_volts(0.45)));
/// ckt.capacitor("Cload", out, Circuit::GROUND, 1e-15);
/// ckt.fet(
///     "MN1",
///     gate,
///     out,
///     Circuit::GROUND,
///     FinFet::new(lib.nfet(VtFlavor::Lvt).clone(), 1),
/// );
/// assert_eq!(ckt.node_count(), 3); // ground + g + out
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_index: HashMap<String, usize>,
    pub(crate) elements: Vec<NamedElement>,
    /// Indices (into `elements`) of voltage sources, in branch order.
    pub(crate) vsource_elements: Vec<usize>,
    vsource_index: HashMap<String, usize>,
}

impl Circuit {
    /// The ground node, shared by every circuit.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    #[must_use]
    pub fn new() -> Self {
        let mut node_index = HashMap::new();
        node_index.insert("0".to_owned(), 0);
        Self {
            node_names: vec!["0".to_owned()],
            node_index,
            elements: Vec::new(),
            vsource_elements: Vec::new(),
            vsource_index: HashMap::new(),
        }
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The name `"0"` always refers to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&idx) = self.node_index.get(name) {
            return NodeId(idx);
        }
        let idx = self.node_names.len();
        self.node_names.push(name.to_owned());
        self.node_index.insert(name.to_owned(), idx);
        NodeId(idx)
    }

    /// Looks up an existing node by name.
    #[must_use]
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_index.get(name).copied().map(NodeId)
    }

    /// Name of a node.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Total node count including ground.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of voltage-source branches (extra MNA unknowns).
    #[must_use]
    pub fn branch_count(&self) -> usize {
        self.vsource_elements.len()
    }

    /// Number of MNA unknowns: non-ground nodes plus source branches.
    #[must_use]
    pub fn unknown_count(&self) -> usize {
        self.node_count() - 1 + self.branch_count()
    }

    fn push(&mut self, name: &str, element: Element) -> ElementId {
        let id = ElementId(self.elements.len());
        if let Element::VoltageSource { .. } = element {
            self.vsource_index
                .insert(name.to_owned(), self.vsource_elements.len());
            self.vsource_elements.push(self.elements.len());
        }
        self.elements.push(NamedElement {
            name: name.to_owned(),
            element,
        });
        id
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive and finite.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        assert!(
            ohms > 0.0 && ohms.is_finite(),
            "resistance must be positive and finite"
        );
        self.push(name, Element::Resistor { a, b, ohms })
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is negative or non-finite.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) -> ElementId {
        assert!(
            farads >= 0.0 && farads.is_finite(),
            "capacitance must be non-negative and finite"
        );
        self.push(name, Element::Capacitor { a, b, farads })
    }

    /// Adds an independent voltage source.
    pub fn vsource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: Waveform,
    ) -> ElementId {
        self.push(name, Element::VoltageSource { pos, neg, waveform })
    }

    /// Adds an independent current source pushing current from `from` into
    /// `to`.
    pub fn isource(&mut self, name: &str, from: NodeId, to: NodeId, amps: Current) -> ElementId {
        self.push(name, Element::CurrentSource { from, to, amps })
    }

    /// Adds a FinFET.
    pub fn fet(
        &mut self,
        name: &str,
        gate: NodeId,
        drain: NodeId,
        source: NodeId,
        device: FinFet,
    ) -> ElementId {
        self.push(
            name,
            Element::Fet {
                gate,
                drain,
                source,
                device,
            },
        )
    }

    /// Replaces the waveform of the named voltage source — the primitive
    /// behind DC sweeps and assist-voltage re-biasing.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownElement`] when no voltage source with
    /// this name exists.
    pub fn set_source_waveform(
        &mut self,
        name: &str,
        waveform: Waveform,
    ) -> Result<(), SpiceError> {
        let &branch = self
            .vsource_index
            .get(name)
            .ok_or_else(|| SpiceError::UnknownElement(name.to_owned()))?;
        let idx = self.vsource_elements[branch];
        if let Element::VoltageSource { waveform: w, .. } = &mut self.elements[idx].element {
            *w = waveform;
        }
        Ok(())
    }

    /// Sets the named voltage source to a DC value.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownElement`] when no voltage source with
    /// this name exists.
    pub fn set_source_voltage(&mut self, name: &str, value: Voltage) -> Result<(), SpiceError> {
        self.set_source_waveform(name, Waveform::dc(value))
    }

    /// Branch index of the named voltage source (its position among the
    /// extra MNA unknowns).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownElement`] when the name is not a
    /// voltage source.
    pub fn source_branch(&self, name: &str) -> Result<usize, SpiceError> {
        self.vsource_index
            .get(name)
            .copied()
            .ok_or_else(|| SpiceError::UnknownElement(name.to_owned()))
    }

    /// Validates structural netlist invariants: every non-ground node must
    /// have at least two element terminals attached (no floating nodes),
    /// and every node referenced by an element must exist.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidNetlist`] describing the first
    /// violation found.
    pub fn validate(&self) -> Result<(), SpiceError> {
        let mut degree = vec![0usize; self.node_count()];
        let touch = |n: NodeId, degree: &mut Vec<usize>| -> Result<(), SpiceError> {
            if n.0 >= degree.len() {
                return Err(SpiceError::InvalidNetlist(
                    "element references a node from another circuit".to_owned(),
                ));
            }
            degree[n.0] += 1;
            Ok(())
        };
        for named in &self.elements {
            match &named.element {
                Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => {
                    touch(*a, &mut degree)?;
                    touch(*b, &mut degree)?;
                }
                Element::VoltageSource { pos, neg, .. } => {
                    touch(*pos, &mut degree)?;
                    touch(*neg, &mut degree)?;
                }
                Element::CurrentSource { from, to, .. } => {
                    touch(*from, &mut degree)?;
                    touch(*to, &mut degree)?;
                }
                Element::Fet {
                    gate,
                    drain,
                    source,
                    ..
                } => {
                    touch(*gate, &mut degree)?;
                    touch(*drain, &mut degree)?;
                    touch(*source, &mut degree)?;
                }
            }
        }
        for (idx, deg) in degree.iter().enumerate().skip(1) {
            if *deg == 0 {
                return Err(SpiceError::InvalidNetlist(format!(
                    "node `{}` is not connected to any element",
                    self.node_names[idx]
                )));
            }
        }
        Ok(())
    }

    /// Iterates over `(name, element)` pairs.
    pub fn elements(&self) -> impl Iterator<Item = (&str, &Element)> {
        self.elements
            .iter()
            .map(|ne| (ne.name.as_str(), &ne.element))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_deduplicated_by_name() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("a");
        assert_eq!(a, a2);
        assert_eq!(ckt.node_count(), 2);
        assert_eq!(ckt.node("0"), Circuit::GROUND);
    }

    #[test]
    fn unknown_count_includes_branches() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GROUND, Waveform::Dc(1.0));
        ckt.resistor("R1", a, Circuit::GROUND, 1.0);
        assert_eq!(ckt.unknown_count(), 2); // node a + branch of V1
    }

    #[test]
    fn set_source_voltage_round_trips() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GROUND, Waveform::Dc(1.0));
        ckt.set_source_voltage("V1", Voltage::from_volts(0.45))
            .unwrap();
        let (_, e) = ckt.elements().next().unwrap();
        match e {
            Element::VoltageSource { waveform, .. } => assert_eq!(waveform.dc_value(), 0.45),
            _ => panic!("expected voltage source"),
        }
        assert!(matches!(
            ckt.set_source_voltage("nope", Voltage::ZERO),
            Err(SpiceError::UnknownElement(_))
        ));
    }

    #[test]
    fn validate_detects_floating_node() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let _floating = ckt.node("b");
        ckt.resistor("R1", a, Circuit::GROUND, 1.0);
        let err = ckt.validate().unwrap_err();
        assert!(matches!(err, SpiceError::InvalidNetlist(msg) if msg.contains("b")));
    }

    #[test]
    fn validate_accepts_connected_netlist() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GROUND, Waveform::Dc(1.0));
        ckt.resistor("R1", a, Circuit::GROUND, 10.0);
        ckt.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "resistance")]
    fn zero_resistance_is_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GROUND, 0.0);
    }
}
