//! Waveform post-processing: the `.measure` equivalent.

use crate::NodeId;
use sram_units::{Time, Voltage};

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossingEdge {
    /// Waveform passes the level from below.
    Rising,
    /// Waveform passes the level from above.
    Falling,
    /// Either direction.
    Any,
}

/// Recorded waveforms of a transient run: one sample of every unknown per
/// accepted timestep.
#[derive(Debug, Clone)]
pub struct Trace {
    n_nodes: usize,
    times: Vec<f64>,
    /// One state vector per sample (node voltages then branch currents).
    states: Vec<Vec<f64>>,
}

impl Trace {
    pub(crate) fn new(n_nodes: usize, times: Vec<f64>, states: Vec<Vec<f64>>) -> Self {
        debug_assert_eq!(times.len(), states.len());
        Self {
            n_nodes,
            times,
            states,
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times.
    pub fn times(&self) -> impl Iterator<Item = Time> + '_ {
        self.times.iter().map(|&t| Time::from_seconds(t))
    }

    /// End time of the trace, or `None` when no samples were recorded.
    #[must_use]
    pub fn end_time(&self) -> Option<Time> {
        self.times.last().map(|&t| Time::from_seconds(t))
    }

    fn node_value(&self, sample: usize, node: NodeId) -> f64 {
        let i = node.index();
        assert!(i < self.n_nodes, "node does not belong to this circuit");
        if i == 0 {
            0.0
        } else {
            self.states[sample][i - 1]
        }
    }

    /// Voltage samples of one node.
    #[must_use]
    pub fn samples(&self, node: NodeId) -> Vec<(Time, Voltage)> {
        (0..self.len())
            .map(|k| {
                (
                    Time::from_seconds(self.times[k]),
                    Voltage::from_volts(self.node_value(k, node)),
                )
            })
            .collect()
    }

    /// Linearly interpolated voltage of `node` at `time` (clamped to the
    /// trace range).
    ///
    /// # Panics
    ///
    /// Panics on an empty trace or a foreign node.
    #[must_use]
    pub fn voltage_at(&self, node: NodeId, time: Time) -> Voltage {
        assert!(!self.is_empty(), "empty trace");
        let t = time.seconds();
        if t <= self.times[0] {
            return Voltage::from_volts(self.node_value(0, node));
        }
        let last = self.len() - 1;
        if t >= self.times[last] {
            return Voltage::from_volts(self.node_value(last, node));
        }
        let idx = self.times.partition_point(|&pt| pt <= t);
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.node_value(idx - 1, node), self.node_value(idx, node));
        let f = if t1 > t0 { (t - t0) / (t1 - t0) } else { 1.0 };
        Voltage::from_volts(v0 + (v1 - v0) * f)
    }

    /// Last recorded voltage of `node`.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    #[must_use]
    pub fn final_voltage(&self, node: NodeId) -> Voltage {
        assert!(!self.is_empty(), "empty trace");
        Voltage::from_volts(self.node_value(self.len() - 1, node))
    }

    /// First time (after `after`) at which `node` crosses `level` in the
    /// given direction, linearly interpolated between samples.
    #[must_use]
    pub fn crossing(
        &self,
        node: NodeId,
        level: Voltage,
        edge: CrossingEdge,
        after: Time,
    ) -> Option<Time> {
        let lvl = level.volts();
        let t_min = after.seconds();
        for k in 1..self.len() {
            if self.times[k] < t_min {
                continue;
            }
            let v0 = self.node_value(k - 1, node);
            let v1 = self.node_value(k, node);
            let rising = v0 < lvl && v1 >= lvl;
            let falling = v0 > lvl && v1 <= lvl;
            let hit = match edge {
                CrossingEdge::Rising => rising,
                CrossingEdge::Falling => falling,
                CrossingEdge::Any => rising || falling,
            };
            if hit {
                let f = if (v1 - v0).abs() > 0.0 {
                    (lvl - v0) / (v1 - v0)
                } else {
                    0.0
                };
                let t = self.times[k - 1] + (self.times[k] - self.times[k - 1]) * f;
                if t >= t_min {
                    return Some(Time::from_seconds(t));
                }
            }
        }
        None
    }

    /// First time after `after` at which two node waveforms meet (their
    /// difference crosses zero) — used for the paper's cell write delay
    /// ("the time … until Q and QB reach the same value").
    #[must_use]
    pub fn meeting_time(&self, a: NodeId, b: NodeId, after: Time) -> Option<Time> {
        let t_min = after.seconds();
        for k in 1..self.len() {
            if self.times[k] < t_min {
                continue;
            }
            let d0 = self.node_value(k - 1, a) - self.node_value(k - 1, b);
            let d1 = self.node_value(k, a) - self.node_value(k, b);
            if d0 == 0.0 {
                if self.times[k - 1] >= t_min {
                    return Some(Time::from_seconds(self.times[k - 1]));
                }
            } else if d0 * d1 <= 0.0 {
                let f = d0 / (d0 - d1);
                let t = self.times[k - 1] + (self.times[k] - self.times[k - 1]) * f;
                if t >= t_min {
                    return Some(Time::from_seconds(t));
                }
            }
        }
        None
    }

    /// Maximum voltage reached by `node`.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    #[must_use]
    pub fn max_voltage(&self, node: NodeId) -> Voltage {
        assert!(!self.is_empty(), "empty trace");
        Voltage::from_volts(
            (0..self.len())
                .map(|k| self.node_value(k, node))
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Minimum voltage reached by `node`.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    #[must_use]
    pub fn min_voltage(&self, node: NodeId) -> Voltage {
        assert!(!self.is_empty(), "empty trace");
        Voltage::from_volts(
            (0..self.len())
                .map(|k| self.node_value(k, node))
                .fold(f64::INFINITY, f64::min),
        )
    }

    /// Branch current of voltage source `branch` at sample `k`, in amperes
    /// (positive into the positive terminal).
    #[must_use]
    pub fn branch_current_samples(&self, branch: usize) -> Vec<(Time, f64)> {
        (0..self.len())
            .map(|k| {
                (
                    Time::from_seconds(self.times[k]),
                    self.states[k][self.n_nodes - 1 + branch],
                )
            })
            .collect()
    }

    /// Integrates the charge delivered by voltage source `branch` over the
    /// whole trace (trapezoidal rule), in coulombs. Negative when the
    /// source delivers current out of its positive terminal (a supply).
    #[must_use]
    pub fn delivered_charge(&self, branch: usize) -> f64 {
        let idx = self.n_nodes - 1 + branch;
        let mut q = 0.0;
        for k in 1..self.len() {
            let dt = self.times[k] - self.times[k - 1];
            let i0 = self.states[k - 1][idx];
            let i1 = self.states[k][idx];
            q += 0.5 * (i0 + i1) * dt;
        }
        q
    }

    /// Integrates the energy *delivered by* voltage source `branch`
    /// (`−∫ v(t)·i(t) dt`, positive for a supply feeding the circuit),
    /// with the source's terminal voltage supplied by `v_of_t` — pass
    /// `|t| waveform.value_at(t)`-style closures for time-varying
    /// sources.
    #[must_use]
    pub fn delivered_energy<F>(&self, branch: usize, v_of_t: F) -> sram_units::Energy
    where
        F: Fn(Time) -> Voltage,
    {
        let idx = self.n_nodes - 1 + branch;
        let mut e = 0.0;
        for k in 1..self.len() {
            let dt = self.times[k] - self.times[k - 1];
            let p0 =
                self.states[k - 1][idx] * v_of_t(Time::from_seconds(self.times[k - 1])).volts();
            let p1 = self.states[k][idx] * v_of_t(Time::from_seconds(self.times[k])).volts();
            e += 0.5 * (p0 + p1) * dt;
        }
        sram_units::Energy::from_joules(-e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_trace() -> Trace {
        // Node 1 ramps 0 -> 1 V over 10 s; node 2 falls 1 -> 0.
        let times: Vec<f64> = (0..=10).map(f64::from).collect();
        let states: Vec<Vec<f64>> = (0..=10)
            .map(|k| vec![f64::from(k) / 10.0, 1.0 - f64::from(k) / 10.0])
            .collect();
        Trace::new(3, times, states)
    }

    #[test]
    fn interpolates_between_samples() {
        let tr = ramp_trace();
        let v = tr.voltage_at(NodeId(1), Time::from_seconds(2.5));
        assert!((v.volts() - 0.25).abs() < 1e-12);
        // Clamps outside range.
        assert_eq!(
            tr.voltage_at(NodeId(1), Time::from_seconds(99.0)).volts(),
            1.0
        );
    }

    #[test]
    fn ground_is_always_zero() {
        let tr = ramp_trace();
        assert_eq!(
            tr.voltage_at(NodeId(0), Time::from_seconds(5.0)),
            Voltage::ZERO
        );
    }

    #[test]
    fn crossing_detects_edges() {
        let tr = ramp_trace();
        let t = tr
            .crossing(
                NodeId(1),
                Voltage::from_volts(0.55),
                CrossingEdge::Rising,
                Time::ZERO,
            )
            .unwrap();
        assert!((t.seconds() - 5.5).abs() < 1e-9);
        assert!(tr
            .crossing(
                NodeId(1),
                Voltage::from_volts(0.55),
                CrossingEdge::Falling,
                Time::ZERO
            )
            .is_none());
        // `after` skips earlier crossings entirely.
        assert!(tr
            .crossing(
                NodeId(1),
                Voltage::from_volts(0.55),
                CrossingEdge::Rising,
                Time::from_seconds(6.0)
            )
            .is_none());
    }

    #[test]
    fn meeting_time_finds_intersection() {
        let tr = ramp_trace();
        let t = tr.meeting_time(NodeId(1), NodeId(2), Time::ZERO).unwrap();
        assert!((t.seconds() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_and_final() {
        let tr = ramp_trace();
        assert_eq!(tr.max_voltage(NodeId(1)).volts(), 1.0);
        assert_eq!(tr.min_voltage(NodeId(1)).volts(), 0.0);
        assert_eq!(tr.final_voltage(NodeId(2)).volts(), 0.0);
        assert_eq!(tr.end_time().unwrap().seconds(), 10.0);
        assert!(Trace::new(2, Vec::new(), Vec::new()).end_time().is_none());
    }

    #[test]
    fn delivered_charge_integrates() {
        // Constant 1 A branch current over 10 s -> 10 C.
        let times: Vec<f64> = (0..=10).map(f64::from).collect();
        let states: Vec<Vec<f64>> = (0..=10).map(|_| vec![0.0, 0.0, 1.0]).collect();
        let tr = Trace::new(3, times, states);
        assert!((tr.delivered_charge(0) - 10.0).abs() < 1e-12);
    }
}
