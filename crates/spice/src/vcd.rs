//! VCD (value-change dump) export of transient traces.
//!
//! Renders a [`Trace`] as an IEEE-1364 VCD document with `real`
//! variables, viewable in GTKWave & co. Timescale is 1 fs so
//! picosecond-scale SRAM transients keep full resolution.

use crate::{Circuit, Trace};
use core::fmt::Write as _;

/// Renders selected node waveforms as a VCD document.
///
/// `nodes` pairs display names with the circuit nodes to dump; names are
/// sanitized to VCD identifier rules (whitespace → `_`).
///
/// # Examples
///
/// ```no_run
/// use sram_spice::{trace_to_vcd, Circuit, Transient, Waveform};
/// use sram_units::{Time, Voltage};
///
/// # fn main() -> Result<(), sram_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.vsource("V", a, Circuit::GROUND, Waveform::dc(Voltage::from_volts(0.45)));
/// ckt.resistor("R", a, Circuit::GROUND, 1e3);
/// let result = Transient::new(Time::from_picoseconds(10.0), Time::from_picoseconds(1.0))
///     .run(&ckt)?;
/// let vcd = trace_to_vcd(result.trace(), &ckt, &[("node_a", a)]);
/// assert!(vcd.contains("$enddefinitions"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn trace_to_vcd(trace: &Trace, circuit: &Circuit, nodes: &[(&str, crate::NodeId)]) -> String {
    let _ = circuit; // reserved for hierarchical scopes; names come from callers
    let mut out = String::new();
    out.push_str("$date sram-edp $end\n");
    out.push_str("$version sram-spice $end\n");
    out.push_str("$timescale 1fs $end\n");
    out.push_str("$scope module sram $end\n");
    // VCD id codes: printable ASCII starting at '!', extended to
    // multi-character base-94 codes so any node count is dumpable.
    let ids: Vec<String> = (0..nodes.len()).map(vcd_id).collect();
    for ((name, _), id) in nodes.iter().zip(&ids) {
        let clean: String = name
            .chars()
            .map(|c| if c.is_whitespace() { '_' } else { c })
            .collect();
        let _ = writeln!(out, "$var real 64 {id} {clean} $end");
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    let mut last: Vec<Option<f64>> = vec![None; nodes.len()];
    for (k, t) in trace.times().enumerate() {
        let fs = (t.femtoseconds()).round() as u64;
        let mut emitted_time = false;
        for (slot, ((_, node), id)) in nodes.iter().zip(&ids).enumerate() {
            let v = trace.voltage_at(*node, t).volts();
            if last[slot] != Some(v) || k == 0 {
                if !emitted_time {
                    let _ = writeln!(out, "#{fs}");
                    emitted_time = true;
                }
                let _ = writeln!(out, "r{v:.6e} {id}");
                last[slot] = Some(v);
            }
        }
    }
    out
}

/// VCD identifier for variable `k`: little-endian base 94 over the
/// printable ASCII range `!`..=`~` (the IEEE-1364 id alphabet).
fn vcd_id(mut k: usize) -> String {
    let mut id = String::new();
    loop {
        id.push(char::from(b'!' + (k % 94) as u8));
        k /= 94;
        if k == 0 {
            break;
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Transient, Waveform};
    use sram_units::{Time, Voltage};

    #[test]
    fn vcd_has_header_vars_and_changes() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.vsource(
            "V",
            a,
            Circuit::GROUND,
            Waveform::step(
                Voltage::ZERO,
                Voltage::from_volts(1.0),
                Time::from_picoseconds(1.0),
                Time::from_picoseconds(1.0),
            ),
        );
        ckt.resistor("R", a, out, 1e3);
        ckt.capacitor("C", out, Circuit::GROUND, 1e-15);
        let result = Transient::new(Time::from_picoseconds(5.0), Time::from_picoseconds(0.5))
            .run(&ckt)
            .unwrap();
        let vcd = trace_to_vcd(result.trace(), &ckt, &[("in node", a), ("out", out)]);
        assert!(vcd.contains("$timescale 1fs $end"));
        assert!(vcd.contains("$var real 64 ! in_node $end"));
        assert!(vcd.contains("$var real 64 \" out $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        // Initial values at #0 and at least one later timestamp.
        assert!(vcd.contains("#0\n"));
        assert!(vcd.matches("\n#").count() >= 2, "no later timestamps");
        assert!(vcd.contains("r0.000000e0 !"));
    }

    #[test]
    fn vcd_ids_are_unique_past_the_single_char_range() {
        let ids: Vec<String> = (0..500).map(vcd_id).collect();
        assert_eq!(ids[0], "!");
        assert_eq!(ids[93], "~");
        assert_eq!(ids[94].chars().count(), 2);
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate VCD ids");
    }

    #[test]
    fn unchanged_values_are_not_re_emitted() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V", a, Circuit::GROUND, Waveform::Dc(0.45));
        ckt.resistor("R", a, Circuit::GROUND, 1e3);
        let result = Transient::new(Time::from_picoseconds(5.0), Time::from_picoseconds(0.5))
            .run(&ckt)
            .unwrap();
        let vcd = trace_to_vcd(result.trace(), &ckt, &[("a", a)]);
        // The DC node changes once (its initial emission) and never again.
        let emissions = vcd.matches(" !").count() - 1; // minus the $var line
        assert_eq!(emissions, 1, "DC node re-emitted: {vcd}");
    }
}
