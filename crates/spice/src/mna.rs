//! Modified-nodal-analysis assembly.
//!
//! Unknown ordering: node voltages for nodes `1..n` (ground excluded),
//! followed by one branch current per voltage source. The residual is the
//! KCL current *leaving* each node (plus the source-branch voltage
//! constraints); Newton solves `J Δx = −F`.

use crate::circuit::Circuit;
use crate::elements::Element;
use crate::linalg::Matrix;
use crate::SpiceError;
use sram_units::Voltage;

/// Companion-model configuration for capacitors during transient steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Integration {
    /// DC analysis: capacitors are open circuits.
    Dc,
    /// Backward Euler with step `h`: `i = C/h (v − v_prev)`.
    BackwardEuler {
        /// Timestep in seconds.
        h: f64,
    },
    /// Trapezoidal with step `h`: `i = 2C/h (v − v_prev) − i_prev`.
    Trapezoidal {
        /// Timestep in seconds.
        h: f64,
    },
}

/// Per-capacitor dynamic state carried between transient steps.
#[derive(Debug, Clone, Default)]
pub(crate) struct CapState {
    /// Previous across-voltage per capacitor element index.
    pub(crate) v_prev: Vec<f64>,
    /// Previous through-current per capacitor element index.
    pub(crate) i_prev: Vec<f64>,
}

/// Assembly context for one Newton iteration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AssemblyOptions {
    /// Shunt conductance from every node to ground (homotopy aid).
    pub(crate) gmin: f64,
    /// Scale factor on all independent sources (source stepping).
    pub(crate) source_scale: f64,
    /// Simulation time (selects waveform values).
    pub(crate) time: f64,
    /// Capacitor treatment.
    pub(crate) integration: Integration,
}

impl Default for AssemblyOptions {
    fn default() -> Self {
        Self {
            gmin: 1e-12,
            source_scale: 1.0,
            time: 0.0,
            integration: Integration::Dc,
        }
    }
}

/// Maps circuit topology to unknown indices.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Indexer {
    n_nodes: usize,
}

impl Indexer {
    pub(crate) fn new(circuit: &Circuit) -> Self {
        Self {
            n_nodes: circuit.node_count(),
        }
    }

    /// Index of a node voltage in the unknown vector, `None` for ground.
    #[inline]
    pub(crate) fn node(&self, node: crate::NodeId) -> Option<usize> {
        let i = node.index();
        if i == 0 {
            None
        } else {
            Some(i - 1)
        }
    }

    /// Index of a voltage-source branch current.
    #[inline]
    pub(crate) fn branch(&self, branch: usize) -> usize {
        self.n_nodes - 1 + branch
    }

    /// Voltage of a node under the solution vector `x`.
    #[inline]
    pub(crate) fn voltage(&self, x: &[f64], node: crate::NodeId) -> f64 {
        match self.node(node) {
            None => 0.0,
            Some(i) => x[i],
        }
    }
}

/// Assembles the Jacobian and residual of the MNA system at solution `x`.
///
/// `cap_state` must contain one entry per capacitor element (in element
/// order) when `options.integration` is not [`Integration::Dc`].
///
/// # Errors
///
/// [`SpiceError::InvalidAnalysis`] when a transient integration method is
/// selected but `cap_state` is `None` — a misconfigured analysis must not
/// abort a long search run.
pub(crate) fn assemble(
    circuit: &Circuit,
    x: &[f64],
    options: AssemblyOptions,
    cap_state: Option<&CapState>,
    jacobian: &mut Matrix,
    residual: &mut [f64],
) -> Result<(), SpiceError> {
    debug_assert_eq!(jacobian.dim(), circuit.unknown_count());
    debug_assert_eq!(residual.len(), circuit.unknown_count());
    if cap_state.is_none() && options.integration != Integration::Dc {
        return Err(SpiceError::InvalidAnalysis(
            "transient integration requires capacitor state".into(),
        ));
    }
    jacobian.clear();
    residual.fill(0.0);

    let ix = Indexer::new(circuit);

    // gmin shunts keep the matrix non-singular when devices are fully off.
    for i in 0..(circuit.node_count() - 1) {
        jacobian.add(i, i, options.gmin);
        residual[i] += options.gmin * x[i];
    }

    let mut branch = 0usize;
    let mut cap_idx = 0usize;
    for named in &circuit.elements {
        match &named.element {
            Element::Resistor { a, b, ohms } => {
                let g = 1.0 / ohms;
                stamp_conductance(jacobian, residual, &ix, x, *a, *b, g);
            }
            Element::Capacitor { a, b, farads } => {
                // The guard above makes (non-DC, None) impossible; matching
                // on the pair keeps this arm total without a panic path.
                match (options.integration, cap_state) {
                    (Integration::Dc, _) | (_, None) => {}
                    (Integration::BackwardEuler { h }, Some(state)) => {
                        let geq = farads / h;
                        let v_prev = state.v_prev[cap_idx];
                        // i = geq*(v - v_prev): conductance geq plus history
                        // current source geq*v_prev from b to a.
                        stamp_conductance(jacobian, residual, &ix, x, *a, *b, geq);
                        stamp_current(residual, &ix, *a, *b, -geq * v_prev);
                    }
                    (Integration::Trapezoidal { h }, Some(state)) => {
                        let geq = 2.0 * farads / h;
                        let v_prev = state.v_prev[cap_idx];
                        let i_prev = state.i_prev[cap_idx];
                        stamp_conductance(jacobian, residual, &ix, x, *a, *b, geq);
                        stamp_current(residual, &ix, *a, *b, -(geq * v_prev + i_prev));
                    }
                }
                cap_idx += 1;
            }
            Element::VoltageSource { pos, neg, waveform } => {
                let value = waveform.value_at(options.time) * options.source_scale;
                let row = ix.branch(branch);
                let i_branch = x[row];
                // KCL: branch current leaves the positive node.
                if let Some(p) = ix.node(*pos) {
                    residual[p] += i_branch;
                    jacobian.add(p, row, 1.0);
                }
                if let Some(n) = ix.node(*neg) {
                    residual[n] -= i_branch;
                    jacobian.add(n, row, -1.0);
                }
                // Branch equation: v_pos - v_neg - V = 0.
                let vp = ix.voltage(x, *pos);
                let vn = ix.voltage(x, *neg);
                residual[row] = vp - vn - value;
                if let Some(p) = ix.node(*pos) {
                    jacobian.add(row, p, 1.0);
                }
                if let Some(n) = ix.node(*neg) {
                    jacobian.add(row, n, -1.0);
                }
                branch += 1;
            }
            Element::CurrentSource { from, to, amps } => {
                let i = amps.amps() * options.source_scale;
                stamp_current(residual, &ix, *from, *to, i);
            }
            Element::Fet {
                gate,
                drain,
                source,
                device,
            } => {
                let vg = Voltage::from_volts(ix.voltage(x, *gate));
                let vd = Voltage::from_volts(ix.voltage(x, *drain));
                let vs = Voltage::from_volts(ix.voltage(x, *source));
                let id = device.current_into_drain(vg, vd, vs).amps();

                // Numeric partial derivatives (central differences). The
                // compact model is smooth; 0.1 mV steps give ~1e-7 relative
                // accuracy which is ample for Newton.
                let h = Voltage::from_microvolts(100.0);
                let d_dg = (device.current_into_drain(vg + h, vd, vs).amps()
                    - device.current_into_drain(vg - h, vd, vs).amps())
                    / (2.0 * h.volts());
                let d_dd = (device.current_into_drain(vg, vd + h, vs).amps()
                    - device.current_into_drain(vg, vd - h, vs).amps())
                    / (2.0 * h.volts());
                let d_ds = (device.current_into_drain(vg, vd, vs + h).amps()
                    - device.current_into_drain(vg, vd, vs - h).amps())
                    / (2.0 * h.volts());

                // Current enters the drain, leaves the source.
                if let Some(d) = ix.node(*drain) {
                    residual[d] += id;
                    if let Some(g) = ix.node(*gate) {
                        jacobian.add(d, g, d_dg);
                    }
                    jacobian.add(d, d, d_dd);
                    if let Some(s) = ix.node(*source) {
                        jacobian.add(d, s, d_ds);
                    }
                }
                if let Some(s) = ix.node(*source) {
                    residual[s] -= id;
                    if let Some(g) = ix.node(*gate) {
                        jacobian.add(s, g, -d_dg);
                    }
                    if let Some(d) = ix.node(*drain) {
                        jacobian.add(s, d, -d_dd);
                    }
                    jacobian.add(s, s, -d_ds);
                }
            }
        }
    }
    Ok(())
}

/// Stamps a linear conductance `g` between nodes `a` and `b` into the
/// Jacobian plus the corresponding `g·(va − vb)` term into the residual.
fn stamp_conductance(
    jacobian: &mut Matrix,
    residual: &mut [f64],
    ix: &Indexer,
    x: &[f64],
    a: crate::NodeId,
    b: crate::NodeId,
    g: f64,
) {
    let va = ix.voltage(x, a);
    let vb = ix.voltage(x, b);
    let i = g * (va - vb);
    if let Some(ia) = ix.node(a) {
        residual[ia] += i;
        jacobian.add(ia, ia, g);
        if let Some(ib) = ix.node(b) {
            jacobian.add(ia, ib, -g);
        }
    }
    if let Some(ib) = ix.node(b) {
        residual[ib] -= i;
        jacobian.add(ib, ib, g);
        if let Some(ia) = ix.node(a) {
            jacobian.add(ib, ia, -g);
        }
    }
}

/// Stamps a constant current `i` flowing from node `from` into node `to`.
fn stamp_current(
    residual: &mut [f64],
    ix: &Indexer,
    from: crate::NodeId,
    to: crate::NodeId,
    i: f64,
) {
    if let Some(f) = ix.node(from) {
        residual[f] += i;
    }
    if let Some(t) = ix.node(to) {
        residual[t] -= i;
    }
}

/// Computes the current through each capacitor for the accepted solution,
/// updating `state` for the next step.
pub(crate) fn update_cap_state(
    circuit: &Circuit,
    x: &[f64],
    integration: Integration,
    state: &mut CapState,
) {
    let ix = Indexer::new(circuit);
    let mut cap_idx = 0usize;
    for named in &circuit.elements {
        if let Element::Capacitor { a, b, farads } = &named.element {
            let v = ix.voltage(x, *a) - ix.voltage(x, *b);
            let i = match integration {
                Integration::Dc => 0.0,
                Integration::BackwardEuler { h } => farads / h * (v - state.v_prev[cap_idx]),
                Integration::Trapezoidal { h } => {
                    2.0 * farads / h * (v - state.v_prev[cap_idx]) - state.i_prev[cap_idx]
                }
            };
            state.v_prev[cap_idx] = v;
            state.i_prev[cap_idx] = i;
            cap_idx += 1;
        }
    }
}

/// Initializes capacitor state from a DC solution (zero current).
pub(crate) fn init_cap_state(circuit: &Circuit, x: &[f64]) -> CapState {
    let ix = Indexer::new(circuit);
    let mut state = CapState::default();
    for named in &circuit.elements {
        if let Element::Capacitor { a, b, .. } = &named.element {
            let v = ix.voltage(x, *a) - ix.voltage(x, *b);
            state.v_prev.push(v);
            state.i_prev.push(0.0);
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, Waveform};

    #[test]
    fn divider_residual_vanishes_at_solution() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let m = ckt.node("m");
        ckt.vsource("V", a, Circuit::GROUND, Waveform::Dc(1.0));
        ckt.resistor("R1", a, m, 1.0e3);
        ckt.resistor("R2", m, Circuit::GROUND, 1.0e3);

        // Exact solution: v_a = 1, v_m = 0.5, i_branch = -0.5 mA.
        let x = vec![1.0, 0.5, -0.5e-3];
        let mut jac = Matrix::zeros(3);
        let mut res = vec![0.0; 3];
        let opts = AssemblyOptions {
            gmin: 0.0,
            ..AssemblyOptions::default()
        };
        assemble(&ckt, &x, opts, None, &mut jac, &mut res).unwrap();
        for (i, r) in res.iter().enumerate() {
            assert!(r.abs() < 1e-12, "residual[{i}] = {r}");
        }
    }

    #[test]
    fn capacitor_is_open_in_dc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V", a, Circuit::GROUND, Waveform::Dc(1.0));
        ckt.capacitor("C", a, Circuit::GROUND, 1e-15);
        let x = vec![1.0, 0.0];
        let mut jac = Matrix::zeros(2);
        let mut res = vec![0.0; 2];
        let opts = AssemblyOptions {
            gmin: 0.0,
            ..AssemblyOptions::default()
        };
        assemble(&ckt, &x, opts, None, &mut jac, &mut res).unwrap();
        // Branch current unknown of 0 satisfies KCL exactly.
        assert!(res[0].abs() < 1e-15);
    }

    #[test]
    fn source_scale_scales_branch_equation() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V", a, Circuit::GROUND, Waveform::Dc(2.0));
        ckt.resistor("R", a, Circuit::GROUND, 1.0);
        let x = vec![1.0, -1.0]; // consistent with half-scaled source
        let mut jac = Matrix::zeros(2);
        let mut res = vec![0.0; 2];
        let opts = AssemblyOptions {
            gmin: 0.0,
            source_scale: 0.5,
            ..AssemblyOptions::default()
        };
        assemble(&ckt, &x, opts, None, &mut jac, &mut res).unwrap();
        assert!(res[1].abs() < 1e-12, "branch eq: {}", res[1]);
    }
}
