//! Dense LU factorization with partial pivoting.
//!
//! Circuits in this workspace are tiny (a 6T cell plus periphery is well
//! under 50 unknowns), so a dense solver beats any sparse machinery and
//! keeps the crate dependency-free.

use crate::SpiceError;

/// A dense square matrix in row-major storage.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub(crate) fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Dimension of the (square) matrix.
    pub(crate) fn dim(&self) -> usize {
        self.n
    }

    /// Resets all entries to zero, keeping the allocation.
    pub(crate) fn clear(&mut self) {
        self.data.fill(0.0);
    }

    #[inline]
    pub(crate) fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n + col]
    }

    #[inline]
    pub(crate) fn add(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] += value;
    }

    #[inline]
    pub(crate) fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] = value;
    }

    /// Solves `A x = b` in place (`b` becomes `x`), destroying `self`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when no usable pivot exists.
    #[allow(clippy::needless_range_loop)]
    pub(crate) fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), SpiceError> {
        sram_probe::probe_inc!(detail "spice.lu_factorizations");
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length must match matrix dimension");
        // Forward elimination with partial pivoting.
        for col in 0..n {
            // Pivot search.
            let mut pivot_row = col;
            let mut pivot_mag = self.get(col, col).abs();
            for row in (col + 1)..n {
                let mag = self.get(row, col).abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = row;
                }
            }
            if pivot_mag < 1e-300 || !pivot_mag.is_finite() {
                return Err(SpiceError::SingularMatrix);
            }
            if pivot_row != col {
                for k in 0..n {
                    let a = self.get(col, k);
                    let b2 = self.get(pivot_row, k);
                    self.set(col, k, b2);
                    self.set(pivot_row, k, a);
                }
                b.swap(col, pivot_row);
            }
            let pivot = self.get(col, col);
            for row in (col + 1)..n {
                let factor = self.get(row, col) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    let v = self.get(row, k) - factor * self.get(col, k);
                    self.set(row, k, v);
                }
                b[row] -= factor * b[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = b[col];
            for k in (col + 1)..n {
                sum -= self.get(col, k) * b[k];
            }
            b[col] = sum / self.get(col, col);
            if !b[col].is_finite() {
                return Err(SpiceError::SingularMatrix);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(a: &[&[f64]], b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        let n = b.len();
        let mut m = Matrix::zeros(n);
        for (i, row) in a.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        let mut x = b.to_vec();
        m.solve_in_place(&mut x)?;
        Ok(x)
    }

    #[test]
    fn solves_identity() {
        let x = solve(&[&[1.0, 0.0], &[0.0, 1.0]], &[3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_2x2_requiring_pivot() {
        // First pivot is zero; partial pivoting must swap rows.
        let x = solve(&[&[0.0, 1.0], &[2.0, 1.0]], &[1.0, 4.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solves_3x3() {
        let x = solve(
            &[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]],
            &[8.0, -11.0, -3.0],
        )
        .unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_singular() {
        let err = solve(&[&[1.0, 2.0], &[2.0, 4.0]], &[1.0, 2.0]).unwrap_err();
        assert_eq!(err, SpiceError::SingularMatrix);
    }

    #[test]
    fn clear_preserves_dimension() {
        let mut m = Matrix::zeros(3);
        m.set(1, 1, 5.0);
        m.clear();
        assert_eq!(m.dim(), 3);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn random_diagonally_dominant_systems_round_trip() {
        // Deterministic pseudo-random systems: A x_true = b, solve, compare.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        for n in [1usize, 2, 5, 9, 17] {
            let mut a = Matrix::zeros(n);
            for i in 0..n {
                let mut row_sum = 0.0;
                for j in 0..n {
                    let v = next();
                    a.set(i, j, v);
                    row_sum += v.abs();
                }
                a.add(i, i, row_sum + 1.0); // dominance => well conditioned
            }
            let x_true: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
            let mut b = vec![0.0; n];
            for i in 0..n {
                for j in 0..n {
                    b[i] += a.get(i, j) * x_true[j];
                }
            }
            let mut a_fact = a.clone();
            a_fact.solve_in_place(&mut b).unwrap();
            for i in 0..n {
                assert!(
                    (b[i] - x_true[i]).abs() < 1e-8,
                    "n={n} i={i}: {} vs {}",
                    b[i],
                    x_true[i]
                );
            }
        }
    }
}
