//! Transient (time-domain) analysis.
//!
//! Integration scheme: the initial operating point comes from a DC solve
//! at `t = 0`; the first accepted step uses backward Euler (self-starting,
//! L-stable), subsequent steps use the trapezoidal rule (2nd order, no
//! numerical damping of the waveforms we measure delays on). Each step
//! runs a Newton inner loop; non-convergence or an excessive voltage
//! change halves the step, smooth behaviour grows it back toward
//! `dt_max`.

use crate::circuit::Circuit;
use crate::linalg::Matrix;
use crate::measure::Trace;
use crate::mna::{assemble, init_cap_state, update_cap_state, AssemblyOptions, Integration};
use crate::{DcSolver, SpiceError};
use sram_units::Time;

/// Configuration of a transient run.
#[derive(Debug, Clone)]
pub struct Transient {
    t_stop: f64,
    dt_max: f64,
    dt_min: f64,
    max_dv_per_step: f64,
    newton_iterations: usize,
    dc_solver: DcSolver,
}

impl Transient {
    /// Creates a transient analysis until `t_stop` with maximum step
    /// `dt_max`.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` or `dt_max` are not strictly positive.
    #[must_use]
    pub fn new(t_stop: Time, dt_max: Time) -> Self {
        assert!(t_stop.seconds() > 0.0, "t_stop must be positive");
        assert!(dt_max.seconds() > 0.0, "dt_max must be positive");
        Self {
            t_stop: t_stop.seconds(),
            dt_max: dt_max.seconds(),
            dt_min: dt_max.seconds() * 1e-7,
            max_dv_per_step: 0.05,
            newton_iterations: 60,
            dc_solver: DcSolver::new(),
        }
    }

    /// Uses a custom DC solver (e.g. with nodesets to pick the initial
    /// state of a bistable cell) for the `t = 0` operating point.
    #[must_use]
    pub fn with_initial_solver(mut self, solver: DcSolver) -> Self {
        self.dc_solver = solver;
        self
    }

    /// Limits the accepted per-step node-voltage change (default 50 mV);
    /// smaller values force finer time resolution around fast edges.
    #[must_use]
    pub fn with_max_dv_per_step(mut self, volts: f64) -> Self {
        assert!(volts > 0.0, "max dv must be positive");
        self.max_dv_per_step = volts;
        self
    }

    /// Runs the analysis.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::TimestepTooSmall`] when step halving bottoms out,
    /// * any DC-solver error from the initial operating point,
    /// * [`SpiceError::SingularMatrix`] for defective netlists.
    pub fn run(&self, circuit: &Circuit) -> Result<TransientResult, SpiceError> {
        sram_probe::probe_inc!("spice.transient_runs");
        let _span = sram_probe::probe_span!("spice.transient_ns");
        let _trace = sram_probe::trace_span!("spice.transient");
        let n = circuit.unknown_count();
        let dc = self.dc_solver.solve_with_guess(circuit, &vec![0.0; n])?;
        let mut x = dc.as_vector().to_vec();
        let mut cap_state = init_cap_state(circuit, &x);

        let mut times = vec![0.0];
        let mut states = vec![x.clone()];

        let mut jacobian = Matrix::zeros(n);
        let mut residual = vec![0.0; n];

        let mut t = 0.0;
        let mut dt = self.dt_max / 100.0;
        let mut first_step = true;

        while t < self.t_stop {
            dt = dt.min(self.t_stop - t).min(self.dt_max);
            let t_next = t + dt;
            let integration = if first_step {
                Integration::BackwardEuler { h: dt }
            } else {
                Integration::Trapezoidal { h: dt }
            };
            let mut x_try = x.clone();
            let converged = self.newton_step(
                circuit,
                &mut x_try,
                t_next,
                integration,
                &cap_state,
                &mut jacobian,
                &mut residual,
            )?;
            let n_node_unknowns = circuit.node_count() - 1;
            let max_dv = x_try
                .iter()
                .zip(x.iter())
                .take(n_node_unknowns)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);

            if !converged || max_dv > self.max_dv_per_step {
                sram_probe::probe_inc!("spice.transient_rejected_steps");
                dt /= 2.0;
                if dt < self.dt_min {
                    return Err(SpiceError::TimestepTooSmall { at_seconds: t });
                }
                continue;
            }

            // Accept the step.
            sram_probe::probe_inc!("spice.transient_steps");
            update_cap_state(circuit, &x_try, integration, &mut cap_state);
            x = x_try;
            t = t_next;
            first_step = false;
            times.push(t);
            states.push(x.clone());
            if max_dv < self.max_dv_per_step / 4.0 {
                dt *= 1.5;
            }
        }

        Ok(TransientResult {
            trace: Trace::new(circuit.node_count(), times, states),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn newton_step(
        &self,
        circuit: &Circuit,
        x: &mut [f64],
        time: f64,
        integration: Integration,
        cap_state: &crate::mna::CapState,
        jacobian: &mut Matrix,
        residual: &mut [f64],
    ) -> Result<bool, SpiceError> {
        let options = AssemblyOptions {
            gmin: 1e-12,
            source_scale: 1.0,
            time,
            integration,
        };
        let n_node_unknowns = circuit.node_count() - 1;
        for _ in 0..self.newton_iterations {
            assemble(circuit, x, options, Some(cap_state), jacobian, residual)?;
            let mut delta: Vec<f64> = residual.iter().map(|r| -r).collect();
            jacobian.solve_in_place(&mut delta)?;
            let mut max_dv: f64 = 0.0;
            for (i, d) in delta.iter_mut().enumerate() {
                if i < n_node_unknowns {
                    if d.abs() > 0.3 {
                        *d = 0.3 * d.signum();
                    }
                    max_dv = max_dv.max(d.abs());
                }
                x[i] += *d;
            }
            if max_dv < 1e-9 {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// Result of a transient analysis.
#[derive(Debug, Clone)]
pub struct TransientResult {
    trace: Trace,
}

impl TransientResult {
    /// The recorded waveforms.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the result, returning the waveforms.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, CrossingEdge, Waveform};
    use sram_device::{DeviceLibrary, FinFet, VtFlavor};
    use sram_units::{Time, Voltage};

    #[test]
    fn rc_charge_matches_analytic() {
        // 1 kΩ / 1 fF: tau = 1 ps. Step at t = 0.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.vsource(
            "V",
            a,
            Circuit::GROUND,
            Waveform::step(
                Voltage::ZERO,
                Voltage::from_volts(1.0),
                Time::from_femtoseconds(1.0),
                Time::from_femtoseconds(1.0),
            ),
        );
        ckt.resistor("R", a, out, 1.0e3);
        ckt.capacitor("C", out, Circuit::GROUND, 1.0e-15);
        let result = Transient::new(Time::from_picoseconds(6.0), Time::from_femtoseconds(20.0))
            .with_max_dv_per_step(0.01)
            .run(&ckt)
            .unwrap();
        let trace = result.trace();
        // v(tau) = 1 - 1/e ≈ 0.632.
        let v_tau = trace.voltage_at(out, Time::from_picoseconds(1.0)).volts();
        assert!((v_tau - 0.632).abs() < 0.02, "v(tau) = {v_tau}");
        let v_end = trace.final_voltage(out).volts();
        assert!((v_end - 1.0).abs() < 5e-3, "v(end) = {v_end}");
    }

    #[test]
    fn inverter_propagates_and_delay_is_measurable() {
        let lib = DeviceLibrary::sevennm();
        let mut ckt = Circuit::new();
        let n_vdd = ckt.node("vdd");
        let n_in = ckt.node("in");
        let n_out = ckt.node("out");
        ckt.vsource("Vdd", n_vdd, Circuit::GROUND, Waveform::Dc(0.45));
        ckt.vsource(
            "Vin",
            n_in,
            Circuit::GROUND,
            Waveform::step(
                Voltage::ZERO,
                Voltage::from_volts(0.45),
                Time::from_picoseconds(2.0),
                Time::from_picoseconds(1.0),
            ),
        );
        ckt.fet(
            "MP",
            n_in,
            n_out,
            n_vdd,
            FinFet::new(lib.pfet(VtFlavor::Lvt).clone(), 1),
        );
        ckt.fet(
            "MN",
            n_in,
            n_out,
            Circuit::GROUND,
            FinFet::new(lib.nfet(VtFlavor::Lvt).clone(), 1),
        );
        ckt.capacitor("CL", n_out, Circuit::GROUND, 0.2e-15);
        let result = Transient::new(Time::from_picoseconds(30.0), Time::from_picoseconds(0.2))
            .run(&ckt)
            .unwrap();
        let trace = result.trace();
        assert!(trace.voltage_at(n_out, Time::from_picoseconds(1.0)).volts() > 0.4);
        assert!(trace.final_voltage(n_out).volts() < 0.02);
        let t_in = trace
            .crossing(
                n_in,
                Voltage::from_volts(0.225),
                CrossingEdge::Rising,
                Time::ZERO,
            )
            .expect("input crossing");
        let t_out = trace
            .crossing(
                n_out,
                Voltage::from_volts(0.225),
                CrossingEdge::Falling,
                Time::ZERO,
            )
            .expect("output crossing");
        let delay = t_out - t_in;
        assert!(
            delay.picoseconds() > 0.0 && delay.picoseconds() < 20.0,
            "delay = {delay}"
        );
    }

    #[test]
    #[should_panic(expected = "t_stop")]
    fn zero_t_stop_is_rejected() {
        let _ = Transient::new(Time::ZERO, Time::from_picoseconds(1.0));
    }
}
