//! Warm-started DC sweeps.

use crate::{Circuit, DcSolution, DcSolver, SpiceError};
use sram_units::Voltage;

/// One point of a DC sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Swept source value at this point.
    pub value: Voltage,
    /// Operating point at this value.
    pub solution: DcSolution,
}

/// Sweeps the DC value of a named voltage source, warm-starting every
/// point from the previous solution — the primitive behind butterfly
/// curves (VTC extraction) and I-V characterization.
///
/// # Examples
///
/// ```
/// use sram_spice::{Circuit, DcSweep, Waveform};
/// use sram_units::Voltage;
///
/// # fn main() -> Result<(), sram_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let m = ckt.node("m");
/// ckt.vsource("Vin", a, Circuit::GROUND, Waveform::Dc(0.0));
/// ckt.resistor("R1", a, m, 1e3);
/// ckt.resistor("R2", m, Circuit::GROUND, 1e3);
///
/// let points = DcSweep::new("Vin", Voltage::ZERO, Voltage::from_volts(1.0), 11)
///     .run(&ckt)?;
/// assert_eq!(points.len(), 11);
/// assert!((points[10].solution.voltage(m).volts() - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DcSweep {
    source: String,
    values: Vec<Voltage>,
    solver: DcSolver,
}

impl DcSweep {
    /// Linear sweep of `source` from `start` to `stop` over `points`
    /// values (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    #[must_use]
    pub fn new(source: &str, start: Voltage, stop: Voltage, points: usize) -> Self {
        assert!(points >= 2, "a sweep needs at least two points");
        let values = (0..points)
            .map(|i| start.lerp(stop, i as f64 / (points - 1) as f64))
            .collect();
        Self {
            source: source.to_owned(),
            values,
            solver: DcSolver::new(),
        }
    }

    /// Sweep over an explicit list of values.
    #[must_use]
    pub fn over_values<I: IntoIterator<Item = Voltage>>(source: &str, values: I) -> Self {
        Self {
            source: source.to_owned(),
            values: values.into_iter().collect(),
            solver: DcSolver::new(),
        }
    }

    /// Uses a custom solver (e.g. with nodesets) for every point.
    #[must_use]
    pub fn with_solver(mut self, solver: DcSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Runs the sweep on a copy of `circuit`.
    ///
    /// # Errors
    ///
    /// Propagates the first solver failure, annotated with the failing
    /// sweep value via [`SpiceError::InvalidAnalysis`] context being
    /// preserved in the underlying variant.
    pub fn run(&self, circuit: &Circuit) -> Result<Vec<SweepPoint>, SpiceError> {
        let mut ckt = circuit.clone();
        let mut out = Vec::with_capacity(self.values.len());
        let mut guess: Option<Vec<f64>> = None;
        for &value in &self.values {
            ckt.set_source_voltage(&self.source, value)?;
            let solution = match &guess {
                // After the first point the solver is warm-started; the
                // nodeset stage (if any) already did its job at point 0.
                Some(g) => self
                    .solver
                    .clone()
                    .without_nodesets()
                    .solve_with_guess(&ckt, g)?,
                None => self.solver.solve(&ckt)?,
            };
            guess = Some(solution.as_vector().to_vec());
            out.push(SweepPoint { value, solution });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waveform;
    use sram_device::{DeviceLibrary, FinFet, VtFlavor};

    #[test]
    fn sweep_covers_endpoints() {
        let s = DcSweep::new("V", Voltage::ZERO, Voltage::from_volts(0.45), 10);
        assert_eq!(s.values.first().copied().unwrap(), Voltage::ZERO);
        assert_eq!(s.values.last().copied().unwrap(), Voltage::from_volts(0.45));
    }

    #[test]
    fn inverter_vtc_is_monotone_falling() {
        let lib = DeviceLibrary::sevennm();
        let mut ckt = Circuit::new();
        let n_vdd = ckt.node("vdd");
        let n_in = ckt.node("in");
        let n_out = ckt.node("out");
        ckt.vsource("Vdd", n_vdd, Circuit::GROUND, Waveform::Dc(0.45));
        ckt.vsource("Vin", n_in, Circuit::GROUND, Waveform::Dc(0.0));
        ckt.fet(
            "MP",
            n_in,
            n_out,
            n_vdd,
            FinFet::new(lib.pfet(VtFlavor::Lvt).clone(), 1),
        );
        ckt.fet(
            "MN",
            n_in,
            n_out,
            Circuit::GROUND,
            FinFet::new(lib.nfet(VtFlavor::Lvt).clone(), 1),
        );
        let pts = DcSweep::new("Vin", Voltage::ZERO, Voltage::from_volts(0.45), 46)
            .run(&ckt)
            .unwrap();
        let outs: Vec<f64> = pts
            .iter()
            .map(|p| p.solution.voltage(n_out).volts())
            .collect();
        assert!(outs[0] > 0.44);
        assert!(outs[45] < 0.01);
        for w in outs.windows(2) {
            assert!(w[1] <= w[0] + 1e-7, "VTC not monotone: {w:?}");
        }
    }

    #[test]
    fn unknown_source_is_reported() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V", a, Circuit::GROUND, Waveform::Dc(1.0));
        ckt.resistor("R", a, Circuit::GROUND, 1.0);
        let err = DcSweep::new("nope", Voltage::ZERO, Voltage::from_volts(1.0), 2)
            .run(&ckt)
            .unwrap_err();
        assert!(matches!(err, SpiceError::UnknownElement(_)));
    }
}
