//! Nonlinear DC operating-point analysis.

use crate::circuit::Circuit;
use crate::linalg::Matrix;
use crate::mna::{assemble, AssemblyOptions, Indexer, Integration};
use crate::{NodeId, SpiceError};
use sram_units::{Current, Voltage};

/// Result of a DC analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    pub(crate) x: Vec<f64>,
    n_nodes: usize,
}

impl DcSolution {
    pub(crate) fn new(x: Vec<f64>, n_nodes: usize) -> Self {
        Self { x, n_nodes }
    }

    /// Voltage of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the solved circuit.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> Voltage {
        let i = node.index();
        assert!(i < self.n_nodes, "node does not belong to this circuit");
        if i == 0 {
            Voltage::ZERO
        } else {
            Voltage::from_volts(self.x[i - 1])
        }
    }

    /// Current through the voltage source with branch index `branch`
    /// (see [`Circuit::source_branch`]). Positive current flows *into the
    /// positive terminal* — a supply delivering power reports a negative
    /// value.
    #[must_use]
    pub fn branch_current(&self, branch: usize) -> Current {
        Current::from_amps(self.x[self.n_nodes - 1 + branch])
    }

    /// Current through a named voltage source.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownElement`] if the name is not a voltage
    /// source of `circuit`.
    pub fn source_current(&self, circuit: &Circuit, name: &str) -> Result<Current, SpiceError> {
        Ok(self.branch_current(circuit.source_branch(name)?))
    }

    /// The raw unknown vector (node voltages then branch currents).
    #[must_use]
    pub fn as_vector(&self) -> &[f64] {
        &self.x
    }
}

/// Newton-Raphson DC solver with homotopy fallbacks.
///
/// Robustness strategy, in order:
/// 1. plain Newton from the supplied guess (or all zeros),
/// 2. `gmin` stepping: solve with a large shunt conductance, then tighten
///    it decade by decade, warm-starting each stage,
/// 3. source stepping: ramp all independent sources from 0 to 100 %.
///
/// Bistable circuits (an SRAM cell!) have multiple valid operating points;
/// use [`DcSolver::nodeset`] to bias convergence toward the intended one.
#[derive(Debug, Clone)]
pub struct DcSolver {
    max_iterations: usize,
    v_abstol: f64,
    i_abstol: f64,
    gmin: f64,
    max_step: f64,
    nodesets: Vec<(NodeId, f64)>,
    hold_pins: bool,
}

impl Default for DcSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl DcSolver {
    /// Creates a solver with default tolerances (1 nV voltage, 1 pA
    /// current, gmin = 1 pS, 300 mV Newton step limit).
    #[must_use]
    pub fn new() -> Self {
        Self {
            max_iterations: 200,
            v_abstol: 1e-9,
            i_abstol: 1e-12,
            gmin: 1e-12,
            max_step: 0.3,
            nodesets: Vec::new(),
            hold_pins: false,
        }
    }

    /// Adds a nodeset hint: the first solve stage pulls `node` toward
    /// `volts` through a soft 1 mS conductance, selecting which stable
    /// state a bistable circuit converges to. The hint is released for the
    /// final solve, so the returned solution is a true operating point.
    #[must_use]
    pub fn nodeset(mut self, node: NodeId, volts: Voltage) -> Self {
        self.nodesets.push((node, volts.volts()));
        self
    }

    /// Clears all nodeset hints.
    #[must_use]
    pub fn without_nodesets(mut self) -> Self {
        self.nodesets.clear();
        self
    }

    /// Keeps the nodeset pins applied in the *final* solve instead of
    /// releasing them: the returned solution is the circuit's state with
    /// the listed nodes forced (through stiff 1 S conductances) to their
    /// set voltages. Use this to start a transient from an enforced
    /// non-equilibrium state — e.g. a sense-amplifier latch preset to a
    /// small differential imbalance that the transient then regenerates.
    #[must_use]
    pub fn hold_pins(mut self) -> Self {
        self.hold_pins = true;
        self
    }

    /// Overrides the Newton iteration budget.
    #[must_use]
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Solves the DC operating point from a zero initial guess.
    ///
    /// # Errors
    ///
    /// [`SpiceError::NonConvergent`] when every homotopy fails;
    /// [`SpiceError::SingularMatrix`] for structurally defective netlists.
    pub fn solve(&self, circuit: &Circuit) -> Result<DcSolution, SpiceError> {
        let guess = vec![0.0; circuit.unknown_count()];
        self.solve_with_guess(circuit, &guess)
    }

    /// Solves the DC operating point warm-started from `guess` (a previous
    /// solution's [`DcSolution::as_vector`] — the backbone of DC sweeps).
    ///
    /// # Errors
    ///
    /// Same as [`DcSolver::solve`].
    pub fn solve_with_guess(
        &self,
        circuit: &Circuit,
        guess: &[f64],
    ) -> Result<DcSolution, SpiceError> {
        if guess.len() != circuit.unknown_count() {
            return Err(SpiceError::InvalidAnalysis(format!(
                "guess length {} does not match unknown count {}",
                guess.len(),
                circuit.unknown_count()
            )));
        }
        sram_probe::probe_inc!("spice.dc_solves");
        let _span = sram_probe::probe_span!("spice.dc_solve_ns");
        let _trace = sram_probe::trace_span!("spice.dc_solve");
        // Chaos hook: a plan rule for `spice.nonconverge` makes this solve
        // fail exactly as a real homotopy breakdown would, so the layers
        // above prove their retry/degradation paths against the same error
        // they see in production.
        if sram_faults::should_fire("spice.nonconverge") {
            sram_probe::probe_inc!("spice.dc_nonconvergent");
            return Err(SpiceError::NonConvergent {
                analysis: "dc (injected)",
                iterations: 0,
            });
        }
        let mut x = guess.to_vec();

        // Hard-pinned mode: solve once with stiff pins and return that
        // forced state directly (no release).
        if self.hold_pins && !self.nodesets.is_empty() {
            self.newton(circuit, &mut x, self.gmin, 1.0, Some(1.0))
                .map_err(|_| {
                    sram_probe::probe_inc!("spice.dc_nonconvergent");
                    SpiceError::NonConvergent {
                        analysis: "dc (pinned)",
                        iterations: self.max_iterations,
                    }
                })?;
            return Ok(DcSolution::new(x, circuit.node_count()));
        }

        // Stage 0: nodeset-biased pre-solve with gradual pin release.
        // A hard pin followed by an abrupt release can drop a bistable
        // circuit onto its metastable point; weakening the pin decade by
        // decade tracks the solution continuously into the intended
        // basin.
        if !self.nodesets.is_empty() {
            for g_pin in [1e-2, 1e-4, 1e-6, 1e-8] {
                let _ = self.newton(circuit, &mut x, self.gmin, 1.0, Some(g_pin));
            }
        }

        // Stage 1: plain Newton.
        if self.newton(circuit, &mut x, self.gmin, 1.0, None).is_ok() {
            return Ok(DcSolution::new(x, circuit.node_count()));
        }

        // Stage 2: gmin stepping.
        let mut x2 = guess.to_vec();
        let mut ok = true;
        let mut g = 1e-3;
        while g >= self.gmin {
            if self.newton(circuit, &mut x2, g, 1.0, None).is_err() {
                ok = false;
                break;
            }
            g /= 10.0;
        }
        if ok && self.newton(circuit, &mut x2, self.gmin, 1.0, None).is_ok() {
            return Ok(DcSolution::new(x2, circuit.node_count()));
        }

        // Stage 3: source stepping.
        let mut x3 = vec![0.0; circuit.unknown_count()];
        let steps = 20;
        for k in 1..=steps {
            let scale = f64::from(k) / f64::from(steps);
            self.newton(circuit, &mut x3, self.gmin, scale, None)
                .map_err(|_| {
                    sram_probe::probe_inc!("spice.dc_nonconvergent");
                    SpiceError::NonConvergent {
                        analysis: "dc",
                        iterations: self.max_iterations,
                    }
                })?;
        }
        Ok(DcSolution::new(x3, circuit.node_count()))
    }

    /// One Newton solve at fixed gmin/source scale. `pin` optionally adds
    /// the nodeset conductance (in siemens).
    fn newton(
        &self,
        circuit: &Circuit,
        x: &mut [f64],
        gmin: f64,
        source_scale: f64,
        pin: Option<f64>,
    ) -> Result<(), SpiceError> {
        let n = circuit.unknown_count();
        let mut jacobian = Matrix::zeros(n);
        let mut residual = vec![0.0; n];
        let ix = Indexer::new(circuit);
        let options = AssemblyOptions {
            gmin,
            source_scale,
            time: 0.0,
            integration: Integration::Dc,
        };
        for iter in 0..self.max_iterations {
            assemble(circuit, x, options, None, &mut jacobian, &mut residual)?;
            if let Some(g_pin) = pin {
                for &(node, volts) in &self.nodesets {
                    if let Some(i) = ix.node(node) {
                        jacobian.add(i, i, g_pin);
                        residual[i] += g_pin * (x[i] - volts);
                    }
                }
            }
            // Solve J dx = -F.
            let mut delta: Vec<f64> = residual.iter().map(|r| -r).collect();
            jacobian.solve_in_place(&mut delta)?;

            // Voltage step limiting for robustness on exponential devices.
            let n_node_unknowns = circuit.node_count() - 1;
            let mut max_dv: f64 = 0.0;
            let mut max_di: f64 = 0.0;
            for (i, d) in delta.iter_mut().enumerate() {
                if i < n_node_unknowns {
                    if d.abs() > self.max_step {
                        *d = self.max_step * d.signum();
                    }
                    max_dv = max_dv.max(d.abs());
                } else {
                    max_di = max_di.max(d.abs());
                }
                x[i] += *d;
            }
            if max_dv < self.v_abstol && max_di < self.i_abstol {
                sram_probe::probe_add!("spice.newton_iterations", iter as u64 + 1);
                sram_probe::probe_record!(detail "spice.newton_iters_per_solve", iter as u64 + 1);
                return Ok(());
            }
        }
        sram_probe::probe_add!("spice.newton_iterations", self.max_iterations as u64);
        sram_probe::probe_record!(detail "spice.newton_iters_per_solve", self.max_iterations as u64);
        Err(SpiceError::NonConvergent {
            analysis: "dc",
            iterations: self.max_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waveform;
    use sram_device::{DeviceLibrary, FinFet, VtFlavor};

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.vsource("V1", vin, Circuit::GROUND, Waveform::Dc(1.0));
        ckt.resistor("R1", vin, mid, 1.0e3);
        ckt.resistor("R2", mid, Circuit::GROUND, 3.0e3);
        let sol = DcSolver::new().solve(&ckt).unwrap();
        assert!((sol.voltage(mid).volts() - 0.75).abs() < 1e-9);
        // Current into + terminal is negative: source delivers power.
        let i = sol.source_current(&ckt, "V1").unwrap();
        // The gmin shunts leak a few pA; allow for that.
        assert!((i.amps() + 1.0 / 4.0e3).abs() < 1e-10);
    }

    #[test]
    fn inverter_output_rails() {
        let lib = DeviceLibrary::sevennm();
        let vdd = 0.45;
        let mut ckt = Circuit::new();
        let n_vdd = ckt.node("vdd");
        let n_in = ckt.node("in");
        let n_out = ckt.node("out");
        ckt.vsource("Vdd", n_vdd, Circuit::GROUND, Waveform::Dc(vdd));
        ckt.vsource("Vin", n_in, Circuit::GROUND, Waveform::Dc(0.0));
        ckt.fet(
            "MP",
            n_in,
            n_out,
            n_vdd,
            FinFet::new(lib.pfet(VtFlavor::Lvt).clone(), 1),
        );
        ckt.fet(
            "MN",
            n_in,
            n_out,
            Circuit::GROUND,
            FinFet::new(lib.nfet(VtFlavor::Lvt).clone(), 1),
        );

        // Input low -> output high.
        let sol = DcSolver::new().solve(&ckt).unwrap();
        assert!(
            sol.voltage(n_out).volts() > 0.44,
            "out = {}",
            sol.voltage(n_out)
        );

        // Input high -> output low.
        ckt.set_source_voltage("Vin", Voltage::from_volts(vdd))
            .unwrap();
        let sol = DcSolver::new().solve(&ckt).unwrap();
        assert!(
            sol.voltage(n_out).volts() < 0.01,
            "out = {}",
            sol.voltage(n_out)
        );
    }

    #[test]
    fn bistable_latch_respects_nodeset() {
        // Cross-coupled inverters; nodeset selects the stable state.
        let lib = DeviceLibrary::sevennm();
        let vdd = 0.45;
        let mut ckt = Circuit::new();
        let n_vdd = ckt.node("vdd");
        let q = ckt.node("q");
        let qb = ckt.node("qb");
        ckt.vsource("Vdd", n_vdd, Circuit::GROUND, Waveform::Dc(vdd));
        for (name, input, output) in [("l", qb, q), ("r", q, qb)] {
            ckt.fet(
                &format!("MP{name}"),
                input,
                output,
                n_vdd,
                FinFet::new(lib.pfet(VtFlavor::Hvt).clone(), 1),
            );
            ckt.fet(
                &format!("MN{name}"),
                input,
                output,
                Circuit::GROUND,
                FinFet::new(lib.nfet(VtFlavor::Hvt).clone(), 1),
            );
        }
        let sol0 = DcSolver::new()
            .nodeset(q, Voltage::ZERO)
            .nodeset(qb, Voltage::from_volts(vdd))
            .solve(&ckt)
            .unwrap();
        assert!(sol0.voltage(q).volts() < 0.05);
        assert!(sol0.voltage(qb).volts() > 0.40);

        let sol1 = DcSolver::new()
            .nodeset(q, Voltage::from_volts(vdd))
            .nodeset(qb, Voltage::ZERO)
            .solve(&ckt)
            .unwrap();
        assert!(sol1.voltage(q).volts() > 0.40);
        assert!(sol1.voltage(qb).volts() < 0.05);
    }

    #[test]
    fn bad_guess_length_is_reported() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V", a, Circuit::GROUND, Waveform::Dc(1.0));
        ckt.resistor("R", a, Circuit::GROUND, 1.0);
        let err = DcSolver::new().solve_with_guess(&ckt, &[0.0]).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidAnalysis(_)));
    }

    #[test]
    fn floating_node_gives_singular_or_gmin_solution() {
        // A node connected only through a capacitor is floating in DC;
        // the gmin shunt keeps the matrix solvable and parks it at 0 V.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V", a, Circuit::GROUND, Waveform::Dc(1.0));
        ckt.capacitor("C", a, b, 1e-15);
        let sol = DcSolver::new().solve(&ckt).unwrap();
        assert!(sol.voltage(b).volts().abs() < 1e-6);
    }
}
