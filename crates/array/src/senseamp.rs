//! Sense-amplifier model.
//!
//! A latch-type sense amplifier resolves a differential `ΔV_S` input to a
//! full-swing output. Its regeneration time constant is the inverter τ of
//! the periphery scaled by the positive-feedback gain; the resolution
//! delay follows the classical `τ_sa · ln(Vdd / ΔV_S)` form. Energy is the
//! internal latch plus output loading switching through `Vdd`.

use crate::Periphery;
use sram_units::{Energy, Time, Voltage};

/// Latch-type sense amplifier figures.
#[derive(Debug, Clone)]
pub struct SenseAmp {
    delay: Time,
    energy: Energy,
}

impl SenseAmp {
    /// Latch devices per side (internal sizing assumption).
    const LATCH_FINS: f64 = 2.0;

    /// Characterizes the sense amplifier for a sensing voltage `delta_vs`.
    #[must_use]
    pub fn new(periphery: &Periphery, delta_vs: Voltage) -> Self {
        let vdd = periphery.vdd();
        let gain_ratio = (vdd.volts() / delta_vs.volts()).max(1.0);
        let delay = periphery.tau() * (Self::LATCH_FINS * gain_ratio.ln());
        // Latch internal nodes (2 sides x latch fins) plus output buffers
        // switch through Vdd.
        let c_switch = (periphery.c_inverter_input() + periphery.c_inverter_output())
            * (2.0 * Self::LATCH_FINS);
        let energy = c_switch * vdd * vdd;
        Self { delay, energy }
    }

    /// Resolution delay `D_sense_amp`.
    #[must_use]
    pub fn delay(&self) -> Time {
        self.delay
    }

    /// Per-operation switching energy `E_sense_amp` (one amplifier).
    #[must_use]
    pub fn energy(&self) -> Energy {
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::DeviceLibrary;

    #[test]
    fn smaller_sensing_voltage_takes_longer() {
        let p = Periphery::new(&DeviceLibrary::sevennm());
        let coarse = SenseAmp::new(&p, Voltage::from_millivolts(120.0));
        let fine = SenseAmp::new(&p, Voltage::from_millivolts(40.0));
        assert!(fine.delay() > coarse.delay());
    }

    #[test]
    fn figures_are_physical() {
        let p = Periphery::new(&DeviceLibrary::sevennm());
        let sa = SenseAmp::new(&p, Voltage::from_millivolts(120.0));
        assert!(sa.delay().picoseconds() > 0.1 && sa.delay().picoseconds() < 100.0);
        assert!(sa.energy().joules() > 0.0);
    }

    #[test]
    fn regeneration_matches_latch_transient() {
        // Cross-validate the ln(Vdd/dV) model against a real latch: a
        // cross-coupled inverter pair preset (via hard pins) to a +/-dV/2
        // imbalance around mid-rail, then released in transient. The time
        // to a 90%-of-Vdd output separation is the simulated resolution
        // delay.
        use sram_device::{FinFet, VtFlavor};
        use sram_spice::{Circuit, DcSolver, Transient, Waveform};
        use sram_units::Time;

        let lib = DeviceLibrary::sevennm();
        let p = Periphery::new(&lib);
        let delta_vs = Voltage::from_millivolts(120.0);
        let model = SenseAmp::new(&p, delta_vs);

        let vdd = 0.45;
        let mut ckt = Circuit::new();
        let n_vdd = ckt.node("vdd");
        let op = ckt.node("outp");
        let on = ckt.node("outn");
        ckt.vsource("Vdd", n_vdd, Circuit::GROUND, Waveform::Dc(vdd));
        for (name, input, output) in [("p", on, op), ("n", op, on)] {
            ckt.fet(
                &format!("MP{name}"),
                input,
                output,
                n_vdd,
                FinFet::new(lib.pfet(VtFlavor::Lvt).clone(), 2),
            );
            ckt.fet(
                &format!("MN{name}"),
                input,
                output,
                Circuit::GROUND,
                FinFet::new(lib.nfet(VtFlavor::Lvt).clone(), 2),
            );
        }
        // Latch self-load: gates of the opposite side.
        let c_node = (p.c_inverter_input() + p.c_inverter_output()) * 2.0;
        ckt.capacitor("Cp", op, Circuit::GROUND, c_node.farads());
        ckt.capacitor("Cn", on, Circuit::GROUND, c_node.farads());

        let mid = vdd / 2.0;
        let dv = delta_vs.volts() / 2.0;
        let preset = DcSolver::new()
            .nodeset(op, Voltage::from_volts(mid + dv))
            .nodeset(on, Voltage::from_volts(mid - dv))
            .hold_pins();
        let trace = Transient::new(Time::from_picoseconds(20.0), Time::from_picoseconds(0.05))
            .with_initial_solver(preset)
            .run(&ckt)
            .unwrap()
            .into_trace();

        // The seeded side must win and regenerate to the rails.
        assert!(trace.final_voltage(op).volts() > 0.9 * vdd);
        assert!(trace.final_voltage(on).volts() < 0.1 * vdd);
        let t_resolve = (0..trace.len())
            .map(|k| {
                (
                    trace.times().nth(k).expect("sample"),
                    trace.voltage_at(op, trace.times().nth(k).expect("sample")),
                )
            })
            .find(|(t, _)| {
                (trace.voltage_at(op, *t).volts() - trace.voltage_at(on, *t).volts()) > 0.9 * vdd
            })
            .map(|(t, _)| t)
            .expect("latch resolves");
        let ratio = t_resolve / model.delay();
        assert!(
            ratio > 0.1 && ratio < 10.0,
            "model {} vs simulated {} (x{ratio:.2})",
            model.delay(),
            t_resolve
        );
    }
}
