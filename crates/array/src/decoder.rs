//! Row/column decoder delay and energy model.
//!
//! Table 3 uses `D_row_dec(log n_r)` and `D_col_dec(log(n_c/W))`: the
//! decoder cost is a function of its address width. We model an
//! AND-tree decoder in logical-effort terms:
//!
//! * **delay** — a 2-input NAND/NOR tree of depth `ceil(log2(bits))`
//!   plus an input buffer: `D(bits) = τ · (1 + 1.4 · depth)` (the 1.4
//!   factor is the effort+parasitic delay of a fanout-2 NAND stage);
//! * **energy** — the address buffers and one active decode path switch:
//!   `E(bits) = (2·bits + 2·depth) · C_inv · Vdd²` plus a small
//!   contribution from the `2^bits` first-level gates' shared predecode
//!   lines.
//!
//! A zero-bit decoder (single row, or no column mux) costs nothing.

use crate::Periphery;
use sram_units::{Energy, Time};

/// Decoder delay/energy as a function of address width.
#[derive(Debug, Clone)]
pub struct DecoderModel {
    periphery_tau: Time,
    c_inv: sram_units::Capacitance,
    vdd: sram_units::Voltage,
}

impl DecoderModel {
    /// Builds the decoder model from peripheral figures.
    #[must_use]
    pub fn new(periphery: &Periphery) -> Self {
        Self {
            periphery_tau: periphery.tau(),
            c_inv: periphery.c_inverter_input(),
            vdd: periphery.vdd(),
        }
    }

    fn depth(bits: u32) -> f64 {
        if bits <= 1 {
            f64::from(bits)
        } else {
            f64::from(32 - (bits - 1).leading_zeros()) // ceil(log2(bits))
        }
    }

    /// Propagation delay of a `bits`-wide decoder.
    #[must_use]
    pub fn delay(&self, bits: u32) -> Time {
        if bits == 0 {
            return Time::ZERO;
        }
        self.periphery_tau * (1.0 + 1.4 * Self::depth(bits))
    }

    /// Switching energy of one decode operation.
    #[must_use]
    pub fn energy(&self, bits: u32) -> Energy {
        if bits == 0 {
            return Energy::ZERO;
        }
        let gates = 2.0 * f64::from(bits)
            + 2.0 * Self::depth(bits)
            + 0.25 * 2f64.powi(bits as i32).min(1024.0);
        self.c_inv * gates * self.vdd * self.vdd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::DeviceLibrary;

    fn model() -> DecoderModel {
        DecoderModel::new(&Periphery::new(&DeviceLibrary::sevennm()))
    }

    #[test]
    fn zero_bits_cost_nothing() {
        let m = model();
        assert_eq!(m.delay(0), Time::ZERO);
        assert_eq!(m.energy(0), Energy::ZERO);
    }

    #[test]
    fn delay_grows_logarithmically() {
        let m = model();
        let d2 = m.delay(2);
        let d8 = m.delay(8);
        let d10 = m.delay(10);
        assert!(d8 > d2);
        // log2(8) = 3, log2(10) -> ceil = 4: one extra stage only.
        assert!(d10 > d8);
        assert!((d10 - d8) < (d8 - d2));
    }

    #[test]
    fn energy_grows_with_width() {
        let m = model();
        assert!(m.energy(9) > m.energy(4));
        assert!(m.energy(4) > m.energy(1));
    }

    #[test]
    fn depth_computation() {
        assert_eq!(DecoderModel::depth(0), 0.0);
        assert_eq!(DecoderModel::depth(1), 1.0);
        assert_eq!(DecoderModel::depth(2), 1.0);
        assert_eq!(DecoderModel::depth(5), 3.0);
        assert_eq!(DecoderModel::depth(8), 3.0);
        assert_eq!(DecoderModel::depth(9), 4.0);
    }
}
