//! Technology-level constants: wire geometry and converter efficiency.

use sram_units::Capacitance;

/// Layout and interconnect constants of the 7 nm node, as the paper uses
/// them in Section 5.
///
/// * `P_Metal = 43 nm` — metal pitch, scaled from Intel's 14 nm node;
/// * `C_w = 0.17 fF/µm` — wire capacitance per micron (ITRS 2012, 7 nm);
/// * cell width spans 5 metal pitches (`C_width = 5·P_Metal·C_w`), cell
///   height is 0.4× the width (Fig. 1(b) layout) — the 2.5:1 aspect ratio
///   that biases optimal arrays toward fewer columns;
/// * a DC-DC inefficiency factor multiplying assist-rail energies.
///
/// # Examples
///
/// ```
/// use sram_array::TechnologyParams;
///
/// let tech = TechnologyParams::sevennm();
/// assert!((tech.cell_width_cap().attofarads() - 36.55).abs() < 0.01);
/// assert!((tech.cell_height_cap().attofarads() - 14.62).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyParams {
    /// Metal pitch in meters.
    pub metal_pitch: f64,
    /// Wire capacitance per meter (F/m).
    pub wire_cap_per_meter: f64,
    /// Cell width in metal pitches (5 for the 6T layout of Fig. 1(b)).
    pub cell_width_pitches: f64,
    /// Cell height as a fraction of the width (0.4).
    pub cell_height_ratio: f64,
    /// Multiplier on assist-rail energies accounting for DC-DC converter
    /// inefficiency (Section 5; 1.25 ≙ 80 % efficiency).
    pub dcdc_overhead: f64,
}

/// `P_Metal` = 43 nm, in meters.
const METAL_PITCH_METERS: f64 = 43e-9;
/// `C_w` = 0.17 fF/µm, converted to farads per meter.
const WIRE_CAP_FARADS_PER_METER: f64 = 0.17e-15 / 1e-6;

impl TechnologyParams {
    /// The paper's 7 nm constants.
    #[must_use]
    pub fn sevennm() -> Self {
        Self {
            metal_pitch: METAL_PITCH_METERS,
            wire_cap_per_meter: WIRE_CAP_FARADS_PER_METER,
            cell_width_pitches: 5.0,
            cell_height_ratio: 0.4,
            dcdc_overhead: 1.25,
        }
    }

    /// Wire capacitance across one cell width,
    /// `C_width = 5 · P_Metal · C_w`.
    #[must_use]
    pub fn cell_width_cap(&self) -> Capacitance {
        Capacitance::from_farads(
            self.cell_width_pitches * self.metal_pitch * self.wire_cap_per_meter,
        )
    }

    /// Wire capacitance across one cell height,
    /// `C_height = 0.4 · C_width`.
    #[must_use]
    pub fn cell_height_cap(&self) -> Capacitance {
        self.cell_width_cap() * self.cell_height_ratio
    }
}

impl Default for TechnologyParams {
    fn default() -> Self {
        Self::sevennm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let t = TechnologyParams::sevennm();
        // C_width = 5 * 43 nm * 0.17 fF/um = 36.55 aF.
        assert!((t.cell_width_cap().attofarads() - 36.55).abs() < 0.01);
        assert!((t.cell_height_cap().attofarads() - 0.4 * 36.55).abs() < 0.01);
        assert!(t.dcdc_overhead > 1.0);
    }

    #[test]
    fn default_is_sevennm() {
        assert_eq!(TechnologyParams::default(), TechnologyParams::sevennm());
    }
}
