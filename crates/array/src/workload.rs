//! Access traces: grounding the paper's α/β workload abstraction.
//!
//! Section 4 folds the workload into two numbers — the activity factor
//! `α` (probability of an access per cycle) and the read ratio `β`.
//! This module makes that abstraction operational: an [`AccessTrace`]
//! records what a client actually did, exposes the `α`/`β` it implies,
//! and evaluates the *exact* per-trace energy so Eq. (3)/(5)'s blended
//! estimate can be validated against it.

use crate::{ArrayMetrics, ArrayParams};
use sram_units::{Energy, Power, Time};

/// One array cycle's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A read access.
    Read,
    /// A write access.
    Write,
    /// An idle cycle (the array only leaks).
    Idle,
}

/// A sequence of array cycles.
///
/// # Examples
///
/// ```
/// use sram_array::{Access, AccessTrace};
///
/// let trace = AccessTrace::from_counts(30, 10, 60);
/// assert!((trace.activity_factor() - 0.4).abs() < 1e-12);
/// assert!((trace.read_ratio() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessTrace {
    reads: usize,
    writes: usize,
    idles: usize,
}

impl AccessTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trace from aggregate counts.
    #[must_use]
    pub fn from_counts(reads: usize, writes: usize, idles: usize) -> Self {
        Self {
            reads,
            writes,
            idles,
        }
    }

    /// Builds a trace from a cycle-by-cycle sequence.
    #[must_use]
    pub fn from_cycles<I: IntoIterator<Item = Access>>(cycles: I) -> Self {
        let mut t = Self::new();
        for c in cycles {
            t.push(c);
        }
        t
    }

    /// Appends one cycle.
    pub fn push(&mut self, access: Access) {
        match access {
            Access::Read => self.reads += 1,
            Access::Write => self.writes += 1,
            Access::Idle => self.idles += 1,
        }
    }

    /// Total cycle count.
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.reads + self.writes + self.idles
    }

    /// Read cycles.
    #[must_use]
    pub fn reads(&self) -> usize {
        self.reads
    }

    /// Write cycles.
    #[must_use]
    pub fn writes(&self) -> usize {
        self.writes
    }

    /// The activity factor `α` this trace implies (accesses per cycle).
    ///
    /// Returns 0 for an empty trace.
    #[must_use]
    pub fn activity_factor(&self) -> f64 {
        if self.cycles() == 0 {
            return 0.0;
        }
        (self.reads + self.writes) as f64 / self.cycles() as f64
    }

    /// The read ratio `β` this trace implies (reads per access).
    ///
    /// Returns the paper's 0.5 default for a trace with no accesses.
    #[must_use]
    pub fn read_ratio(&self) -> f64 {
        let accesses = self.reads + self.writes;
        if accesses == 0 {
            return 0.5;
        }
        self.reads as f64 / accesses as f64
    }

    /// Folds this trace's `α`/`β` into a copy of `params` — the bridge
    /// from measured workloads to the paper's Eq. (3)/(5).
    #[must_use]
    pub fn to_params(&self, base: &ArrayParams) -> ArrayParams {
        ArrayParams {
            activity: self.activity_factor(),
            read_ratio: self.read_ratio(),
            ..*base
        }
    }

    /// Exact energy of running this trace on an evaluated design: each
    /// read/write pays its own switching energy, every cycle pays the
    /// full-array leakage over one cycle time (Eq. (4) per cycle).
    #[must_use]
    pub fn energy(&self, metrics: &ArrayMetrics) -> Energy {
        let e_rd = metrics.read_energy_breakdown.total();
        let e_wr = metrics.write_energy_breakdown.total();
        let leak_per_cycle = metrics.leakage_energy; // M * P_leak * D_array
        e_rd * self.reads as f64 + e_wr * self.writes as f64 + leak_per_cycle * self.cycles() as f64
    }

    /// Wall-clock duration of the trace at the design's cycle time.
    #[must_use]
    pub fn duration(&self, metrics: &ArrayMetrics) -> Time {
        metrics.delay * self.cycles() as f64
    }

    /// Average power over the trace.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace (no duration).
    #[must_use]
    pub fn average_power(&self, metrics: &ArrayMetrics) -> Power {
        assert!(self.cycles() > 0, "empty trace has no duration");
        self.energy(metrics) / self.duration(metrics)
    }
}

impl Extend<Access> for AccessTrace {
    fn extend<I: IntoIterator<Item = Access>>(&mut self, iter: I) {
        for a in iter {
            self.push(a);
        }
    }
}

impl FromIterator<Access> for AccessTrace {
    fn from_iter<I: IntoIterator<Item = Access>>(iter: I) -> Self {
        Self::from_cycles(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrayModel, ArrayOrganization, Periphery};
    use sram_cell::CellCharacterization;
    use sram_device::DeviceLibrary;

    fn metrics() -> ArrayMetrics {
        let lib = DeviceLibrary::sevennm();
        let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
        let periphery = Periphery::new(&lib);
        let params = ArrayParams::paper_defaults();
        ArrayModel::new(
            ArrayOrganization::new(128, 64, 64).unwrap(),
            &cell,
            &periphery,
            &params,
        )
        .with_precharge_fins(12)
        .evaluate()
        .unwrap()
    }

    #[test]
    fn alpha_beta_from_cycles() {
        let t: AccessTrace = [
            Access::Read,
            Access::Idle,
            Access::Write,
            Access::Read,
            Access::Idle,
            Access::Idle,
        ]
        .into_iter()
        .collect();
        assert_eq!(t.cycles(), 6);
        assert!((t.activity_factor() - 0.5).abs() < 1e-12);
        assert!((t.read_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_degenerates_gracefully() {
        let t = AccessTrace::new();
        assert_eq!(t.activity_factor(), 0.0);
        assert_eq!(t.read_ratio(), 0.5);
        assert_eq!(t.energy(&metrics()), Energy::ZERO);
    }

    #[test]
    fn trace_energy_matches_eq5_blend() {
        // A trace whose alpha/beta equal the paper defaults must, per
        // cycle, reproduce Eq. (5): alpha*E_sw + E_leak.
        let m = metrics();
        let t = AccessTrace::from_counts(25, 25, 50); // alpha=0.5, beta=0.5
        let per_cycle = t.energy(&m) / t.cycles() as f64;
        let eq5 = m.switching_energy * 0.5 + m.leakage_energy;
        assert!(
            (per_cycle.joules() - eq5.joules()).abs() < 1e-9 * eq5.joules(),
            "trace {per_cycle:?} vs Eq.5 {eq5:?}"
        );
    }

    #[test]
    fn to_params_round_trips_through_the_model() {
        // Evaluating the model with trace-derived params equals the
        // trace's own per-cycle energy.
        let lib = DeviceLibrary::sevennm();
        let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
        let periphery = Periphery::new(&lib);
        let base = ArrayParams::paper_defaults();
        let t = AccessTrace::from_counts(60, 20, 20); // alpha=0.8, beta=0.75
        let params = t.to_params(&base);
        let m = ArrayModel::new(
            ArrayOrganization::new(128, 64, 64).unwrap(),
            &cell,
            &periphery,
            &params,
        )
        .with_precharge_fins(12)
        .evaluate()
        .unwrap();
        let per_cycle = t.energy(&m) / t.cycles() as f64;
        assert!((per_cycle.joules() - m.energy.joules()).abs() < 1e-9 * m.energy.joules());
    }

    #[test]
    fn read_heavy_traces_cost_more_than_idle_ones() {
        let m = metrics();
        let busy = AccessTrace::from_counts(90, 10, 0);
        let quiet = AccessTrace::from_counts(5, 5, 90);
        assert!(busy.energy(&m) > quiet.energy(&m));
        assert!(busy.average_power(&m) > quiet.average_power(&m));
    }
}
