//! Analytical SRAM array delay/energy model (paper Section 4).
//!
//! Implements the paper's array model verbatim, with assist-technique
//! awareness:
//!
//! * **Table 1** — interconnect capacitances `C_CVDD`, `C_CVSS`, `C_WL`,
//!   `C_COL`, `C_BL` from the cell layout geometry (`C_width =
//!   5·P_Metal·C_w`, `C_height = 0.4·C_width`) and device terminal
//!   capacitances ([`WireCapacitances`]);
//! * **Table 2** — the `C/V/ΔV/I` quadruples of every interconnect
//!   component, evaluated through Eq. (1): `D = C·ΔV/I`,
//!   `E_sw = C·V·ΔV` ([`components`]);
//! * **Table 3** — read/write delay and switching-energy composition,
//!   including decoder, driver (a 4-stage superbuffer, sized by logical
//!   effort and spice-verified), sense amplifier and cell-write terms
//!   ([`ArrayModel`]);
//! * **Equations (2)–(5)** — `D_array = max(D_rd, D_wr)`, the α/β access
//!   mix, and the leakage energy `M · P_leak · D_array`.
//!
//! The cell-dependent quantities (`I_read`, `P_leak,sram`,
//! `D_write_sram(V_WL)`) come from a [`sram_cell::CellCharacterization`]
//! look-up table, so evaluating a design point is pure arithmetic — the
//! property that makes the exhaustive co-optimization search of `sram-coopt`
//! finish in seconds.
//!
//! # Examples
//!
//! ```
//! use sram_array::{ArrayModel, ArrayOrganization, ArrayParams, Periphery};
//! use sram_cell::CellCharacterization;
//! use sram_device::DeviceLibrary;
//! use sram_units::Voltage;
//!
//! # fn main() -> Result<(), sram_array::ArrayError> {
//! let lib = DeviceLibrary::sevennm();
//! let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
//! let periphery = Periphery::new(&lib);
//! let params = ArrayParams::paper_defaults();
//!
//! let org = ArrayOrganization::new(512, 64, 64)?; // 4 KB array
//! let model = ArrayModel::new(org, &cell, &periphery, &params)
//!     .with_precharge_fins(25)
//!     .with_write_fins(3)
//!     .with_vssc(Voltage::from_millivolts(-240.0));
//! let metrics = model.evaluate()?;
//! assert!(metrics.delay.seconds() > 0.0);
//! assert!(metrics.edp().joule_seconds() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
pub mod components;
mod decoder;
mod driver;
mod error;
mod macro_model;
mod model;
mod organization;
mod periphery;
mod senseamp;
mod technology;
mod wire;
mod workload;

pub use area::ArrayFloorplan;
pub use decoder::DecoderModel;
pub use driver::Superbuffer;
pub use error::ArrayError;
pub use macro_model::{OperationLedger, SramMacro};
pub use model::{
    ArrayMetrics, ArrayModel, ArrayParams, DelayBreakdown, EnergyAccounting, EnergyBreakdown,
};
pub use organization::{ArrayOrganization, Capacity};
pub use periphery::Periphery;
pub use senseamp::SenseAmp;
pub use technology::TechnologyParams;
pub use wire::WireCapacitances;
pub use workload::{Access, AccessTrace};
