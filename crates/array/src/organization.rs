//! Array organization: rows, columns, word width.

use crate::ArrayError;

/// Memory capacity, counted in bits.
///
/// # Examples
///
/// ```
/// use sram_array::Capacity;
///
/// let c = Capacity::from_bytes(4096);
/// assert_eq!(c.bits(), 32_768);
/// assert_eq!(c.to_string(), "4 KB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Capacity(usize);

impl Capacity {
    /// Capacity of `bits` bits.
    #[must_use]
    pub const fn from_bits(bits: usize) -> Self {
        Self(bits)
    }

    /// Capacity of `bytes` bytes.
    #[must_use]
    pub const fn from_bytes(bytes: usize) -> Self {
        Self(bytes * 8)
    }

    /// Total bit count `M`.
    #[must_use]
    pub const fn bits(self) -> usize {
        self.0
    }

    /// Total byte count (rounded down).
    #[must_use]
    pub const fn bytes(self) -> usize {
        self.0 / 8
    }
}

impl core::fmt::Display for Capacity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let bytes = self.bytes();
        if bytes >= 1024 && bytes.is_multiple_of(1024) {
            write!(f, "{} KB", bytes / 1024)
        } else {
            write!(f, "{bytes} B")
        }
    }
}

/// An SRAM array organized as `n_r × n_c` bits accessing `W` bits per
/// cycle.
///
/// Invariants (paper Section 4): `n_r` and `n_c` are powers of two; a
/// column multiplexer exists exactly when `n_c > W`.
///
/// # Examples
///
/// ```
/// use sram_array::ArrayOrganization;
///
/// # fn main() -> Result<(), sram_array::ArrayError> {
/// let org = ArrayOrganization::new(256, 128, 64)?;
/// assert_eq!(org.capacity().bits(), 32_768);
/// assert!(org.has_column_mux());
/// assert_eq!(org.row_address_bits(), 8);
/// assert_eq!(org.column_address_bits(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayOrganization {
    rows: u32,
    cols: u32,
    word_bits: u32,
}

impl ArrayOrganization {
    /// Creates an organization with `rows × cols` cells and `W = word_bits`
    /// bits per access.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidOrganization`] unless all three values
    /// are powers of two, non-zero, and `word_bits ≤ cols` is *not*
    /// required (an array narrower than the word is invalid though:
    /// `cols ≥ word_bits` must hold, since `W` bits are accessed per
    /// cycle).
    pub fn new(rows: u32, cols: u32, word_bits: u32) -> Result<Self, ArrayError> {
        for (name, v) in [("rows", rows), ("cols", cols), ("word_bits", word_bits)] {
            if v == 0 || !v.is_power_of_two() {
                return Err(ArrayError::InvalidOrganization(format!(
                    "{name} must be a non-zero power of two, got {v}"
                )));
            }
        }
        if cols < word_bits {
            return Err(ArrayError::InvalidOrganization(format!(
                "cols ({cols}) must be at least the word width ({word_bits})"
            )));
        }
        Ok(Self {
            rows,
            cols,
            word_bits,
        })
    }

    /// Enumerates every valid organization of `capacity` with row counts
    /// in `rows_range` (inclusive of powers of two within the range) —
    /// the paper's `n_r ∈ {2^1 … 2^10}` sweep.
    #[must_use]
    pub fn enumerate(
        capacity: Capacity,
        word_bits: u32,
        rows_range: (u32, u32),
    ) -> Vec<ArrayOrganization> {
        let mut out = Vec::new();
        let mut rows = rows_range.0.next_power_of_two().max(1);
        while rows <= rows_range.1 {
            let bits = capacity.bits();
            if bits.is_multiple_of(rows as usize) {
                let cols = bits / rows as usize;
                if cols <= u32::MAX as usize {
                    if let Ok(org) = ArrayOrganization::new(rows, cols as u32, word_bits) {
                        out.push(org);
                    }
                }
            }
            rows *= 2;
        }
        out
    }

    /// Number of rows `n_r`.
    #[must_use]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns `n_c`.
    #[must_use]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Word width `W` in bits.
    #[must_use]
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Total capacity `M = n_r · n_c`.
    #[must_use]
    pub fn capacity(&self) -> Capacity {
        Capacity::from_bits(self.rows as usize * self.cols as usize)
    }

    /// `true` when `n_c > W`: a column decoder/multiplexer is required and
    /// data passes through two series transmission gates (Section 4).
    #[must_use]
    pub fn has_column_mux(&self) -> bool {
        self.cols > self.word_bits
    }

    /// Row-decoder address width, `log2(n_r)`.
    #[must_use]
    pub fn row_address_bits(&self) -> u32 {
        self.rows.trailing_zeros()
    }

    /// Column-decoder address width, `log2(n_c / W)` (0 without a mux).
    #[must_use]
    pub fn column_address_bits(&self) -> u32 {
        if self.has_column_mux() {
            (self.cols / self.word_bits).trailing_zeros()
        } else {
            0
        }
    }
}

impl core::fmt::Display for ArrayOrganization {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{} (W={})", self.rows, self.cols, self.word_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_powers_of_two() {
        assert!(ArrayOrganization::new(100, 64, 64).is_err());
        assert!(ArrayOrganization::new(128, 0, 64).is_err());
        assert!(ArrayOrganization::new(128, 48, 16).is_err());
    }

    #[test]
    fn rejects_cols_narrower_than_word() {
        assert!(ArrayOrganization::new(128, 32, 64).is_err());
    }

    #[test]
    fn address_bits() {
        let org = ArrayOrganization::new(512, 256, 64).unwrap();
        assert_eq!(org.row_address_bits(), 9);
        assert_eq!(org.column_address_bits(), 2);
        assert!(org.has_column_mux());

        let flat = ArrayOrganization::new(64, 64, 64).unwrap();
        assert_eq!(flat.column_address_bits(), 0);
        assert!(!flat.has_column_mux());
    }

    #[test]
    fn capacity_arithmetic_and_display() {
        assert_eq!(Capacity::from_bytes(128).bits(), 1024);
        assert_eq!(Capacity::from_bytes(128).to_string(), "128 B");
        assert_eq!(Capacity::from_bytes(16 * 1024).to_string(), "16 KB");
        let org = ArrayOrganization::new(512, 256, 64).unwrap();
        assert_eq!(org.capacity(), Capacity::from_bytes(16 * 1024));
    }

    #[test]
    fn enumerate_covers_the_paper_sweep() {
        // 1 KB = 8192 bits; n_r in 2..1024.
        let orgs = ArrayOrganization::enumerate(Capacity::from_bytes(1024), 64, (2, 1024));
        // Valid: rows in {2..1024}, cols = 8192/rows >= 64 -> rows <= 128.
        let rows: Vec<u32> = orgs.iter().map(|o| o.rows()).collect();
        assert_eq!(rows, vec![2, 4, 8, 16, 32, 64, 128]);
        for org in &orgs {
            assert_eq!(org.capacity().bits(), 8192);
        }
    }

    #[test]
    fn display_formats() {
        let org = ArrayOrganization::new(128, 64, 64).unwrap();
        assert_eq!(org.to_string(), "128x64 (W=64)");
    }
}
