//! Peripheral-device figures: the LVT device quantities Tables 1 and 2
//! depend on.
//!
//! Peripheral circuits (decoders, drivers, prechargers, write buffers,
//! sense amplifiers) are always built from **LVT** devices in the paper,
//! regardless of the cell flavor. This module extracts the per-fin
//! capacitances and drive currents those tables reference:
//!
//! * `C_dn`, `C_dp`, `C_gn`, `C_gp` — drain/gate capacitances of
//!   single-fin N/P devices (Table 1);
//! * `I_ON,PFET`, `I_ON,TG` — per-fin ON currents (Table 2);
//! * `I_CVDD(V_DDC)`, `I_CVSS(V_SSC)`, `I_WL(V_WL)` — rail-driver currents
//!   at assist voltage levels (Table 2);
//! * the minimum-inverter time constant τ used by the logical-effort
//!   sizing of decoders and superbuffers.

use sram_device::{DeviceLibrary, FinFet, VtFlavor};
use sram_units::{Capacitance, Current, Time, Voltage};

/// Per-fin LVT peripheral-device figures at a given supply.
#[derive(Debug, Clone)]
pub struct Periphery {
    vdd: Voltage,
    nfet: FinFet,
    pfet: FinFet,
}

impl Periphery {
    /// Extracts peripheral figures from a device library at its nominal
    /// supply.
    #[must_use]
    pub fn new(library: &DeviceLibrary) -> Self {
        Self::at_supply(library, library.nominal_vdd())
    }

    /// Extracts peripheral figures at an explicit supply (dynamic voltage
    /// scaling studies).
    #[must_use]
    pub fn at_supply(library: &DeviceLibrary, vdd: Voltage) -> Self {
        Self {
            vdd,
            nfet: FinFet::new(library.nfet(VtFlavor::Lvt).clone(), 1),
            pfet: FinFet::new(library.pfet(VtFlavor::Lvt).clone(), 1),
        }
    }

    /// Supply voltage of the periphery.
    #[must_use]
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// Per-fin NFET drain capacitance `C_dn`.
    #[must_use]
    pub fn cdn(&self) -> Capacitance {
        self.nfet.c_drain()
    }

    /// Per-fin PFET drain capacitance `C_dp`.
    #[must_use]
    pub fn cdp(&self) -> Capacitance {
        self.pfet.c_drain()
    }

    /// Per-fin NFET gate capacitance `C_gn`.
    #[must_use]
    pub fn cgn(&self) -> Capacitance {
        self.nfet.c_gate()
    }

    /// Per-fin PFET gate capacitance `C_gp`.
    #[must_use]
    pub fn cgp(&self) -> Capacitance {
        self.pfet.c_gate()
    }

    /// Per-fin PFET ON current `I_ON,PFET` at the nominal supply.
    #[must_use]
    pub fn ion_pfet(&self) -> Current {
        self.pfet.ids(self.vdd, self.vdd)
    }

    /// Per-fin NFET ON current at the nominal supply.
    #[must_use]
    pub fn ion_nfet(&self) -> Current {
        self.nfet.ids(self.vdd, self.vdd)
    }

    /// Per-fin transmission-gate ON current `I_ON,TG`.
    ///
    /// For the write-relevant direction (pulling a precharged bitline
    /// low) the NFET sees a full, constant `Vgs = Vdd` for the whole
    /// swing while the PFET conducts only over the upper half, so the
    /// effective drive averages to `I_N + I_P/2`.
    #[must_use]
    pub fn ion_tg(&self) -> Current {
        self.ion_nfet() + self.ion_pfet() * 0.5
    }

    /// Rail-driver current `I_CVDD(V_DDC)`: per-fin PFET sourcing the
    /// boosted cell-supply rail (gate grounded, full `V_DDC` swing).
    #[must_use]
    pub fn i_cvdd(&self, vddc: Voltage) -> Current {
        self.pfet.ids(vddc, vddc)
    }

    /// Rail-driver current `I_CVSS(V_SSC)`: per-fin NFET pulling the cell
    /// ground rail down to `V_SSC`; its gate is driven at `Vdd` while its
    /// source sits at the negative rail, so both `Vgs` and `Vds` grow with
    /// `|V_SSC|`.
    #[must_use]
    pub fn i_cvss(&self, vssc: Voltage) -> Current {
        let swing = self.vdd - vssc;
        self.nfet.ids(swing, swing)
    }

    /// Wordline-driver current `I_WL(V_WL)`: per-fin PFET of the last
    /// driver stage, supplied from the `V_WL` rail (Fig. 6).
    #[must_use]
    pub fn i_wl(&self, vwl: Voltage) -> Current {
        self.pfet.ids(vwl, vwl)
    }

    /// Minimum-inverter time constant τ: the delay scale of logical-effort
    /// sizing, `τ = C_inv · Vdd / (2 · I_drive)` with
    /// `C_inv = C_gn + C_gp` and the average N/P drive.
    #[must_use]
    pub fn tau(&self) -> Time {
        let c_inv = self.cgn() + self.cgp();
        let i_avg = (self.ion_nfet() + self.ion_pfet()) * 0.5;
        c_inv * (self.vdd * 0.5) / i_avg
    }

    /// Input capacitance of a minimum (1-fin N + 1-fin P) inverter.
    #[must_use]
    pub fn c_inverter_input(&self) -> Capacitance {
        self.cgn() + self.cgp()
    }

    /// Output (self-load) capacitance of a minimum inverter.
    #[must_use]
    pub fn c_inverter_output(&self) -> Capacitance {
        self.cdn() + self.cdp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periphery() -> Periphery {
        Periphery::new(&DeviceLibrary::sevennm())
    }

    #[test]
    fn capacitances_are_single_fin() {
        let p = periphery();
        let lib = DeviceLibrary::sevennm();
        assert_eq!(p.cgn(), lib.nfet(VtFlavor::Lvt).c_gate_per_fin);
        assert_eq!(p.cdp(), lib.pfet(VtFlavor::Lvt).c_drain_per_fin);
    }

    #[test]
    fn tau_is_sub_picosecond_scale() {
        let tau = periphery().tau();
        assert!(
            tau.picoseconds() > 0.05 && tau.picoseconds() < 5.0,
            "tau = {tau}"
        );
    }

    #[test]
    fn rail_driver_currents_grow_with_assist_level() {
        let p = periphery();
        assert!(
            p.i_cvdd(Voltage::from_millivolts(640.0)) > p.i_cvdd(Voltage::from_millivolts(550.0))
        );
        assert!(
            p.i_cvss(Voltage::from_millivolts(-240.0)) > p.i_cvss(Voltage::ZERO),
            "a deeper negative rail gives the NFET more overdrive"
        );
        assert!(p.i_wl(Voltage::from_millivolts(540.0)) > p.i_wl(Voltage::from_millivolts(450.0)));
    }

    #[test]
    fn tg_current_exceeds_either_device_alone() {
        // I_N + I_P/2: both devices conduct over the upper half-swing.
        let p = periphery();
        let tg = p.ion_tg();
        assert!(tg > p.ion_nfet());
        assert!(tg > p.ion_pfet());
        assert!(tg < p.ion_nfet() + p.ion_pfet());
    }
}
