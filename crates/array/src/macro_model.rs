//! A behavioral SRAM macro: functional storage plus an energy/time
//! ledger driven by the evaluated array metrics.
//!
//! This is the integration surface a system simulator would use: it
//! stores actual bits, decodes word addresses against the organization,
//! and charges every operation with the delay/energy the analytical
//! model assigned — turning the paper's static design point into a
//! runnable component.

use crate::{ArrayError, ArrayMetrics, ArrayOrganization};
use sram_units::{Energy, Time};

/// A functional, energy-accounted SRAM macro.
///
/// # Examples
///
/// ```
/// use sram_array::{ArrayModel, ArrayOrganization, ArrayParams, Periphery, SramMacro};
/// use sram_cell::CellCharacterization;
/// use sram_device::DeviceLibrary;
///
/// # fn main() -> Result<(), sram_array::ArrayError> {
/// let lib = DeviceLibrary::sevennm();
/// let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
/// let periphery = Periphery::new(&lib);
/// let params = ArrayParams::paper_defaults();
/// let org = ArrayOrganization::new(128, 64, 64)?;
/// let metrics = ArrayModel::new(org, &cell, &periphery, &params).evaluate()?;
///
/// let mut mem = SramMacro::new(org, metrics);
/// mem.write(3, 0xdead_beef_cafe_f00d)?;
/// assert_eq!(mem.read(3)?, 0xdead_beef_cafe_f00d);
/// assert!(mem.ledger().energy.joules() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SramMacro {
    organization: ArrayOrganization,
    metrics: ArrayMetrics,
    words: Vec<u64>,
    ledger: OperationLedger,
}

/// Accumulated cost of the operations performed on a macro.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OperationLedger {
    /// Completed read operations.
    pub reads: usize,
    /// Completed write operations.
    pub writes: usize,
    /// Explicit idle cycles.
    pub idle_cycles: usize,
    /// Total busy + idle time at the design's cycle time.
    pub elapsed: Time,
    /// Total switching + leakage energy.
    pub energy: Energy,
}

impl SramMacro {
    /// Creates a zero-initialized macro for an organization whose word
    /// width is at most 64 bits (one `u64` per word).
    ///
    /// # Panics
    ///
    /// Panics when the organization's word width exceeds 64 bits.
    #[must_use]
    pub fn new(organization: ArrayOrganization, metrics: ArrayMetrics) -> Self {
        assert!(
            organization.word_bits() <= 64,
            "behavioral model stores one u64 per word"
        );
        let words = organization.capacity().bits() / organization.word_bits() as usize;
        Self {
            organization,
            metrics,
            words: vec![0; words],
            ledger: OperationLedger::default(),
        }
    }

    /// Number of addressable words.
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The organization backing this macro.
    #[must_use]
    pub fn organization(&self) -> ArrayOrganization {
        self.organization
    }

    /// The accumulated operation ledger.
    #[must_use]
    pub fn ledger(&self) -> &OperationLedger {
        &self.ledger
    }

    fn word_mask(&self) -> u64 {
        let w = self.organization.word_bits();
        if w == 64 {
            u64::MAX
        } else {
            (1u64 << w) - 1
        }
    }

    fn check_address(&self, address: usize) -> Result<(), ArrayError> {
        if address >= self.words.len() {
            return Err(ArrayError::InvalidParameter {
                name: "address",
                constraint: format!(
                    "address {address} out of range (word count {})",
                    self.words.len()
                ),
            });
        }
        Ok(())
    }

    /// Reads the word at `address`, charging one read cycle.
    ///
    /// # Errors
    ///
    /// [`ArrayError::InvalidParameter`] for an out-of-range address
    /// (no cost is charged).
    pub fn read(&mut self, address: usize) -> Result<u64, ArrayError> {
        self.check_address(address)?;
        self.ledger.reads += 1;
        self.ledger.elapsed += self.metrics.delay;
        self.ledger.energy +=
            self.metrics.read_energy_breakdown.total() + self.metrics.leakage_energy;
        Ok(self.words[address])
    }

    /// Writes `value` (masked to the word width) at `address`, charging
    /// one write cycle. Returns the previous word.
    ///
    /// # Errors
    ///
    /// [`ArrayError::InvalidParameter`] for an out-of-range address
    /// (no cost is charged).
    pub fn write(&mut self, address: usize, value: u64) -> Result<u64, ArrayError> {
        self.check_address(address)?;
        self.ledger.writes += 1;
        self.ledger.elapsed += self.metrics.delay;
        self.ledger.energy +=
            self.metrics.write_energy_breakdown.total() + self.metrics.leakage_energy;
        let old = self.words[address];
        self.words[address] = value & self.word_mask();
        Ok(old)
    }

    /// Advances `cycles` idle cycles: only leakage is charged.
    pub fn idle(&mut self, cycles: usize) {
        self.ledger.idle_cycles += cycles;
        self.ledger.elapsed += self.metrics.delay * cycles as f64;
        self.ledger.energy += self.metrics.leakage_energy * cycles as f64;
    }

    /// Average power over everything done so far.
    ///
    /// # Panics
    ///
    /// Panics before any operation (no elapsed time).
    #[must_use]
    pub fn average_power(&self) -> sram_units::Power {
        assert!(
            self.ledger.elapsed.seconds() > 0.0,
            "no operations performed yet"
        );
        self.ledger.energy / self.ledger.elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrayModel, ArrayParams, Periphery};
    use sram_cell::CellCharacterization;
    use sram_device::DeviceLibrary;

    fn make(rows: u32, cols: u32, word: u32) -> SramMacro {
        let lib = DeviceLibrary::sevennm();
        let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
        let periphery = Periphery::new(&lib);
        let params = ArrayParams::paper_defaults();
        let org = ArrayOrganization::new(rows, cols, word).unwrap();
        let metrics = ArrayModel::new(org, &cell, &periphery, &params)
            .with_precharge_fins(10)
            .evaluate()
            .unwrap();
        SramMacro::new(org, metrics)
    }

    #[test]
    fn stores_and_recalls_every_word() {
        let mut mem = make(128, 64, 64);
        assert_eq!(mem.word_count(), 128);
        for a in 0..mem.word_count() {
            mem.write(a, (a as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .unwrap();
        }
        for a in 0..mem.word_count() {
            assert_eq!(
                mem.read(a).unwrap(),
                (a as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            );
        }
        assert_eq!(mem.ledger().reads, 128);
        assert_eq!(mem.ledger().writes, 128);
    }

    #[test]
    fn narrow_words_are_masked() {
        // 128x64 with W=16: 512 words of 16 bits.
        let mut mem = make(128, 64, 16);
        assert_eq!(mem.word_count(), 512);
        mem.write(7, 0xffff_ffff).unwrap();
        assert_eq!(mem.read(7).unwrap(), 0xffff);
    }

    #[test]
    fn out_of_range_addresses_cost_nothing() {
        let mut mem = make(64, 64, 64);
        let before = *mem.ledger();
        assert!(mem.read(64).is_err());
        assert!(mem.write(9999, 1).is_err());
        assert_eq!(*mem.ledger(), before);
    }

    #[test]
    fn ledger_matches_trace_accounting() {
        // The macro's ledger must agree with AccessTrace::energy for the
        // same operation mix.
        use crate::AccessTrace;
        let mut mem = make(128, 64, 64);
        for a in 0..10 {
            mem.write(a, 1).unwrap();
        }
        for a in 0..30 {
            mem.read(a % 10).unwrap();
        }
        mem.idle(60);
        let trace = AccessTrace::from_counts(30, 10, 60);
        let lib = DeviceLibrary::sevennm();
        let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
        let periphery = Periphery::new(&lib);
        let params = ArrayParams::paper_defaults();
        let metrics = ArrayModel::new(mem.organization(), &cell, &periphery, &params)
            .with_precharge_fins(10)
            .evaluate()
            .unwrap();
        let expected = trace.energy(&metrics);
        assert!(
            (mem.ledger().energy.joules() - expected.joules()).abs() < 1e-9 * expected.joules(),
            "ledger {} vs trace {}",
            mem.ledger().energy,
            expected
        );
        assert_eq!(mem.ledger().idle_cycles, 60);
    }

    #[test]
    fn average_power_is_sane() {
        let mut mem = make(128, 64, 64);
        for a in 0..50 {
            mem.write(a, a as u64).unwrap();
        }
        let p = mem.average_power();
        assert!(p.microwatts() > 1.0 && p.milliwatts() < 10.0, "P = {p}");
    }

    #[test]
    #[should_panic(expected = "u64")]
    fn wide_words_are_rejected() {
        let _ = make(128, 128, 128);
    }
}
