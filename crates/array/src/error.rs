//! Array-model error type.

use core::fmt;
use sram_cell::CellError;

/// Errors produced by array-model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArrayError {
    /// The array organization is structurally invalid.
    InvalidOrganization(String),
    /// A model parameter is outside its valid range.
    InvalidParameter {
        /// Offending parameter.
        name: &'static str,
        /// Violated constraint.
        constraint: String,
    },
    /// An underlying cell characterization failed.
    Cell(CellError),
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::InvalidOrganization(msg) => write!(f, "invalid array organization: {msg}"),
            ArrayError::InvalidParameter { name, constraint } => {
                write!(f, "invalid array parameter `{name}`: {constraint}")
            }
            ArrayError::Cell(e) => write!(f, "cell characterization failed: {e}"),
        }
    }
}

impl std::error::Error for ArrayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArrayError::Cell(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CellError> for ArrayError {
    fn from(e: CellError) -> Self {
        ArrayError::Cell(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = ArrayError::InvalidOrganization("rows must be a power of two".into());
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn wraps_cell_errors() {
        use std::error::Error as _;
        let e = ArrayError::from(CellError::BracketingFailed { what: "wm" });
        assert!(e.source().is_some());
    }
}
