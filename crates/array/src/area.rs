//! Array floorplan and area model.
//!
//! Section 5's aspect-ratio argument: "since width of 6T SRAM cell is
//! 2.5× larger than its height, smaller number of columns is usually
//! preferred". This module quantifies that: cell dimensions follow the
//! Fig. 1(b) layout (width = 5 metal pitches, height = 0.4 × width), and
//! the periphery adds a decoder strip along the rows plus a column strip
//! (prechargers, write buffers, sense amplifiers) along the columns.

use crate::{ArrayOrganization, TechnologyParams};

/// Physical footprint of an array organization.
///
/// # Examples
///
/// ```
/// use sram_array::{ArrayFloorplan, ArrayOrganization, TechnologyParams};
///
/// # fn main() -> Result<(), sram_array::ArrayError> {
/// let tall = ArrayFloorplan::new(
///     &ArrayOrganization::new(512, 64, 64)?,
///     &TechnologyParams::sevennm(),
///     25,
///     3,
/// );
/// let wide = ArrayFloorplan::new(
///     &ArrayOrganization::new(64, 512, 64)?,
///     &TechnologyParams::sevennm(),
///     25,
///     3,
/// );
/// // Same bit count, but the tall-narrow array is closer to square
/// // because cells are 2.5x wider than they are high.
/// assert!(tall.aspect_ratio() < wide.aspect_ratio());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayFloorplan {
    width: f64,
    height: f64,
    cell_area: f64,
    periphery_area: f64,
}

impl ArrayFloorplan {
    /// Height of the column-circuit strip, in cell heights per fin of
    /// precharger + write-buffer devices (layout estimate).
    const COLUMN_STRIP_CELL_HEIGHTS_PER_FIN: f64 = 0.25;
    /// Width of the row-decoder/driver strip, in cell widths.
    const ROW_STRIP_CELL_WIDTHS: f64 = 4.0;

    /// Computes the floorplan of `org` with `n_pre`/`n_wr` column-circuit
    /// fins.
    #[must_use]
    pub fn new(org: &ArrayOrganization, tech: &TechnologyParams, n_pre: u32, n_wr: u32) -> Self {
        let cell_w = tech.cell_width_pitches * tech.metal_pitch;
        let cell_h = cell_w * tech.cell_height_ratio;
        let core_w = cell_w * f64::from(org.cols());
        let core_h = cell_h * f64::from(org.rows());

        // Row strip: decoder + drivers along the left edge.
        let row_strip_w = Self::ROW_STRIP_CELL_WIDTHS * cell_w;
        // Column strip: precharge + write buffer + sense amps along the
        // bottom edge; height grows with the fin budget.
        let col_strip_h =
            Self::COLUMN_STRIP_CELL_HEIGHTS_PER_FIN * cell_h * f64::from(n_pre + 2 * n_wr + 4);

        let width = core_w + row_strip_w;
        let height = core_h + col_strip_h;
        Self {
            width,
            height,
            cell_area: core_w * core_h,
            periphery_area: width * height - core_w * core_h,
        }
    }

    /// Total width in meters.
    #[must_use]
    pub fn width_meters(&self) -> f64 {
        self.width
    }

    /// Total height in meters.
    #[must_use]
    pub fn height_meters(&self) -> f64 {
        self.height
    }

    /// Total macro area in square microns.
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        self.width * self.height * 1e12
    }

    /// Cell-array core area in square microns.
    #[must_use]
    pub fn core_area_um2(&self) -> f64 {
        self.cell_area * 1e12
    }

    /// Periphery overhead as a fraction of the total area.
    #[must_use]
    pub fn periphery_fraction(&self) -> f64 {
        self.periphery_area / (self.cell_area + self.periphery_area)
    }

    /// Macro aspect ratio `max(w, h) / min(w, h)` (1.0 = square).
    #[must_use]
    pub fn aspect_ratio(&self) -> f64 {
        self.width.max(self.height) / self.width.min(self.height)
    }

    /// Array efficiency: cell area over total area (the standard macro
    /// figure of merit).
    #[must_use]
    pub fn array_efficiency(&self) -> f64 {
        1.0 - self.periphery_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rows: u32, cols: u32, n_pre: u32, n_wr: u32) -> ArrayFloorplan {
        ArrayFloorplan::new(
            &ArrayOrganization::new(rows, cols, 64).unwrap(),
            &TechnologyParams::sevennm(),
            n_pre,
            n_wr,
        )
    }

    #[test]
    fn square_count_array_is_wide() {
        // Equal rows and cols: since cells are 2.5x wider than high, the
        // macro is ~2.5x wider than high.
        let p = plan(128, 128, 10, 2);
        let ratio = p.width_meters() / p.height_meters();
        assert!(ratio > 2.0 && ratio < 3.0, "w/h = {ratio:.2}");
    }

    #[test]
    fn tall_narrow_balances_aspect() {
        // rows/cols = 2.5 would be square; 512x256 with ratio 2 gets
        // close.
        let tall = plan(512, 256, 20, 3);
        let wide = plan(256, 512, 20, 3);
        assert!(tall.aspect_ratio() < wide.aspect_ratio());
    }

    #[test]
    fn core_area_scales_with_bits() {
        let small = plan(128, 64, 10, 2);
        let large = plan(256, 128, 10, 2);
        let ratio = large.core_area_um2() / small.core_area_um2();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn more_fins_cost_area() {
        let lean = plan(128, 64, 1, 1);
        let beefy = plan(128, 64, 50, 20);
        assert!(beefy.area_um2() > lean.area_um2());
        assert!(beefy.periphery_fraction() > lean.periphery_fraction());
    }

    #[test]
    fn efficiency_improves_with_array_size() {
        let small = plan(16, 64, 10, 2);
        let large = plan(512, 256, 10, 2);
        assert!(large.array_efficiency() > small.array_efficiency());
        assert!(
            large.array_efficiency() > 0.8,
            "large macros should be cell-dominated"
        );
    }

    #[test]
    fn paper_cell_area_magnitude() {
        // 7 nm cell: 215 nm x 86 nm = 0.0185 um^2; compare with Intel's
        // published 14 nm cell (0.0588 um^2) — ours must be smaller.
        let p = plan(1, 64, 1, 1);
        let per_cell = p.core_area_um2() / 64.0;
        assert!(
            per_cell < 0.0588 && per_cell > 0.005,
            "cell = {per_cell} um2"
        );
    }
}
