//! Wordline/column driver: a four-stage superbuffer sized by logical
//! effort.
//!
//! The paper: "each output of row decoder is connected to a driver. The
//! design of this driver (superbuffer) is derived analytically and
//! verified by SPICE simulations … To avoid large area overheads, four
//! inverter stages are used." Table 3 splits the driver delay into the
//! first three stages (`D_row_drv`) plus the last stage charging the
//! wordline (the `D_WL` component of Table 2), which is why this model
//! reports the *first three stages* as its delay.
//!
//! Logical-effort sizing: with total electrical effort
//! `H = C_load / C_in(min inverter)`, each of the four stages bears
//! `h = H^(1/4)`; fin counts are the stage sizes rounded up to integers
//! (FinFET width quantization), with the last stage pinned to the paper's
//! 27 fins.

use crate::Periphery;
use sram_units::{Capacitance, Energy, Time};

/// A sized four-stage superbuffer.
///
/// # Examples
///
/// ```
/// use sram_array::{Periphery, Superbuffer};
/// use sram_device::DeviceLibrary;
/// use sram_units::Capacitance;
///
/// let periphery = Periphery::new(&DeviceLibrary::sevennm());
/// let driver = Superbuffer::design(Capacitance::from_femtofarads(5.0), &periphery);
/// assert_eq!(driver.stage_fins().len(), 4);
/// assert!(driver.first_three_stage_delay().seconds() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Superbuffer {
    stage_fins: [u32; 4],
    stage_delay: Time,
    energy_first_three: Energy,
}

impl Superbuffer {
    /// Sizes a superbuffer driving `c_load`.
    #[must_use]
    pub fn design(c_load: Capacitance, periphery: &Periphery) -> Self {
        let c_in = periphery.c_inverter_input();
        let h_total = (c_load / c_in).max(1.0);
        let h = h_total.powf(0.25);
        // Stage sizes 1, h, h^2, h^3 — quantized up; the last stage is the
        // paper's fixed 27-fin WL driver (it charges the wire through the
        // Table 2 component, not through this model).
        let mut fins = [1u32; 4];
        for (k, f) in fins.iter_mut().enumerate() {
            *f = (h.powi(k as i32)).ceil().max(1.0) as u32;
        }
        fins[3] = 27;

        // Per-stage delay: effort delay h plus one unit of parasitic
        // self-load, in units of tau.
        let tau = periphery.tau();
        let p_inv = periphery.c_inverter_output() / c_in;
        let stage_delay = tau * (h + p_inv);

        // Switching energy of the first three stages: each stage charges
        // the next stage's input plus its own output parasitics through a
        // full Vdd swing.
        let vdd = periphery.vdd();
        let mut energy = Energy::ZERO;
        for k in 0..3 {
            let c_next_in = c_in * f64::from(fins[k + 1]);
            let c_self = periphery.c_inverter_output() * f64::from(fins[k]);
            energy += (c_next_in + c_self) * vdd * vdd;
        }

        Self {
            stage_fins: fins,
            stage_delay,
            energy_first_three: energy,
        }
    }

    /// The quantized fin count of each stage.
    #[must_use]
    pub fn stage_fins(&self) -> &[u32; 4] {
        &self.stage_fins
    }

    /// Delay of the first three stages (`D_row_drv` / `D_col_drv` in
    /// Table 3); the fourth stage's delay is the Table 2 WL/COL component.
    #[must_use]
    pub fn first_three_stage_delay(&self) -> Time {
        self.stage_delay * 3.0
    }

    /// Switching energy of the first three stages
    /// (`E_row_drv` / `E_col_drv`).
    #[must_use]
    pub fn first_three_stage_energy(&self) -> Energy {
        self.energy_first_three
    }

    /// Per-stage effort delay (exposed for spice cross-validation).
    #[must_use]
    pub fn stage_delay(&self) -> Time {
        self.stage_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::DeviceLibrary;

    fn periphery() -> Periphery {
        Periphery::new(&DeviceLibrary::sevennm())
    }

    #[test]
    fn stages_grow_geometrically() {
        let p = periphery();
        let d = Superbuffer::design(Capacitance::from_femtofarads(20.0), &p);
        let f = d.stage_fins();
        assert_eq!(f[0], 1);
        assert!(f[1] >= f[0] && f[2] >= f[1]);
        assert_eq!(f[3], 27);
    }

    #[test]
    fn bigger_load_means_longer_driver_delay() {
        let p = periphery();
        let small = Superbuffer::design(Capacitance::from_femtofarads(2.0), &p);
        let large = Superbuffer::design(Capacitance::from_femtofarads(50.0), &p);
        assert!(large.first_three_stage_delay() > small.first_three_stage_delay());
        assert!(large.first_three_stage_energy() > small.first_three_stage_energy());
    }

    #[test]
    fn tiny_load_clamps_to_unit_sizing() {
        let p = periphery();
        let d = Superbuffer::design(Capacitance::from_attofarads(1.0), &p);
        assert_eq!(d.stage_fins()[0..3], [1, 1, 1]);
    }

    #[test]
    fn analytic_delay_matches_spice_transient() {
        // The paper verifies its analytic superbuffer against SPICE; we do
        // the same: simulate a 4-stage inverter chain with our sized fin
        // counts and compare the measured stage delay to the model.
        use sram_device::{FinFet, VtFlavor};
        use sram_spice::{Circuit, CrossingEdge, Transient, Waveform};
        use sram_units::{Time, Voltage};

        let lib = DeviceLibrary::sevennm();
        let p = periphery();
        let c_load = Capacitance::from_femtofarads(4.0);
        let design = Superbuffer::design(c_load, &p);

        let vdd = 0.45;
        let mut ckt = Circuit::new();
        let n_vdd = ckt.node("vdd");
        ckt.vsource("Vdd", n_vdd, Circuit::GROUND, Waveform::Dc(vdd));
        let n_in = ckt.node("in");
        ckt.vsource(
            "Vin",
            n_in,
            Circuit::GROUND,
            Waveform::step(
                Voltage::ZERO,
                Voltage::from_volts(vdd),
                Time::from_picoseconds(2.0),
                Time::from_picoseconds(0.5),
            ),
        );
        let mut prev = n_in;
        let mut stage_nodes = Vec::new();
        for (k, &fins) in design.stage_fins().iter().enumerate() {
            let out = ckt.node(&format!("s{k}"));
            ckt.fet(
                &format!("MP{k}"),
                prev,
                out,
                n_vdd,
                FinFet::new(lib.pfet(VtFlavor::Lvt).clone(), fins),
            );
            ckt.fet(
                &format!("MN{k}"),
                prev,
                out,
                Circuit::GROUND,
                FinFet::new(lib.nfet(VtFlavor::Lvt).clone(), fins),
            );
            // Explicit gate load of the next stage (device gates are not
            // modeled as capacitors by the simulator).
            if k < 3 {
                let next_fins = design.stage_fins()[k + 1];
                ckt.capacitor(
                    &format!("Cg{k}"),
                    out,
                    Circuit::GROUND,
                    (p.c_inverter_input() * f64::from(next_fins)).farads(),
                );
            } else {
                ckt.capacitor("CL", out, Circuit::GROUND, c_load.farads());
            }
            stage_nodes.push(out);
            prev = out;
        }
        let result = Transient::new(Time::from_picoseconds(40.0), Time::from_picoseconds(0.1))
            .run(&ckt)
            .unwrap();
        let trace = result.trace();
        let half = Voltage::from_volts(vdd / 2.0);
        let t_in = trace
            .crossing(n_in, half, CrossingEdge::Rising, Time::ZERO)
            .unwrap();
        let t_s2 = trace
            .crossing(stage_nodes[2], half, CrossingEdge::Any, t_in)
            .unwrap();
        let spice_three_stages = t_s2 - t_in;
        let model = design.first_three_stage_delay();
        let ratio = spice_three_stages / model;
        assert!(
            ratio > 0.3 && ratio < 3.0,
            "model {model} vs spice {spice_three_stages} (ratio {ratio:.2})"
        );
    }
}
