//! Table 3 and Equations (2)–(5): the full array delay/energy model.

use crate::components::{self, ComponentInputs};
use crate::{
    ArrayError, ArrayOrganization, DecoderModel, Periphery, SenseAmp, Superbuffer,
    TechnologyParams, WireCapacitances,
};
use sram_cell::CellCharacterization;
use sram_units::{Energy, EnergyDelay, Time, Voltage};

/// How per-bitline energies are multiplied up to a full access.
///
/// The paper's Table 3 counts **one** bitline, sense amplifier and
/// precharge per access, although a read senses `W` columns and the
/// asserted wordline disturbs all `n_c` (see EXPERIMENTS.md,
/// inconsistency 3). Both accountings are provided; the choice cancels
/// in the paper's relative comparisons but matters for absolute energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnergyAccounting {
    /// Table 3 verbatim: one bitline/sense-amp/precharge per access.
    #[default]
    PaperTable3,
    /// Realistic: all `n_c` bitlines develop/precharge, `W` sense
    /// amplifiers fire, `W` write buffers drive.
    PerWord,
}

/// Workload and sensing parameters of the evaluation (paper Section 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayParams {
    /// Array activity factor α: probability of an access per cycle (0.5).
    pub activity: f64,
    /// Read ratio β: fraction of accesses that are reads (0.5).
    pub read_ratio: f64,
    /// Sensing voltage `ΔV_S` (120 mV).
    pub delta_vs: Voltage,
    /// Technology constants (wire geometry, DC-DC overhead).
    pub tech: TechnologyParams,
    /// Bitline-energy multiplication policy.
    pub energy_accounting: EnergyAccounting,
}

impl ArrayParams {
    /// The paper's Section 5 values: `α = β = 0.5`, `ΔV_S = 120 mV`,
    /// 7 nm technology constants, Table 3 energy accounting.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            activity: 0.5,
            read_ratio: 0.5,
            delta_vs: Voltage::from_millivolts(120.0),
            tech: TechnologyParams::sevennm(),
            energy_accounting: EnergyAccounting::PaperTable3,
        }
    }

    /// Paper defaults but with realistic per-word energy accounting.
    #[must_use]
    pub fn per_word_accounting() -> Self {
        Self {
            energy_accounting: EnergyAccounting::PerWord,
            ..Self::paper_defaults()
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidParameter`] for probabilities outside
    /// `[0, 1]` or a non-positive sensing voltage.
    pub fn validate(&self) -> Result<(), ArrayError> {
        if !(0.0..=1.0).contains(&self.activity) {
            return Err(ArrayError::InvalidParameter {
                name: "activity",
                constraint: format!("must be in [0, 1], got {}", self.activity),
            });
        }
        if !(0.0..=1.0).contains(&self.read_ratio) {
            return Err(ArrayError::InvalidParameter {
                name: "read_ratio",
                constraint: format!("must be in [0, 1], got {}", self.read_ratio),
            });
        }
        if self.delta_vs.volts() <= 0.0 {
            return Err(ArrayError::InvalidParameter {
                name: "delta_vs",
                constraint: "sensing voltage must be positive".into(),
            });
        }
        Ok(())
    }
}

impl Default for ArrayParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Read/write delay composition (Fig. 7(d) needs the bitline share).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayBreakdown {
    /// Row path: decoder + first driver stages + wordline charge.
    pub row_path: Time,
    /// Column path: column decoder + driver + COL line (+ BL write drive
    /// for writes).
    pub column_path: Time,
    /// Bitline develop time (`D_BL,rd`) — the component HVT hurts and
    /// negative Gnd repairs.
    pub bitline: Time,
    /// Sense-amplifier resolution (reads) or cell flip (writes).
    pub resolve: Time,
    /// Precharge recovery.
    pub precharge: Time,
}

impl DelayBreakdown {
    /// Total of this access type per Table 3 (max of row/column paths,
    /// then resolve and precharge in series).
    #[must_use]
    pub fn total(&self) -> Time {
        self.row_path.max(self.column_path) + self.resolve + self.precharge
    }
}

/// Switching-energy composition of one access mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Decoders and drivers (row + column).
    pub addressing: Energy,
    /// Wordline charge/discharge.
    pub wordline: Energy,
    /// Bitline develop/drive plus precharge.
    pub bitline: Energy,
    /// Sense amplifier / cell write.
    pub resolve: Energy,
    /// Assist rails (CVDD + CVSS), including DC-DC overhead.
    pub assist_rails: Energy,
}

impl EnergyBreakdown {
    /// Sum of all components.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.addressing + self.wordline + self.bitline + self.resolve + self.assist_rails
    }
}

/// Evaluated metrics of one array design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayMetrics {
    /// `D_rd` (Table 3).
    pub read_delay: Time,
    /// `D_wr` (Table 3).
    pub write_delay: Time,
    /// `D_array = max(D_rd, D_wr)` (Eq. 2).
    pub delay: Time,
    /// `E_array,sw` (Eq. 3), before the activity factor.
    pub switching_energy: Energy,
    /// `E_array,leak = M · P_leak,sram · D_array` (Eq. 4).
    pub leakage_energy: Energy,
    /// `E_array = α·E_sw + E_leak` (Eq. 5).
    pub energy: Energy,
    /// Read-delay composition (Fig. 7(d)).
    pub read_breakdown: DelayBreakdown,
    /// Write-delay composition.
    pub write_breakdown: DelayBreakdown,
    /// Read-energy composition.
    pub read_energy_breakdown: EnergyBreakdown,
    /// Write-energy composition.
    pub write_energy_breakdown: EnergyBreakdown,
}

impl ArrayMetrics {
    /// The optimization objective: `E_array × D_array`.
    #[must_use]
    pub fn edp(&self) -> EnergyDelay {
        self.energy * self.delay
    }
}

/// One fully specified array design point, ready to evaluate.
///
/// Construction binds the *architecture* variables (`n_r`/`n_c` in the
/// organization, `N_pre`, `N_wr`), the *circuit* variable `V_SSC`
/// (`V_DDC` and `V_WL` live in the [`CellCharacterization`], pinned to
/// the minimum levels meeting yield — Section 5), and the *device* choice
/// (which cell characterization: LVT or HVT).
#[derive(Debug, Clone)]
pub struct ArrayModel<'a> {
    organization: ArrayOrganization,
    cell: &'a CellCharacterization,
    periphery: &'a Periphery,
    params: &'a ArrayParams,
    n_pre: u32,
    n_wr: u32,
    vssc: Voltage,
}

impl<'a> ArrayModel<'a> {
    /// Creates a design point with `N_pre = N_wr = 1` and `V_SSC = 0`.
    #[must_use]
    pub fn new(
        organization: ArrayOrganization,
        cell: &'a CellCharacterization,
        periphery: &'a Periphery,
        params: &'a ArrayParams,
    ) -> Self {
        Self {
            organization,
            cell,
            periphery,
            params,
            n_pre: 1,
            n_wr: 1,
            vssc: Voltage::ZERO,
        }
    }

    /// Sets the precharger fin count `N_pre`.
    ///
    /// # Panics
    ///
    /// Panics if `fins` is zero.
    #[must_use]
    pub fn with_precharge_fins(mut self, fins: u32) -> Self {
        assert!(fins > 0, "N_pre must be at least 1");
        self.n_pre = fins;
        self
    }

    /// Sets the write-buffer fin count `N_wr`.
    ///
    /// # Panics
    ///
    /// Panics if `fins` is zero.
    #[must_use]
    pub fn with_write_fins(mut self, fins: u32) -> Self {
        assert!(fins > 0, "N_wr must be at least 1");
        self.n_wr = fins;
        self
    }

    /// Sets the negative-Gnd level `V_SSC` (0 disables the assist).
    #[must_use]
    pub fn with_vssc(mut self, vssc: Voltage) -> Self {
        self.vssc = vssc;
        self
    }

    /// The organization under evaluation.
    #[must_use]
    pub fn organization(&self) -> ArrayOrganization {
        self.organization
    }

    /// Evaluates Table 3 and Eqs. (2)–(5).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidParameter`] when the workload
    /// parameters fail validation.
    pub fn evaluate(&self) -> Result<ArrayMetrics, ArrayError> {
        self.params.validate()?;
        let vdd = self.cell.vdd();
        let vddc = self.cell.vddc();
        let vwl = self.cell.vwl();
        let org = &self.organization;

        let wires = WireCapacitances::new(
            org,
            self.periphery,
            &self.params.tech,
            self.n_pre,
            self.n_wr,
        );
        let inputs = ComponentInputs {
            wires: &wires,
            periphery: self.periphery,
            cell: self.cell,
            vdd,
            vddc,
            vssc: self.vssc,
            vwl,
            delta_vs: self.params.delta_vs,
            n_pre: self.n_pre,
            n_wr: self.n_wr,
        };

        // Table 2 components.
        let cvdd = components::cvdd_rail(&inputs);
        let cvss = components::cvss_rail(&inputs);
        let wl_rd = components::wordline_read(&inputs);
        let wl_wr = components::wordline_write(&inputs);
        let col = components::column_select(&inputs);
        let bl_rd = components::bitline_read(&inputs);
        let bl_wr = components::bitline_write(&inputs);
        let pre_rd = components::precharge_read(&inputs);
        let pre_wr = components::precharge_write(&inputs);

        // Decoders and drivers.
        let decoder = DecoderModel::new(self.periphery);
        let row_dec_d = decoder.delay(org.row_address_bits());
        let row_dec_e = decoder.energy(org.row_address_bits());
        let col_bits = org.column_address_bits();
        let (col_dec_d, col_dec_e) = if org.has_column_mux() {
            (decoder.delay(col_bits), decoder.energy(col_bits))
        } else {
            (Time::ZERO, Energy::ZERO)
        };
        let row_drv = Superbuffer::design(wires.wordline, self.periphery);
        let (col_drv_d, col_drv_e) = if org.has_column_mux() {
            let drv = Superbuffer::design(wires.column_select, self.periphery);
            (
                drv.first_three_stage_delay(),
                drv.first_three_stage_energy(),
            )
        } else {
            (Time::ZERO, Energy::ZERO)
        };
        let sense = SenseAmp::new(self.periphery, self.params.delta_vs);

        // Cell write: delay from the characterization LUT; energy is the
        // storage-node flip (small, approximated as four inverter loads
        // switching through V_DDC).
        let d_write_sram = self.cell.write_delay(vwl);
        let e_write_sram = self.periphery.c_inverter_input() * 4.0 * vddc * vddc;

        // Table 3: delays.
        let read_breakdown = DelayBreakdown {
            row_path: row_dec_d + row_drv.first_three_stage_delay() + wl_rd.delay + bl_rd.delay,
            column_path: col_dec_d + col_drv_d + col.delay,
            bitline: bl_rd.delay,
            resolve: sense.delay(),
            precharge: pre_rd.delay,
        };
        let write_breakdown = DelayBreakdown {
            row_path: row_dec_d + row_drv.first_three_stage_delay() + wl_wr.delay,
            column_path: col_dec_d + col_drv_d + col.delay + bl_wr.delay,
            bitline: bl_wr.delay,
            resolve: d_write_sram,
            precharge: pre_wr.delay,
        };
        let read_delay = read_breakdown.total();
        let write_delay = write_breakdown.total();
        let delay = read_delay.max(write_delay);

        // Assist-rail energies carry the DC-DC conversion overhead
        // (Section 5); the overdriven wordline is likewise converter-fed.
        let dcdc = self.params.tech.dcdc_overhead;
        let assist_rails = (cvdd.energy + cvss.energy) * dcdc;
        let wl_wr_energy = if vwl > vdd {
            wl_wr.energy * dcdc
        } else {
            wl_wr.energy
        };

        // Table 3: switching energies. Under per-word accounting, the
        // bitline/precharge terms scale by the number of columns the
        // asserted wordline touches and the resolve terms by the word
        // width; the paper's Table 3 counts each once.
        let (bl_columns, resolve_units, wr_columns) = match self.params.energy_accounting {
            EnergyAccounting::PaperTable3 => (1.0, 1.0, 1.0),
            EnergyAccounting::PerWord => (
                f64::from(org.cols()),
                f64::from(org.word_bits()),
                f64::from(org.word_bits()),
            ),
        };
        let read_energy_breakdown = EnergyBreakdown {
            addressing: row_dec_e + row_drv.first_three_stage_energy() + col_dec_e + col_drv_e,
            wordline: wl_rd.energy,
            bitline: (bl_rd.energy + pre_rd.energy) * bl_columns + col.energy,
            resolve: sense.energy() * resolve_units,
            assist_rails,
        };
        let write_energy_breakdown = EnergyBreakdown {
            addressing: row_dec_e + row_drv.first_three_stage_energy() + col_dec_e + col_drv_e,
            wordline: wl_wr_energy,
            bitline: bl_wr.energy * wr_columns + pre_wr.energy * bl_columns + col.energy,
            resolve: e_write_sram * resolve_units,
            assist_rails: Energy::ZERO,
        };
        let e_sw_rd = read_energy_breakdown.total();
        let e_sw_wr = write_energy_breakdown.total();

        // Equations (2)-(5).
        let beta = self.params.read_ratio;
        let switching_energy = e_sw_rd * beta + e_sw_wr * (1.0 - beta);
        let m = org.capacity().bits() as f64;
        let leakage_energy = self.cell.leakage() * m * delay;
        let energy = switching_energy * self.params.activity + leakage_energy;

        Ok(ArrayMetrics {
            read_delay,
            write_delay,
            delay,
            switching_energy,
            leakage_energy,
            energy,
            read_breakdown,
            write_breakdown,
            read_energy_breakdown,
            write_energy_breakdown,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::DeviceLibrary;

    struct Fixture {
        hvt: CellCharacterization,
        lvt: CellCharacterization,
        periphery: Periphery,
        params: ArrayParams,
    }

    fn fixture() -> Fixture {
        let lib = DeviceLibrary::sevennm();
        Fixture {
            hvt: CellCharacterization::paper_hvt(lib.nominal_vdd()),
            lvt: CellCharacterization::paper_lvt(lib.nominal_vdd()),
            periphery: Periphery::new(&lib),
            params: ArrayParams::paper_defaults(),
        }
    }

    fn org(rows: u32, cols: u32) -> ArrayOrganization {
        ArrayOrganization::new(rows, cols, 64).unwrap()
    }

    #[test]
    fn metrics_are_physical() {
        let fx = fixture();
        let m = ArrayModel::new(org(128, 64), &fx.hvt, &fx.periphery, &fx.params)
            .with_precharge_fins(12)
            .with_write_fins(2)
            .evaluate()
            .unwrap();
        assert!(m.delay.picoseconds() > 1.0 && m.delay.nanoseconds() < 10.0);
        assert!(m.energy.joules() > 0.0);
        assert!(m.read_delay <= m.delay && m.write_delay <= m.delay);
        assert_eq!(m.delay, m.read_delay.max(m.write_delay));
    }

    #[test]
    fn negative_gnd_reduces_read_delay() {
        let fx = fixture();
        let base = ArrayModel::new(org(128, 64), &fx.hvt, &fx.periphery, &fx.params)
            .with_precharge_fins(12)
            .evaluate()
            .unwrap();
        let assisted = ArrayModel::new(org(128, 64), &fx.hvt, &fx.periphery, &fx.params)
            .with_precharge_fins(12)
            .with_vssc(Voltage::from_millivolts(-240.0))
            .evaluate()
            .unwrap();
        assert!(assisted.read_breakdown.bitline < base.read_breakdown.bitline * 0.5);
        assert!(assisted.read_delay < base.read_delay);
        // ... at an energy cost on the assist rails:
        assert!(
            assisted.read_energy_breakdown.assist_rails > base.read_energy_breakdown.assist_rails
        );
    }

    #[test]
    fn hvt_leaks_less_but_reads_slower() {
        let fx = fixture();
        let build = |cell| {
            ArrayModel::new(org(512, 64), cell, &fx.periphery, &fx.params)
                .with_precharge_fins(20)
                .evaluate()
                .unwrap()
        };
        let hvt = build(&fx.hvt);
        let lvt = build(&fx.lvt);
        assert!(hvt.leakage_energy < lvt.leakage_energy * 0.2);
        assert!(hvt.read_breakdown.bitline > lvt.read_breakdown.bitline);
    }

    #[test]
    fn more_rows_slow_the_bitline() {
        let fx = fixture();
        let build = |o| {
            ArrayModel::new(o, &fx.hvt, &fx.periphery, &fx.params)
                .with_precharge_fins(10)
                .evaluate()
                .unwrap()
        };
        let short = build(org(64, 128));
        let tall = build(org(512, 64));
        assert!(tall.read_breakdown.bitline > short.read_breakdown.bitline);
    }

    #[test]
    fn leakage_energy_scales_with_capacity() {
        let fx = fixture();
        let build = |o| {
            ArrayModel::new(o, &fx.lvt, &fx.periphery, &fx.params)
                .evaluate()
                .unwrap()
        };
        let small = build(org(64, 64));
        let large = build(org(512, 256));
        // 32x the bits and a larger delay: strictly more leakage energy.
        assert!(large.leakage_energy > small.leakage_energy * 32.0);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let fx = fixture();
        let mut params = fx.params;
        params.activity = 1.5;
        let err = ArrayModel::new(org(64, 64), &fx.hvt, &fx.periphery, &params)
            .evaluate()
            .unwrap_err();
        assert!(matches!(err, ArrayError::InvalidParameter { .. }));
    }

    #[test]
    fn edp_composes() {
        let fx = fixture();
        let m = ArrayModel::new(org(128, 64), &fx.hvt, &fx.periphery, &fx.params)
            .evaluate()
            .unwrap();
        let edp = m.edp();
        assert!((edp / m.delay - m.energy).joules().abs() < 1e-25);
    }

    #[test]
    #[should_panic(expected = "N_pre")]
    fn zero_precharge_fins_panics() {
        let fx = fixture();
        let _ = ArrayModel::new(org(128, 64), &fx.hvt, &fx.periphery, &fx.params)
            .with_precharge_fins(0);
    }

    #[test]
    fn per_word_accounting_raises_energy_not_delay() {
        let fx = fixture();
        let per_word = ArrayParams::per_word_accounting();
        let paper = ArrayModel::new(org(128, 128), &fx.hvt, &fx.periphery, &fx.params)
            .with_precharge_fins(10)
            .evaluate()
            .unwrap();
        let realistic = ArrayModel::new(org(128, 128), &fx.hvt, &fx.periphery, &per_word)
            .with_precharge_fins(10)
            .evaluate()
            .unwrap();
        assert!(realistic.switching_energy > paper.switching_energy * 5.0);
        assert_eq!(realistic.delay, paper.delay);
        assert_eq!(realistic.read_delay, paper.read_delay);
    }

    #[test]
    fn per_word_accounting_multiplies_bitline_energy_by_columns() {
        // On a mux-free organization (n_c = W) the per-word bitline
        // energy is exactly n_c times the Table 3 single-bitline figure.
        let fx = fixture();
        let per_word = ArrayParams::per_word_accounting();
        let eval = |p: &ArrayParams| {
            ArrayModel::new(org(128, 64), &fx.hvt, &fx.periphery, p)
                .with_precharge_fins(10)
                .evaluate()
                .unwrap()
        };
        let paper = eval(&fx.params);
        let word = eval(&per_word);
        let ratio = word.read_energy_breakdown.bitline / paper.read_energy_breakdown.bitline;
        assert!((ratio - 64.0).abs() < 1e-9, "bitline ratio = {ratio}");
        let sa_ratio = word.read_energy_breakdown.resolve / paper.read_energy_breakdown.resolve;
        assert!(
            (sa_ratio - 64.0).abs() < 1e-9,
            "sense-amp ratio = {sa_ratio}"
        );
    }
}
