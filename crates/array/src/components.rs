//! Table 2: `C / V / ΔV / I` quadruples and Eq. (1).
//!
//! Every interconnect-related delay/energy contribution in the paper is an
//! instance of Eq. (1):
//!
//! ```text
//! D = C·ΔV / I        E_sw = C·V·ΔV
//! ```
//!
//! with the `C`, `V`, `ΔV`, `I` values of Table 2. The `I` coefficients
//! (0.30, 0.15, 0.25, 0.18, 0.33, 0.50) are the paper's SPICE-fitted
//! average-current factors for the adopted FinFETs.

use crate::wire::{RAIL_DRIVER_FINS, WL_DRIVER_FINS};
use crate::{Periphery, WireCapacitances};
use sram_cell::CellCharacterization;
use sram_units::{Current, Energy, Time, Voltage};

/// One evaluated Table 2 row: a delay and a switching energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayEnergy {
    /// Eq. (1) delay `C·ΔV/I`.
    pub delay: Time,
    /// Eq. (1) switching energy `C·V·ΔV`.
    pub energy: Energy,
}

impl DelayEnergy {
    /// Evaluates Eq. (1) for a `C/V/ΔV/I` quadruple.
    #[must_use]
    pub fn from_eq1(c: sram_units::Capacitance, v: Voltage, delta_v: Voltage, i: Current) -> Self {
        Self {
            delay: c * delta_v / i,
            energy: c * v * delta_v,
        }
    }

    /// A zero contribution (used for absent components, e.g. the column
    /// path when `n_c ≤ W`).
    #[must_use]
    pub fn zero() -> Self {
        Self {
            delay: Time::ZERO,
            energy: Energy::ZERO,
        }
    }
}

/// Inputs shared by all Table 2 rows.
#[derive(Debug, Clone, Copy)]
pub struct ComponentInputs<'a> {
    /// Table 1 capacitances of the configuration.
    pub wires: &'a WireCapacitances,
    /// Peripheral (LVT) device figures.
    pub periphery: &'a Periphery,
    /// Cell look-up tables (for `I_read`).
    pub cell: &'a CellCharacterization,
    /// Array supply.
    pub vdd: Voltage,
    /// Cell supply rail `V_DDC`.
    pub vddc: Voltage,
    /// Cell ground rail `V_SSC`.
    pub vssc: Voltage,
    /// Asserted wordline level `V_WL`.
    pub vwl: Voltage,
    /// Sensing voltage `ΔV_S`.
    pub delta_vs: Voltage,
    /// Precharger fins `N_pre`.
    pub n_pre: u32,
    /// Write-buffer fins `N_wr`.
    pub n_wr: u32,
}

/// Cell `V_dd` rail switch: `C_CVDD`, `V = Vdd`, `ΔV = V_DDC − Vdd`,
/// `I = 0.30 · 20 · I_CVDD(V_DDC)`.
#[must_use]
pub fn cvdd_rail(inp: &ComponentInputs<'_>) -> DelayEnergy {
    let delta_v = inp.vddc - inp.vdd;
    if delta_v.volts() <= 0.0 {
        return DelayEnergy::zero();
    }
    let i = inp.periphery.i_cvdd(inp.vddc) * (0.30 * RAIL_DRIVER_FINS);
    DelayEnergy::from_eq1(inp.wires.cvdd, inp.vdd, delta_v, i)
}

/// Cell `V_ss` rail switch: `C_CVSS`, `V = Vdd`, `ΔV = |V_SSC|`,
/// `I = 0.15 · 20 · I_CVSS(V_SSC)`.
#[must_use]
pub fn cvss_rail(inp: &ComponentInputs<'_>) -> DelayEnergy {
    let delta_v = inp.vssc.abs();
    if delta_v.volts() <= 0.0 {
        return DelayEnergy::zero();
    }
    let i = inp.periphery.i_cvss(inp.vssc) * (0.15 * RAIL_DRIVER_FINS);
    DelayEnergy::from_eq1(inp.wires.cvss, inp.vdd, delta_v, i)
}

/// Wordline during read: `C_WL`, `V = ΔV = Vdd`,
/// `I = 0.25 · 27 · I_ON,PFET`.
#[must_use]
pub fn wordline_read(inp: &ComponentInputs<'_>) -> DelayEnergy {
    let i = inp.periphery.ion_pfet() * (0.25 * WL_DRIVER_FINS);
    DelayEnergy::from_eq1(inp.wires.wordline, inp.vdd, inp.vdd, i)
}

/// Wordline during write (overdriven): `C_WL`, `V = Vdd`, `ΔV = V_WL`,
/// `I = 0.18 · 27 · I_WL(V_WL)`.
#[must_use]
pub fn wordline_write(inp: &ComponentInputs<'_>) -> DelayEnergy {
    let i = inp.periphery.i_wl(inp.vwl) * (0.18 * WL_DRIVER_FINS);
    DelayEnergy::from_eq1(inp.wires.wordline, inp.vdd, inp.vwl, i)
}

/// Column-select line: `C_COL`, `V = ΔV = Vdd`,
/// `I = 0.33 · 27 · I_ON,PFET`. Zero when the organization has no mux.
#[must_use]
pub fn column_select(inp: &ComponentInputs<'_>) -> DelayEnergy {
    if inp.wires.column_select.farads() == 0.0 {
        return DelayEnergy::zero();
    }
    let i = inp.periphery.ion_pfet() * (0.33 * WL_DRIVER_FINS);
    DelayEnergy::from_eq1(inp.wires.column_select, inp.vdd, inp.vdd, i)
}

/// Bitline during read: `C_BL`, `V = V_DDC − V_SSC`, `ΔV = ΔV_S`,
/// `I = I_read(V_DDC, V_SSC)` — the row negative Gnd accelerates.
#[must_use]
pub fn bitline_read(inp: &ComponentInputs<'_>) -> DelayEnergy {
    let i = inp.cell.read_current(inp.vssc);
    DelayEnergy::from_eq1(inp.wires.bitline, inp.vddc - inp.vssc, inp.delta_vs, i)
}

/// Bitline during write: `C_BL`, `V = ΔV = Vdd`,
/// `I = 0.50 · N_wr · I_ON,TG`.
#[must_use]
pub fn bitline_write(inp: &ComponentInputs<'_>) -> DelayEnergy {
    let i = inp.periphery.ion_tg() * (0.50 * f64::from(inp.n_wr));
    DelayEnergy::from_eq1(inp.wires.bitline, inp.vdd, inp.vdd, i)
}

/// Precharge after read: `C_BL`, `V = Vdd`, `ΔV = ΔV_S`,
/// `I = 0.50 · N_pre · I_ON,PFET`.
#[must_use]
pub fn precharge_read(inp: &ComponentInputs<'_>) -> DelayEnergy {
    let i = inp.periphery.ion_pfet() * (0.50 * f64::from(inp.n_pre));
    DelayEnergy::from_eq1(inp.wires.bitline, inp.vdd, inp.delta_vs, i)
}

/// Precharge after write: `C_BL`, `V = ΔV = Vdd`,
/// `I = 0.50 · N_pre · I_ON,PFET`.
#[must_use]
pub fn precharge_write(inp: &ComponentInputs<'_>) -> DelayEnergy {
    let i = inp.periphery.ion_pfet() * (0.50 * f64::from(inp.n_pre));
    DelayEnergy::from_eq1(inp.wires.bitline, inp.vdd, inp.vdd, i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrayOrganization, TechnologyParams};
    use sram_device::DeviceLibrary;

    struct Fixture {
        wires: WireCapacitances,
        periphery: Periphery,
        cell: CellCharacterization,
    }

    fn fixture(rows: u32, cols: u32, n_pre: u32, n_wr: u32) -> Fixture {
        let lib = DeviceLibrary::sevennm();
        let org = ArrayOrganization::new(rows, cols, 64).unwrap();
        let periphery = Periphery::new(&lib);
        let wires =
            WireCapacitances::new(&org, &periphery, &TechnologyParams::sevennm(), n_pre, n_wr);
        Fixture {
            wires,
            periphery,
            cell: CellCharacterization::paper_hvt(lib.nominal_vdd()),
        }
    }

    fn inputs<'a>(fx: &'a Fixture, vssc_mv: f64, n_pre: u32, n_wr: u32) -> ComponentInputs<'a> {
        ComponentInputs {
            wires: &fx.wires,
            periphery: &fx.periphery,
            cell: &fx.cell,
            vdd: Voltage::from_millivolts(450.0),
            vddc: Voltage::from_millivolts(550.0),
            vssc: Voltage::from_millivolts(vssc_mv),
            vwl: Voltage::from_millivolts(550.0),
            delta_vs: Voltage::from_millivolts(120.0),
            n_pre,
            n_wr,
        }
    }

    #[test]
    fn negative_gnd_cuts_bitline_read_delay() {
        let fx = fixture(128, 64, 7, 1);
        let base = bitline_read(&inputs(&fx, 0.0, 7, 1));
        let assisted = bitline_read(&inputs(&fx, -240.0, 7, 1));
        assert!(
            assisted.delay < base.delay * 0.5,
            "negative Gnd: {} -> {}",
            base.delay,
            assisted.delay
        );
    }

    #[test]
    fn more_precharge_fins_cut_precharge_delay() {
        let fx1 = fixture(128, 64, 1, 1);
        let fx2 = fixture(128, 64, 10, 1);
        let d1 = precharge_read(&inputs(&fx1, 0.0, 1, 1)).delay;
        let d2 = precharge_read(&inputs(&fx2, 0.0, 10, 1)).delay;
        // N_pre = 10 drives ~10x harder but also loads C_BL slightly.
        assert!(d2 < d1 * 0.2, "{d1} -> {d2}");
    }

    #[test]
    fn rail_components_vanish_without_assists() {
        let fx = fixture(128, 64, 7, 1);
        let mut inp = inputs(&fx, 0.0, 7, 1);
        inp.vddc = inp.vdd; // no boost
        assert_eq!(cvdd_rail(&inp), DelayEnergy::zero());
        assert_eq!(cvss_rail(&inp), DelayEnergy::zero());
    }

    #[test]
    fn rail_energies_scale_with_boost() {
        let fx = fixture(128, 64, 7, 1);
        let small = {
            let mut inp = inputs(&fx, 0.0, 7, 1);
            inp.vddc = Voltage::from_millivolts(500.0);
            cvdd_rail(&inp).energy
        };
        let large = {
            let mut inp = inputs(&fx, 0.0, 7, 1);
            inp.vddc = Voltage::from_millivolts(640.0);
            cvdd_rail(&inp).energy
        };
        assert!(large > small);
    }

    #[test]
    fn column_component_zero_without_mux() {
        let fx = fixture(128, 64, 7, 1); // cols == W
        assert_eq!(column_select(&inputs(&fx, 0.0, 7, 1)), DelayEnergy::zero());
        let fx2 = fixture(128, 256, 7, 1);
        assert!(column_select(&inputs(&fx2, 0.0, 7, 1)).delay.seconds() > 0.0);
    }

    #[test]
    fn write_bitline_speeds_up_with_fins() {
        let fx = fixture(128, 64, 7, 1);
        let d1 = bitline_write(&inputs(&fx, 0.0, 7, 1)).delay;
        let fx8 = fixture(128, 64, 7, 8);
        let d8 = bitline_write(&inputs(&fx8, 0.0, 7, 8)).delay;
        assert!(d8 < d1);
    }

    #[test]
    fn table2_wordline_row_matches_transient_simulation() {
        // Cross-validate Eq. (1)'s average-current abstraction: charge a
        // real C_WL through a real 27-fin LVT driver inverter in the
        // transient simulator and compare the measured rise against the
        // Table 2 "WL during read" delay. The 0.25 average-current
        // coefficient is the paper's SPICE fit; ours must land within a
        // small factor for the abstraction to be sound on our devices.
        use sram_device::FinFet;
        use sram_spice::{Circuit, CrossingEdge, Transient, Waveform};
        use sram_units::Time;

        let lib = DeviceLibrary::sevennm();
        let fx = fixture(128, 64, 7, 1);
        let inp = inputs(&fx, 0.0, 7, 1);
        let eq1_delay = wordline_read(&inp).delay;

        let vdd = 0.45;
        let mut ckt = Circuit::new();
        let n_vdd = ckt.node("vdd");
        let n_in = ckt.node("in");
        let n_wl = ckt.node("wl");
        ckt.vsource("Vdd", n_vdd, Circuit::GROUND, Waveform::Dc(vdd));
        // Input falls: the 27-fin PFET turns on and charges the WL.
        ckt.vsource(
            "Vin",
            n_in,
            Circuit::GROUND,
            Waveform::step(
                Voltage::from_volts(vdd),
                Voltage::ZERO,
                Time::from_picoseconds(2.0),
                Time::from_picoseconds(0.5),
            ),
        );
        ckt.fet(
            "MP",
            n_in,
            n_wl,
            n_vdd,
            FinFet::new(lib.pfet(sram_device::VtFlavor::Lvt).clone(), 27),
        );
        ckt.fet(
            "MN",
            n_in,
            n_wl,
            Circuit::GROUND,
            FinFet::new(lib.nfet(sram_device::VtFlavor::Lvt).clone(), 27),
        );
        ckt.capacitor("CWL", n_wl, Circuit::GROUND, fx.wires.wordline.farads());
        let result = Transient::new(Time::from_picoseconds(200.0), Time::from_picoseconds(0.5))
            .run(&ckt)
            .unwrap();
        let trace = result.trace();
        let t0 = Time::from_picoseconds(2.0);
        let t90 = trace
            .crossing(
                n_wl,
                Voltage::from_volts(0.9 * vdd),
                CrossingEdge::Rising,
                t0,
            )
            .expect("WL must charge");
        let spice_delay = t90 - t0;
        let ratio = spice_delay / eq1_delay;
        // The 0.25 coefficient is the paper's fit for *their* devices; on
        // our card the driver's effective average current is ~3x higher,
        // so Eq. (1) is conservative. Same order of magnitude is the
        // soundness bar for the abstraction.
        assert!(
            ratio > 0.1 && ratio < 3.0,
            "Table 2 WL delay {eq1_delay} vs transient {spice_delay} (x{ratio:.2})"
        );
    }

    #[test]
    fn eq1_round_trip() {
        let de = DelayEnergy::from_eq1(
            sram_units::Capacitance::from_femtofarads(10.0),
            Voltage::from_volts(0.45),
            Voltage::from_millivolts(120.0),
            Current::from_microamps(10.0),
        );
        assert!((de.delay.picoseconds() - 120.0).abs() < 1e-9);
        assert!((de.energy.femtojoules() - 10.0 * 0.45 * 0.12).abs() < 1e-9);
    }
}
