//! Table 1: interconnect (wire) capacitances.
//!
//! Each equation composes per-cell wire capacitance (`C_width` along a
//! row, `C_height` along a column) with the device terminal loads hanging
//! off the wire. The fixed fin counts match the paper: the CVDD/CVSS rail
//! drivers use 20 fins, the WL/COL driver last stage uses 27.

use crate::{ArrayOrganization, Periphery, TechnologyParams};
use sram_units::Capacitance;

/// Fin count of the CVDD/CVSS rail-switch devices (sized for
/// `n_c = 1024`; Section 4).
pub const RAIL_DRIVER_FINS: f64 = 20.0;

/// Fin count of the last WL/COL driver stage (Tables 1–2).
pub const WL_DRIVER_FINS: f64 = 27.0;

/// All Table 1 capacitances for one array configuration.
///
/// # Examples
///
/// ```
/// use sram_array::{ArrayOrganization, Periphery, TechnologyParams, WireCapacitances};
/// use sram_device::DeviceLibrary;
///
/// # fn main() -> Result<(), sram_array::ArrayError> {
/// let org = ArrayOrganization::new(128, 64, 64)?;
/// let periphery = Periphery::new(&DeviceLibrary::sevennm());
/// let wires = WireCapacitances::new(&org, &periphery, &TechnologyParams::sevennm(), 12, 2);
/// assert!(wires.bitline.farads() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireCapacitances {
    /// `C_CVDD`: the switchable cell-supply rail across one row.
    pub cvdd: Capacitance,
    /// `C_CVSS`: the switchable cell-ground rail across one row.
    pub cvss: Capacitance,
    /// `C_WL`: one wordline across the row plus its driver drain.
    pub wordline: Capacitance,
    /// `C_COL`: the column-select line (zero without a column mux).
    pub column_select: Capacitance,
    /// `C_BL`: one bitline down the column, including precharger, write
    /// buffer and mux loading.
    pub bitline: Capacitance,
}

impl WireCapacitances {
    /// Evaluates Table 1 for an organization with `n_pre` precharger fins
    /// and `n_wr` write-buffer fins.
    #[must_use]
    pub fn new(
        org: &ArrayOrganization,
        periphery: &Periphery,
        tech: &TechnologyParams,
        n_pre: u32,
        n_wr: u32,
    ) -> Self {
        let nc = f64::from(org.cols());
        let nr = f64::from(org.rows());
        let w = f64::from(org.word_bits());
        let npre = f64::from(n_pre);
        let nwr = f64::from(n_wr);
        let c_width = tech.cell_width_cap();
        let c_height = tech.cell_height_cap();
        let (cdn, cdp) = (periphery.cdn(), periphery.cdp());
        let (cgn, cgp) = (periphery.cgn(), periphery.cgp());

        // C_CVDD = n_c (C_width + 2 C_dp) + 2*20*C_dp
        let cvdd = (c_width + cdp * 2.0) * nc + cdp * (2.0 * RAIL_DRIVER_FINS);
        // C_CVSS = n_c (C_width + 2 C_dn) + 2*20*C_dn
        let cvss = (c_width + cdn * 2.0) * nc + cdn * (2.0 * RAIL_DRIVER_FINS);
        // C_WL = n_c (C_width + 2 C_gn) + 27 (C_dn + C_dp)
        let wordline = (c_width + cgn * 2.0) * nc + (cdn + cdp) * WL_DRIVER_FINS;
        // C_COL: 0 if n_c <= W, else
        //   n_c C_width + 27 (C_dn + C_dp) + 2 W N_wr (C_gn + C_gp)
        let column_select = if org.has_column_mux() {
            c_width * nc + (cdn + cdp) * WL_DRIVER_FINS + (cgn + cgp) * (2.0 * w * nwr)
        } else {
            Capacitance::ZERO
        };
        // C_BL:
        //   n_r (C_height + C_dn) + (N_pre + 1) C_dp + N_wr (C_dn + C_dp)
        //     + C_dp                                  if n_c <= W
        //   n_r (C_height + C_dn) + (N_pre + 1) C_dp + 2 N_wr (C_dn + C_dp)
        //                                             if n_c >  W
        let bl_base = (c_height + cdn) * nr + cdp * (npre + 1.0);
        let bitline = if org.has_column_mux() {
            bl_base + (cdn + cdp) * (2.0 * nwr)
        } else {
            bl_base + (cdn + cdp) * nwr + cdp
        };

        Self {
            cvdd,
            cvss,
            wordline,
            column_select,
            bitline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::DeviceLibrary;

    fn wires(rows: u32, cols: u32, npre: u32, nwr: u32) -> WireCapacitances {
        let org = ArrayOrganization::new(rows, cols, 64).unwrap();
        WireCapacitances::new(
            &org,
            &Periphery::new(&DeviceLibrary::sevennm()),
            &TechnologyParams::sevennm(),
            npre,
            nwr,
        )
    }

    #[test]
    fn hand_computed_cvdd() {
        // n_c = 64: C_CVDD = 64*(36.55 aF + 2*35 aF) + 40*35 aF = 8219.2 aF.
        let w = wires(128, 64, 1, 1);
        let expect = 64.0 * (36.55e-18 + 2.0 * 35e-18) + 40.0 * 35e-18;
        assert!(
            (w.cvdd.farads() - expect).abs() < 1e-21,
            "{} vs {}",
            w.cvdd.farads(),
            expect
        );
    }

    #[test]
    fn bitline_grows_with_rows_and_fins() {
        assert!(wires(256, 64, 1, 1).bitline > wires(128, 64, 1, 1).bitline);
        assert!(wires(128, 64, 20, 1).bitline > wires(128, 64, 1, 1).bitline);
        assert!(wires(128, 64, 1, 8).bitline > wires(128, 64, 1, 1).bitline);
    }

    #[test]
    fn wordline_grows_with_cols() {
        assert!(wires(128, 256, 1, 1).wordline > wires(128, 64, 1, 1).wordline);
    }

    #[test]
    fn column_select_is_zero_without_mux() {
        assert_eq!(wires(128, 64, 1, 1).column_select, Capacitance::ZERO);
        assert!(wires(128, 128, 1, 1).column_select.farads() > 0.0);
    }

    #[test]
    fn mux_doubles_write_buffer_loading_on_bl() {
        // With a mux, the write path has two TGs: 2*N_wr*(C_dn+C_dp) vs
        // N_wr*(C_dn+C_dp) + C_dp.
        let with_mux = wires(128, 128, 5, 4);
        let org_no = ArrayOrganization::new(128, 64, 64).unwrap();
        let no_mux = WireCapacitances::new(
            &org_no,
            &Periphery::new(&DeviceLibrary::sevennm()),
            &TechnologyParams::sevennm(),
            5,
            4,
        );
        // Same n_r/N_pre: the difference is exactly the extra TG loading.
        let p = Periphery::new(&DeviceLibrary::sevennm());
        let diff = with_mux.bitline - no_mux.bitline;
        let expect = (p.cdn() + p.cdp()) * 4.0 - p.cdp();
        assert!((diff.farads() - expect.farads()).abs() < 1e-21);
    }
}
